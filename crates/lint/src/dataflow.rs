//! A small forward-dataflow (taint) engine over fn bodies, and the
//! three semantic rules built on it: `seed-provenance`,
//! `float-merge-order`, and `result-discard`.
//!
//! The engine is a single forward pass over a flat statement split of
//! the body token range: `let` bindings, plain and compound
//! assignments, and `for`-loop pattern bindings propagate taint from
//! any tainted identifier (or source call) on their right-hand side.
//! Locals are function-scoped (shadowing and block scopes are
//! flattened) and closure/match bodies are split like ordinary
//! statements — both are over-approximations that err toward
//! *propagating* taint, which for these rules means erring toward a
//! finding; the near-miss fixtures pin the idioms that must stay
//! clean.
//!
//! The cross-file leg rides on the call graph: a taint that flows
//! into a call argument is checked against the *callee's parsed
//! signature* (`seed`-named parameters), so a nondeterministic seed
//! cannot hide behind one level of indirection in another crate.

use std::collections::BTreeSet;

use crate::graph::{call_paren, matching_paren, split_args, CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::rules::{for_loop_expr, in_lib_crate, loop_body_open, matching_brace, Finding};

/// Splits a body token range into flat statement segments at `;`,
/// `{`, and `}` (any depth except inside parens/brackets, so call
/// arguments stay whole).
pub(crate) fn statements(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut seg = lo;
    let hi = hi.min(toks.len());
    for (k, t) in toks.iter().enumerate().take(hi).skip(lo) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth <= 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            if seg < k {
                out.push((seg, k));
            }
            seg = k + 1;
        }
    }
    if seg < hi {
        out.push((seg, hi));
    }
    out
}

/// Whether any token in `[a, b)` is a tainted identifier or a source
/// position (per `is_source`).
fn range_tainted(
    toks: &[Token],
    (a, b): (usize, usize),
    tainted: &BTreeSet<String>,
    is_source: &dyn Fn(&[Token], usize) -> bool,
) -> bool {
    let b = b.min(toks.len());
    for k in a..b {
        let t = &toks[k];
        if t.kind == TokenKind::Ident && tainted.contains(&t.text) {
            return true;
        }
        if is_source(toks, k) {
            return true;
        }
    }
    false
}

/// One forward pass: seeds `tainted` with `init`, then propagates
/// through `let`/assignment/`for` statements in source order.
fn propagate(
    toks: &[Token],
    lo: usize,
    hi: usize,
    init: &[String],
    is_source: &dyn Fn(&[Token], usize) -> bool,
) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = init.iter().cloned().collect();
    for (a, b) in statements(toks, lo, hi) {
        let seg = &toks[a..b.min(toks.len())];
        if seg.is_empty() {
            continue;
        }
        if seg[0].is_ident("let") {
            // `let [mut] <pat> [: Ty] = expr` — pattern idents before
            // the top-level `=`, expression after it.
            let Some(eq) = top_level_eq(seg) else {
                continue;
            };
            if range_tainted(toks, (a + eq + 1, b), &tainted, is_source) {
                for t in &seg[1..eq] {
                    if t.kind == TokenKind::Ident && !t.is_ident("mut") {
                        tainted.insert(t.text.clone());
                    }
                }
            }
        } else if seg[0].is_ident("for") {
            // `for <pat> in expr` (body split off at `{`).
            let Some(pos) = seg.iter().position(|t| t.is_ident("in")) else {
                continue;
            };
            if range_tainted(toks, (a + pos + 1, b), &tainted, is_source) {
                for t in &seg[1..pos] {
                    if t.kind == TokenKind::Ident && !t.is_ident("mut") {
                        tainted.insert(t.text.clone());
                    }
                }
            }
        } else if seg.len() >= 3 && seg[0].kind == TokenKind::Ident {
            // `name = expr` / `name op= expr`.
            let assign_at = if seg[1].is_punct('=') && !seg[2].is_punct('=') {
                Some(1)
            } else if seg.len() >= 4
                && seg[1].kind == TokenKind::Punct
                && seg[2].is_punct('=')
                && !seg[1].is_punct('=')
                && !seg[1].is_punct('!')
                && !seg[1].is_punct('<')
                && !seg[1].is_punct('>')
            {
                Some(2)
            } else {
                None
            };
            if let Some(eq) = assign_at {
                if range_tainted(toks, (a + eq + 1, b), &tainted, is_source) {
                    tainted.insert(seg[0].text.clone());
                }
            }
        }
    }
    tainted
}

/// Position of the top-level `=` in a statement segment (skipping
/// `==`, `<=`-style operators and anything bracketed).
fn top_level_eq(seg: &[Token]) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in seg.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth -= 1;
        } else if depth <= 0 && t.is_punct('=') {
            let prev_op = k > 0
                && seg[k - 1].kind == TokenKind::Punct
                && !seg[k - 1].is_punct(')')
                && !seg[k - 1].is_punct(']');
            let next_eq = seg.get(k + 1).is_some_and(|t| t.is_punct('='));
            if !prev_op && !next_eq {
                return Some(k);
            }
        }
    }
    None
}

/// Entropy / wall-clock sources that must never feed an RNG seed.
fn is_entropy_source(toks: &[Token], k: usize) -> bool {
    let t = &toks[k];
    if t.kind != TokenKind::Ident {
        return false;
    }
    if t.is_ident("OsRng") {
        return true;
    }
    matches!(
        t.text.as_str(),
        "thread_rng"
            | "from_entropy"
            | "from_os_rng"
            | "random"
            | "now"
            | "elapsed"
            | "available_parallelism"
            | "available_threads"
    ) && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
}

/// RNG-seeding sinks checked within a single file.
const SEED_SINKS: &[&str] = &["seed_from_u64", "from_seed", "with_seed"];

/// Whether a callee parameter receives an RNG seed, by name.
fn is_seed_param(name: &str) -> bool {
    name == "seed" || name == "rng_seed" || name.ends_with("_seed")
}

/// `seed-provenance`: an RNG seed argument fed — through locals and
/// resolved calls — from a nondeterministic source instead of
/// config / `seed + index` derivation. Checked per non-test fn in
/// the lib crates; the cross-file leg maps tainted call arguments
/// onto `seed`-named parameters of resolved callees.
pub fn seed_provenance(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (u, f) in g.fns.iter().enumerate() {
        let sf = &files[f.file];
        if f.in_test || !in_lib_crate(&sf.path) {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let toks = &sf.scan.tokens;
        let tainted = propagate(toks, lo, hi, &[], &is_entropy_source);

        // In-file sinks: `seed_from_u64(expr)` and friends.
        for k in lo..hi.min(toks.len()) {
            let t = &toks[k];
            if t.kind != TokenKind::Ident || !SEED_SINKS.contains(&t.text.as_str()) {
                continue;
            }
            let Some(paren) = call_paren(toks, k, hi) else {
                continue;
            };
            let close = matching_paren(toks, paren, hi);
            let args = split_args(toks, paren + 1, close);
            if args
                .iter()
                .any(|&r| range_tainted(toks, r, &tainted, &is_entropy_source))
            {
                findings.push(Finding {
                    file: sf.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "seed-provenance",
                    message: format!(
                        "`{}` is fed from a nondeterministic source; seeds must derive \
                         from the run config (e.g. `seed + index`)",
                        t.text
                    ),
                });
            }
        }

        // Cross-file sinks: tainted argument into a `seed`-named
        // parameter of a resolved workspace fn.
        for c in g.calls.iter().filter(|c| c.caller == u) {
            let callee = &g.fns[c.callee];
            let params: &[crate::parser::Param] =
                if callee.params.first().is_some_and(|p| p.name == "self") {
                    &callee.params[1..]
                } else {
                    &callee.params
                };
            for (i, p) in params.iter().enumerate() {
                if !is_seed_param(&p.name) {
                    continue;
                }
                let Some(&arg) = c.args.get(i) else { continue };
                if range_tainted(toks, arg, &tainted, &is_entropy_source) {
                    findings.push(Finding {
                        file: sf.path.clone(),
                        line: c.line,
                        col: c.col,
                        rule: "seed-provenance",
                        message: format!(
                            "argument `{}` of `{}` is fed from a nondeterministic source; \
                             seeds must derive from the run config",
                            p.name,
                            callee.display(),
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Thread-count sources for `float-merge-order`.
fn is_thread_source(toks: &[Token], k: usize) -> bool {
    let t = &toks[k];
    t.kind == TokenKind::Ident
        && matches!(
            t.text.as_str(),
            "available_threads" | "available_parallelism"
        )
        && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
}

/// Parameter names that carry a thread count.
fn is_thread_param(name: &str) -> bool {
    matches!(
        name,
        "threads" | "n_threads" | "num_threads" | "workers" | "n_workers"
    )
}

/// Whether a number token is a float literal.
fn is_float_literal(t: &Token) -> bool {
    t.kind == TokenKind::Number
        && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"))
}

/// `float-merge-order`: an `f64`/`f32` accumulation whose grouping
/// depends on the thread count. `par::map_indexed` output is
/// index-ordered and therefore safe to reduce — *unless* the task
/// count itself is thread-derived; `par::chunk_ranges` output is
/// thread-shaped whenever either argument is. Exact integer
/// accumulation over the same shapes is order-independent and stays
/// clean.
pub fn float_merge_order(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &g.fns {
        let sf = &files[f.file];
        let in_scope = (sf.path.starts_with("crates/core/src/")
            || sf.path.starts_with("crates/graph/src/"))
            && sf.path != "crates/graph/src/par.rs";
        if f.in_test || !in_scope {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let toks = &sf.scan.tokens;

        // Layer 1: thread-count taint (params + ambient queries).
        let thread_init: Vec<String> = f
            .params
            .iter()
            .filter(|p| is_thread_param(&p.name))
            .map(|p| p.name.clone())
            .collect();
        let threads = propagate(toks, lo, hi, &thread_init, &is_thread_source);

        // Layer 2: chunk taint — values whose *shape* depends on the
        // thread count.
        let threads_for_source = threads.clone();
        let is_chunk_source = move |toks: &[Token], k: usize| -> bool {
            let t = &toks[k];
            if t.kind != TokenKind::Ident {
                return false;
            }
            let Some(paren) = call_paren(toks, k, toks.len()) else {
                return false;
            };
            let close = matching_paren(toks, paren, toks.len());
            let args = split_args(toks, paren + 1, close);
            let arg_threaded =
                |r: (usize, usize)| range_tainted(toks, r, &threads_for_source, &is_thread_source);
            match t.text.as_str() {
                // Chunk boundaries move with the thread count.
                "chunk_ranges" => args.iter().any(|&r| arg_threaded(r)),
                // Output is index-ordered; only a thread-derived task
                // count makes its shape thread-dependent (arg 0 is
                // scheduling only, by the par contract).
                "map_indexed" => args.get(1).is_some_and(|&r| arg_threaded(r)),
                _ => false,
            }
        };
        let chunked = propagate(toks, lo, hi, &[], &is_chunk_source);

        // Float locals (for `+=` accumulation detection).
        let mut float_locals: BTreeSet<String> = BTreeSet::new();
        for (a, b) in statements(toks, lo, hi) {
            let seg = &toks[a..b.min(toks.len())];
            if seg.first().is_some_and(|t| t.is_ident("let")) {
                let floaty = seg
                    .iter()
                    .any(|t| is_float_literal(t) || t.is_ident("f64") || t.is_ident("f32"));
                if floaty {
                    if let Some(eq) = top_level_eq(seg) {
                        for t in &seg[1..eq] {
                            if t.kind == TokenKind::Ident && !t.is_ident("mut") {
                                float_locals.insert(t.text.clone());
                            }
                        }
                    }
                }
            }
        }

        // Flag float reductions over chunk-tainted values, one
        // finding per statement.
        for (a, b) in statements(toks, lo, hi) {
            let b = b.min(toks.len());
            if !range_tainted(toks, (a, b), &chunked, &is_chunk_source) {
                continue;
            }
            let seg = &toks[a..b];
            let mut site: Option<&Token> = None;
            for (k, t) in seg.iter().enumerate() {
                // `.sum::<f64>()` / `.product::<f32>()`.
                if (t.is_ident("sum") || t.is_ident("product"))
                    && k > 0
                    && seg[k - 1].is_punct('.')
                    && seg[k + 1..]
                        .iter()
                        .take(5)
                        .any(|n| n.is_ident("f64") || n.is_ident("f32"))
                {
                    site = Some(t);
                    break;
                }
                // `.fold(0.0, …)` / `.try_fold(0f64, …)`.
                if (t.is_ident("fold") || t.is_ident("try_fold"))
                    && k > 0
                    && seg[k - 1].is_punct('.')
                    && seg.get(k + 2).is_some_and(is_float_literal)
                {
                    site = Some(t);
                    break;
                }
                // `acc += chunked_value` with a float accumulator.
                if t.is_punct('+')
                    && seg.get(k + 1).is_some_and(|n| n.is_punct('='))
                    && k > 0
                    && seg[k - 1].kind == TokenKind::Ident
                    && float_locals.contains(&seg[k - 1].text)
                {
                    site = Some(&seg[k - 1]);
                    break;
                }
            }
            if let Some(t) = site {
                findings.push(Finding {
                    file: sf.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "float-merge-order",
                    message: "float accumulation over a thread-shaped partition: the \
                              grouping (and so the rounding) changes with the thread \
                              count; accumulate exactly (integers/Kahan) or fix the \
                              chunk count"
                        .to_string(),
                });
            }
        }
    }
    findings
}

/// `result-discard`: the `Result` of a fallible workspace fn is
/// dropped — `let _ = fallible(…);` or a bare `fallible(…);`
/// statement — in non-test lib-crate code. `?`-propagated and
/// consumed results are fine.
pub fn result_discard(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    for c in &g.calls {
        let caller = &g.fns[c.caller];
        let sf = &files[caller.file];
        if caller.in_test || !in_lib_crate(&sf.path) {
            continue;
        }
        let callee = &g.fns[c.callee];
        if !callee.ret.contains("Result") {
            continue;
        }
        let toks = &sf.scan.tokens;
        let Some(paren) = call_paren(toks, c.tok, toks.len()) else {
            continue;
        };
        let close = matching_paren(toks, paren, toks.len());
        // The call's value must reach the end of the statement
        // unconsumed: next token is `;`.
        if !toks.get(close + 1).is_some_and(|t| t.is_punct(';')) {
            continue;
        }
        // Walk back over the path / simple receiver chain to the
        // start of the call expression.
        let mut s = c.tok;
        loop {
            if s >= 2 && toks[s - 1].is_punct('.') && toks[s - 2].kind == TokenKind::Ident {
                s -= 2;
            } else if s >= 3
                && toks[s - 1].is_punct(':')
                && toks[s - 2].is_punct(':')
                && toks[s - 3].kind == TokenKind::Ident
            {
                s -= 3;
            } else {
                break;
            }
        }
        if s == 0 {
            continue;
        }
        let prev = &toks[s - 1];
        let let_discard = prev.is_punct('=')
            && s >= 3
            && toks[s - 2].is_ident("_")
            && toks[s - 3].is_ident("let");
        let bare_discard = prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}');
        if let_discard || bare_discard {
            findings.push(Finding {
                file: sf.path.clone(),
                line: c.line,
                col: c.col,
                rule: "result-discard",
                message: format!(
                    "Result of fallible `{}` is discarded; handle it, propagate with \
                     `?`, or bind and check it",
                    callee.display(),
                ),
            });
        }
    }
    findings
}

/// A loop body longer than this many tokens counts as "long" — big
/// enough to clear every tight fold/update loop in the workspace,
/// small enough that an unpolled Gray-code walk or swap loop cannot
/// hide.
const LONG_LOOP_TOKENS: usize = 80;

/// Identifiers that witness a cancellation/budget poll (or a fault
/// probe, which only exists inside budgeted task bodies).
const POLL_IDENTS: &[&str] = &["check", "probe", "is_cancelled", "poll"];

/// Whether a `for` loop's iterated expression has a compile-time
/// constant trip count: every token is a number literal, a range
/// punct, parens, or an UPPER_SNAKE constant / const-generic name.
/// Such loops run a bounded, small number of iterations and are
/// exempt from the polling contract.
fn constant_trip(toks: &[Token], expr_lo: usize, expr_hi: usize) -> bool {
    let expr = &toks[expr_lo..expr_hi.min(toks.len())];
    !expr.is_empty()
        && expr.iter().all(|t| match t.kind {
            TokenKind::Number => true,
            TokenKind::Punct => matches!(t.text.as_str(), "." | "=" | "(" | ")"),
            TokenKind::Ident => {
                !t.text.is_empty() && !t.text.chars().any(|c| c.is_ascii_lowercase())
            }
            _ => false,
        })
}

/// `poll-reachability`: interprocedural budgeted-loop analysis.
///
/// The budgeted entry points are the non-test lib-crate fns with a
/// `Budget`- or `CancelToken`-typed parameter — the fns that *can*
/// poll. Every long loop with a non-constant trip count in such a fn
/// must reach a poll: either a `POLL_IDENTS` identifier directly in
/// its body, or a call site in its body whose callee *transitively*
/// polls (computed as a fixpoint over the whole call graph). Helpers
/// without budget access are checked at their call sites: a helper
/// that never polls contributes no credit, so a budgeted loop that
/// delegates all its work to pollless helpers is flagged at the loop
/// — the one place the fix (a `budget.check()?` per iteration) is
/// actually possible. Unlike its file-scoped predecessor
/// (`cancel-blind-loop`), a hot loop cannot dodge the contract by
/// moving to an unlisted file, and a loop that genuinely polls
/// through a helper chain needs no suppression.
pub fn poll_reachability(files: &[SourceFile], g: &CallGraph) -> Vec<Finding> {
    let n = g.fns.len();

    // The budgeted entry points: fns with the budget in scope.
    let mut budgeted = vec![false; n];
    for (u, f) in g.fns.iter().enumerate() {
        if f.in_test || f.body.is_none() || !in_lib_crate(&files[f.file].path) {
            continue;
        }
        budgeted[u] = f
            .params
            .iter()
            .any(|p| p.ty.contains("Budget") || p.ty.contains("CancelToken"));
    }

    // Which fns poll, directly or through a callee (fixpoint over the
    // call graph; edges propagate callee → caller).
    let mut polls = vec![false; n];
    for (u, f) in g.fns.iter().enumerate() {
        let Some((lo, hi)) = f.body else { continue };
        let toks = &files[f.file].scan.tokens;
        polls[u] = toks[lo..hi.min(toks.len())]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && POLL_IDENTS.contains(&t.text.as_str()));
    }
    loop {
        let mut changed = false;
        for c in &g.calls {
            if polls[c.callee] && !polls[c.caller] {
                polls[c.caller] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut findings = Vec::new();
    for (u, f) in g.fns.iter().enumerate() {
        if !budgeted[u] || f.in_test {
            continue;
        }
        let Some((lo, hi)) = f.body else { continue };
        let sf = &files[f.file];
        let toks = &sf.scan.tokens;
        let hi = hi.min(toks.len());
        for k in lo..hi {
            let t = &toks[k];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let body_open = match t.text.as_str() {
                "loop" => toks
                    .get(k + 1)
                    .is_some_and(|n| n.is_punct('{'))
                    .then_some(k + 1),
                "while" => loop_body_open(toks, k),
                "for" => for_loop_expr(toks, k).map(|(_, brace)| brace),
                _ => None,
            };
            let Some(open) = body_open else { continue };
            let Some(close) = matching_brace(toks, open) else {
                continue;
            };
            let body = &toks[open + 1..close];
            if body.len() <= LONG_LOOP_TOKENS {
                continue;
            }
            if t.is_ident("for") {
                if let Some((expr_lo, brace)) = for_loop_expr(toks, k) {
                    if constant_trip(toks, expr_lo, brace) {
                        continue;
                    }
                }
            }
            if body
                .iter()
                .any(|b| b.kind == TokenKind::Ident && POLL_IDENTS.contains(&b.text.as_str()))
            {
                continue;
            }
            if g.calls
                .iter()
                .any(|c| c.caller == u && c.tok > open && c.tok < close && polls[c.callee])
            {
                continue;
            }
            findings.push(Finding {
                file: sf.path.clone(),
                line: t.line,
                col: t.col,
                rule: "poll-reachability",
                message: format!(
                    "long `{}` body ({} tokens) in `{}` runs under a budget but never \
                     reaches a poll; call budget.check()? (directly or via a polling \
                     helper) so deadlines and cancellation keep working",
                    t.text,
                    body.len(),
                    f.display(),
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, SourceFile};

    fn run(
        files: &[(&str, &str)],
        rule: fn(&[SourceFile], &CallGraph) -> Vec<Finding>,
    ) -> Vec<Finding> {
        let files: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let g = build(&files);
        rule(&files, &g)
    }

    #[test]
    fn seed_taint_flows_through_locals() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn bad() {\n  let t = available_threads();\n  let s = t as u64;\n\
                 let rng = StdRng::seed_from_u64(s);\n}\n",
            )],
            seed_provenance,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "seed-provenance");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn config_derived_seed_is_clean() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn good(seed: u64, index: u64) {\n\
                 let s = seed.wrapping_add(index);\n\
                 let rng = StdRng::seed_from_u64(s);\n}\n",
            )],
            seed_provenance,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn seed_taint_crosses_files_via_params() {
        let f = run(
            &[
                (
                    "crates/core/src/caller.rs",
                    "pub fn bad() {\n  let t = available_threads() as u64;\n  make_rng(t);\n}\n",
                ),
                (
                    "crates/graph/src/rngs.rs",
                    "pub fn make_rng(seed: u64) -> u64 { seed }\n",
                ),
            ],
            seed_provenance,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "crates/core/src/caller.rs");
        assert!(f[0].message.contains("make_rng"));
    }

    #[test]
    fn thread_shaped_float_sum_is_flagged() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn bad(threads: usize, xs: &[f64]) -> f64 {\n\
                 let ranges = chunk_ranges(xs.len(), threads * 8);\n\
                 let partials = compute(ranges);\n\
                 partials.iter().sum::<f64>()\n}\n\
                 fn compute(r: Vec<u64>) -> Vec<f64> { Vec::new() }\n",
            )],
            float_merge_order,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float-merge-order");
    }

    #[test]
    fn integer_fold_over_thread_chunks_is_clean() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn good(threads: usize, xs: &[i64]) -> i64 {\n\
                 let ranges = chunk_ranges(xs.len(), threads * 8);\n\
                 let total = ranges.iter().try_fold(0i128, |a, r| Some(a)); 0\n}\n",
            )],
            float_merge_order,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn fixed_chunk_count_float_sum_is_clean() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn good(xs: &[f64]) -> f64 {\n\
                 let ranges = chunk_ranges(xs.len(), 64);\n\
                 let partials = compute(ranges);\n\
                 partials.iter().sum::<f64>()\n}\n\
                 fn compute(r: Vec<u64>) -> Vec<f64> { Vec::new() }\n",
            )],
            float_merge_order,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn float_accumulator_over_chunked_partials_is_flagged() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn bad(threads: usize, n: usize) -> f64 {\n\
                 let parts = map_indexed(threads, threads * 4);\n\
                 let mut total = 0.0;\n\
                 for p in parts { total += p; }\n  total\n}\n\
                 fn map_indexed(t: usize, n: usize) -> Vec<f64> { Vec::new() }\n",
            )],
            float_merge_order,
        );
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn map_indexed_with_fixed_task_count_is_clean() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn good(threads: usize, n: usize) -> f64 {\n\
                 let parts = map_indexed(threads, n);\n\
                 parts.iter().sum::<f64>()\n}\n\
                 fn map_indexed(t: usize, n: usize) -> Vec<f64> { Vec::new() }\n",
            )],
            float_merge_order,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn discarded_results_are_flagged() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn bad() {\n  let _ = fallible(1);\n  fallible(2);\n}\n\
                 fn fallible(x: u32) -> Result<u32, String> { Ok(x) }\n",
            )],
            result_discard,
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "result-discard"));
    }

    #[test]
    fn propagated_and_bound_results_are_clean() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "pub fn good() -> Result<u32, String> {\n\
                 let v = fallible(1)?;\n  let _ = fallible(2)?;\n\
                 let kept = fallible(3);\n  kept\n}\n\
                 fn fallible(x: u32) -> Result<u32, String> { Ok(x) }\n",
            )],
            result_discard,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // A loop body comfortably past LONG_LOOP_TOKENS: ~24 tokens per
    // statement line, repeated.
    fn long_body(stmts: usize) -> String {
        "a = a + b * c - d / e + f * g - h + i * j - k + l * m - n + o * p - q;\n".repeat(stmts)
    }

    #[test]
    fn budgeted_pollless_loop_is_flagged() {
        let src = format!(
            "pub fn run(budget: &Budget, n: usize) -> u64 {{\n\
             for i in 0..n {{\n{}}}\n 0\n}}\n",
            long_body(5)
        );
        let f = run(
            &[("crates/graph/src/a.rs", src.as_str())],
            poll_reachability,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "poll-reachability");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn loop_polling_through_helper_is_clean() {
        let src = format!(
            "pub fn run(budget: &Budget, n: usize) -> u64 {{\n\
             for i in 0..n {{\n step(budget);\n{}}}\n 0\n}}\n\
             fn step(budget: &Budget) {{ budget.check(); }}\n",
            long_body(5)
        );
        let f = run(
            &[("crates/graph/src/a.rs", src.as_str())],
            poll_reachability,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn delegating_to_a_pollless_helper_earns_no_credit() {
        // The budgeted loop delegates all its work to a helper that
        // never polls — the loop is flagged (at the loop, where the
        // fix is possible), and the helper itself is not.
        let src = format!(
            "pub fn run(budget: &Budget, n: usize) -> u64 {{\n\
             for i in 0..n {{\n inner(i); inner(i + 1);\n{}}}\n 0\n}}\n\
             fn inner(n: usize) -> u64 {{ n * 3 }}\n",
            long_body(4)
        );
        let f = run(
            &[("crates/graph/src/a.rs", src.as_str())],
            poll_reachability,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("run"), "{}", f[0].message);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn polling_through_a_two_level_helper_chain_is_clean() {
        // poll credit is a fixpoint: the loop calls `outer`, which
        // polls only through `step` — two edges away.
        let src = format!(
            "pub fn run(budget: &Budget, n: usize) -> u64 {{\n\
             for i in 0..n {{\n outer(budget);\n{}}}\n 0\n}}\n\
             fn outer(budget: &Budget) {{ step(budget); }}\n\
             fn step(budget: &Budget) {{ budget.probe(); }}\n",
            long_body(5)
        );
        let f = run(
            &[("crates/graph/src/a.rs", src.as_str())],
            poll_reachability,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn constant_trip_and_unbudgeted_loops_are_clean() {
        let constant = format!(
            "pub fn run(budget: &Budget) -> u64 {{\n\
             for i in 0..SMALL_N {{\n{}}}\n 0\n}}\n",
            long_body(5)
        );
        let unbudgeted = format!(
            "pub fn free(n: usize) -> u64 {{\n\
             for i in 0..n {{\n{}}}\n 0\n}}\n",
            long_body(5)
        );
        for src in [constant, unbudgeted] {
            let f = run(
                &[("crates/graph/src/a.rs", src.as_str())],
                poll_reachability,
            );
            assert!(f.is_empty(), "{f:?}");
        }
    }

    #[test]
    fn test_code_is_exempt_from_dataflow_rules() {
        let f = run(
            &[(
                "crates/core/src/a.rs",
                "#[cfg(test)]\nmod tests {\n  fn t() {\n    let _ = fallible(1);\n\
                 let s = available_threads() as u64;\n\
                 let r = StdRng::seed_from_u64(s);\n  }\n}\n\
                 pub(crate) fn fallible(x: u32) -> Result<u32, String> { Ok(x) }\n\
                 pub(crate) fn available_threads() -> usize { 1 }\n",
            )],
            seed_provenance,
        );
        assert!(f.is_empty(), "{f:?}");
    }
}

//! Workspace call graph: links fn definitions to call sites across
//! all walked files, and runs the `panic-reachability` analysis on
//! top of it.
//!
//! Resolution is name-based (there is no type information), tuned to
//! this workspace's idioms and deliberately *asymmetric* in its
//! approximation:
//!
//! * qualified calls (`par::map_indexed(…)`, `Type::new(…)`,
//!   `Self::helper(…)`) resolve through the path segment;
//! * unqualified free calls resolve to same-file fns first, then
//!   same-crate, then workspace-wide;
//! * method calls (`.restrict(…)`) resolve by name against every
//!   `impl`/`trait` fn in the workspace — except names on the
//!   `COMMON_METHODS` blocklist (std-colliding names like `len`,
//!   `get`, `insert`), which are never linked. That is an
//!   under-approximation for workspace methods that shadow std
//!   names; DESIGN.md documents the trade.
//!
//! Everything iterates in (file, token) order, so the graph — and
//! every analysis over it — is deterministic regardless of input
//! ordering upstream.

use std::collections::{BTreeMap, VecDeque};

use crate::lexer::{scan, Scan, Token, TokenKind};
use crate::parser::{parse, FileAst, Param, Vis};
use crate::rules::{in_lib_crate, Finding};

/// One scanned + parsed workspace file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Token stream + pragmas.
    pub scan: Scan,
    /// Item tree.
    pub ast: FileAst,
    /// Per-token `#[cfg(test)]`/`#[test]` mask.
    pub mask: Vec<bool>,
}

impl SourceFile {
    /// Scans and parses one file.
    pub fn new(path: &str, source: &str) -> Self {
        let scanned = scan(source);
        let ast = parse(&scanned.tokens);
        let mask = ast.test_mask();
        SourceFile {
            path: path.to_string(),
            scan: scanned,
            ast,
            mask,
        }
    }
}

/// One fn definition anywhere in the workspace.
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the workspace file list.
    pub file: usize,
    /// Fn name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_of: Option<String>,
    /// Visibility.
    pub vis: Vis,
    /// Whether the fn sits in a test subtree.
    pub in_test: bool,
    /// Definition site.
    pub line: u32,
    /// Definition column.
    pub col: u32,
    /// Body token range in the defining file, if the fn has one.
    pub body: Option<(usize, usize)>,
    /// Parsed parameters.
    pub params: Vec<Param>,
    /// Normalized return-type text.
    pub ret: String,
    /// Const generics in scope: the enclosing `impl`/`trait` header's
    /// (`impl<const N: usize> …`) followed by the fn's own. The
    /// interval prover seeds these into the abstract environment.
    pub consts: Vec<Param>,
}

impl FnNode {
    /// `Type::name` or bare `name`, for reports.
    pub fn display(&self) -> String {
        match &self.self_of {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call site: `caller` invokes `callee`.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Calling fn (index into [`CallGraph::fns`]).
    pub caller: usize,
    /// Called fn (index into [`CallGraph::fns`]).
    pub callee: usize,
    /// Token index (caller's file) of the callee-name token.
    pub tok: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
    /// Call-site column.
    pub col: u32,
    /// Token ranges (caller's file) of each top-level argument.
    pub args: Vec<(usize, usize)>,
}

/// One potential panic site inside a fn body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// Containing fn (index into [`CallGraph::fns`]).
    pub func: usize,
    /// Site line.
    pub line: u32,
    /// Site column.
    pub col: u32,
    /// What panics: `unwrap`, `expect`, `panic!`, ….
    pub what: String,
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every fn definition, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// Every resolved call site, in (caller, source) order.
    pub calls: Vec<CallSite>,
    /// Every panic site, in (fn, source) order.
    pub panics: Vec<PanicSite>,
}

impl CallGraph {
    /// The unique callee resolved for the call whose name token sits
    /// at `tok` inside `caller`, or `None` when the site is unlinked
    /// or ambiguous. The interval prover only trusts unambiguous
    /// edges for return-interval propagation.
    pub fn resolve_unique(&self, caller: usize, tok: usize) -> Option<usize> {
        let mut found = None;
        for c in &self.calls {
            if c.caller == caller && c.tok == tok {
                if found.is_some() {
                    return None;
                }
                found = Some(c.callee);
            }
        }
        found
    }
}

/// Method names that collide with std types; method calls through
/// these are never linked (a workspace method shadowing one of them
/// goes unlinked — an accepted under-approximation).
const COMMON_METHODS: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "fmt",
    "from",
    "into",
    "eq",
    "cmp",
    "hash",
    "drop",
    "index",
    "deref",
    "take",
    "swap",
    "extend",
    "contains",
    "clear",
    "min",
    "max",
    "abs",
    "map",
    "find",
    "last",
    "count",
    "get_or_insert_with",
];

/// Rust keywords and call-shaped builtins that never name a
/// workspace fn.
fn is_call_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "move"
            | "Some"
            | "None"
            | "Ok"
            | "Err"
            | "Box"
            | "Vec"
            | "String"
            | "await"
    )
}

/// The crate prefix of a workspace path (`crates/core/src/x.rs` →
/// `crates/core`), or the leading directory otherwise.
fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        let end = rest.find('/').map_or(rest.len(), |i| 7 + i);
        &path[..end]
    } else {
        path.split('/').next().unwrap_or(path)
    }
}

/// Builds the workspace call graph over the given files.
pub fn build(files: &[SourceFile]) -> CallGraph {
    // Collect fn nodes in deterministic (file, source) order,
    // carrying enclosing impl/trait const generics down to each fn.
    let mut fns: Vec<FnNode> = Vec::new();
    fn collect(
        items: &[crate::parser::Item],
        fi: usize,
        inherited: &[Param],
        fns: &mut Vec<FnNode>,
    ) {
        for it in items {
            if it.kind == crate::parser::ItemKind::Fn {
                let mut consts = inherited.to_vec();
                consts.extend(it.consts.iter().cloned());
                fns.push(FnNode {
                    file: fi,
                    name: it.name.clone(),
                    self_of: it.self_of.clone(),
                    vis: it.vis,
                    in_test: it.in_test,
                    line: it.line,
                    col: it.col,
                    body: it.body,
                    params: it.params.clone(),
                    ret: it.ret.clone(),
                    consts,
                });
            }
            if it.children.is_empty() {
                continue;
            }
            if it.consts.is_empty() {
                collect(&it.children, fi, inherited, fns);
            } else {
                let mut inh = inherited.to_vec();
                inh.extend(it.consts.iter().cloned());
                collect(&it.children, fi, &inh, fns);
            }
        }
    }
    for (fi, sf) in files.iter().enumerate() {
        collect(&sf.ast.items, fi, &[], &mut fns);
    }

    // Name indexes (BTreeMap: deterministic candidate order).
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut assoc: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        match &f.self_of {
            Some(t) => {
                methods.entry(&f.name).or_default().push(i);
                assoc.entry((t, &f.name)).or_default().push(i);
            }
            None => free.entry(&f.name).or_default().push(i),
        }
    }

    let mut calls = Vec::new();
    let mut panics = Vec::new();
    for (u, node) in fns.iter().enumerate() {
        let Some((lo, hi)) = node.body else { continue };
        let sf = &files[node.file];
        let toks = &sf.scan.tokens;
        let hi = hi.min(toks.len());
        for k in lo..hi {
            let t = &toks[k];
            if t.kind != TokenKind::Ident {
                continue;
            }
            // Panic sites: `.unwrap()` family and panic macros.
            let after_dot = k > 0 && toks[k - 1].is_punct('.');
            if after_dot
                && matches!(
                    t.text.as_str(),
                    "unwrap" | "expect" | "unwrap_err" | "expect_err"
                )
                && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
            {
                panics.push(PanicSite {
                    func: u,
                    line: t.line,
                    col: t.col,
                    what: format!(".{}()", t.text),
                });
                continue;
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && toks.get(k + 1).is_some_and(|n| n.is_punct('!'))
            {
                panics.push(PanicSite {
                    func: u,
                    line: t.line,
                    col: t.col,
                    what: format!("{}!", t.text),
                });
                continue;
            }

            // Call sites: `name(` possibly with a `::<…>` turbofish.
            let Some(paren) = call_paren(toks, k, hi) else {
                continue;
            };
            if is_call_keyword(&t.text) {
                continue;
            }
            let name = t.text.as_str();
            let qualified = k >= 2 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':');
            let candidates: Vec<usize> = if after_dot {
                // Method call: name-only, blocklist guarded.
                if COMMON_METHODS.contains(&name) {
                    Vec::new()
                } else {
                    methods.get(name).cloned().unwrap_or_default()
                }
            } else if qualified {
                let q = (k >= 3)
                    .then(|| &toks[k - 3])
                    .filter(|q| q.kind == TokenKind::Ident);
                match q.map(|q| q.text.as_str()) {
                    Some("Self") => node
                        .self_of
                        .as_deref()
                        .and_then(|t| assoc.get(&(t, name)).cloned())
                        .unwrap_or_default(),
                    Some(q) => {
                        if let Some(v) = assoc.get(&(q, name)) {
                            // `Type::assoc_fn(…)`.
                            v.clone()
                        } else if q
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_lowercase() || c == '_')
                        {
                            // Module-qualified free fn (`par::map_indexed`).
                            narrow(&fns, files, node, free.get(name))
                        } else {
                            // Foreign type (`Ordering::Less(…)` etc.).
                            Vec::new()
                        }
                    }
                    None => Vec::new(),
                }
            } else {
                // Unqualified free call.
                if COMMON_METHODS.contains(&name) {
                    Vec::new()
                } else {
                    narrow(&fns, files, node, free.get(name))
                }
            };

            if candidates.is_empty() {
                continue;
            }
            let close = matching_paren(toks, paren, hi);
            let args = split_args(toks, paren + 1, close);
            for v in candidates {
                if v == u {
                    continue; // self-recursion adds nothing
                }
                calls.push(CallSite {
                    caller: u,
                    callee: v,
                    tok: k,
                    line: t.line,
                    col: t.col,
                    args: args.clone(),
                });
            }
        }
    }

    CallGraph { fns, calls, panics }
}

/// Narrows free-fn candidates: same file beats same crate beats
/// workspace-wide (over-approximating only when nothing closer
/// matches).
fn narrow(
    fns: &[FnNode],
    files: &[SourceFile],
    caller: &FnNode,
    cands: Option<&Vec<usize>>,
) -> Vec<usize> {
    let Some(cands) = cands else {
        return Vec::new();
    };
    let same_file: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&v| fns[v].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let cc = crate_of(&files[caller.file].path);
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&v| crate_of(&files[fns[v].file].path) == cc)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands.clone()
}

/// If token `k` is the callee name of a call, the index of its `(`
/// (handling a `::<…>` turbofish between name and paren).
pub(crate) fn call_paren(toks: &[Token], k: usize, hi: usize) -> Option<usize> {
    let n1 = toks.get(k + 1)?;
    if n1.is_punct('(') {
        return Some(k + 1);
    }
    // Turbofish: `name::<T>(…)`.
    if n1.is_punct(':')
        && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(k + 3).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i64;
        for (j, t) in toks.iter().enumerate().take(hi).skip(k + 3) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return toks.get(j + 1).filter(|t| t.is_punct('(')).map(|_| j + 1);
                }
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open` (clamped to `hi`).
pub(crate) fn matching_paren(toks: &[Token], open: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    hi.min(toks.len()).saturating_sub(1)
}

/// Splits `(lo..hi)` (exclusive of the parens) into top-level
/// argument token ranges.
pub(crate) fn split_args(toks: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut seg = lo;
    for (k, t) in toks.iter().enumerate().take(hi.min(toks.len())).skip(lo) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if seg < k {
                out.push((seg, k));
            }
            seg = k + 1;
        }
    }
    if seg < hi {
        out.push((seg, hi));
    }
    out
}

/// Whether a pragma for `rule` (with a written reason) covers `line`
/// in the given file — on the line itself or the line directly above.
fn pragma_covers(sf: &SourceFile, rule: &str, line: u32) -> Option<u32> {
    sf.scan
        .pragmas
        .iter()
        .find(|p| p.rule == rule && !p.reason.is_empty() && (p.line == line || p.line + 1 == line))
        .map(|p| p.line)
}

/// The `panic-reachability` analysis: a panic site transitively
/// reachable from a public API fn in a lib crate, with no
/// justification pragma anywhere on the path, is reported *at the
/// panic site* with the shortest call path from the nearest public
/// root.
///
/// Justifications cut the search in two places:
/// * a `lib-unwrap` or `panic-reachability` pragma at the panic site
///   proves the site safe — it is excluded up front (`lib-unwrap`
///   pragmas are consumed by the token rule; site-level
///   `panic-reachability` pragmas are returned as used);
/// * a `panic-reachability` pragma at a *call site* vouches for the
///   whole subtree behind that edge — the edge is cut, and the
///   pragma counts as used iff the callee actually reaches a panic.
///
/// Returns the findings plus `(file index, pragma line)` pairs for
/// mid-path pragmas the engine must mark used.
pub fn panic_reachability(
    files: &[SourceFile],
    g: &CallGraph,
) -> (Vec<Finding>, Vec<(usize, u32)>) {
    let n = g.fns.len();
    let mut used: Vec<(usize, u32)> = Vec::new();

    // Live panic sites: in lib crates, outside tests, not proven
    // safe at the site.
    let mut live: Vec<&PanicSite> = Vec::new();
    for p in &g.panics {
        let f = &g.fns[p.func];
        if f.in_test || !in_lib_crate(&files[f.file].path) {
            continue;
        }
        let sf = &files[f.file];
        if pragma_covers(sf, "lib-unwrap", p.line).is_some() {
            continue; // the unwrap itself is justified; so is reaching it
        }
        live.push(p);
    }

    // Which fns transitively reach a live panic (over ALL edges):
    // used to decide whether a cut-edge pragma actually suppressed
    // anything.
    let mut reaches_panic = vec![false; n];
    for p in &live {
        reaches_panic[p.func] = true;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for c in &g.calls {
            if reaches_panic[c.callee] && !reaches_panic[c.caller] {
                reaches_panic[c.caller] = true;
                changed = true;
            }
        }
    }

    // Partition edges: cut (pragma'd call sites) vs. traversable.
    let mut adj: Vec<Vec<&CallSite>> = vec![Vec::new(); n];
    for c in &g.calls {
        let caller = &g.fns[c.caller];
        if caller.in_test || g.fns[c.callee].in_test {
            continue;
        }
        let sf = &files[caller.file];
        if let Some(pline) = pragma_covers(sf, "panic-reachability", c.line) {
            if reaches_panic[c.callee] {
                used.push((caller.file, pline));
            }
            continue;
        }
        adj[c.caller].push(c);
    }

    // Multi-source BFS from public roots; first visit = shortest
    // hop path (deterministic: fns are in (file, source) order).
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    for (i, f) in g.fns.iter().enumerate() {
        if f.vis == Vis::Pub && !f.in_test && f.body.is_some() && in_lib_crate(&files[f.file].path)
        {
            visited[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for c in &adj[u] {
            if !visited[c.callee] {
                visited[c.callee] = true;
                parent[c.callee] = Some(u);
                queue.push_back(c.callee);
            }
        }
    }

    let mut findings = Vec::new();
    for p in live {
        if !visited[p.func] {
            continue;
        }
        // Reconstruct root → … → containing fn.
        let mut path = vec![p.func];
        let mut cur = p.func;
        while let Some(up) = parent[cur] {
            path.push(up);
            cur = up;
        }
        path.reverse();
        let chain: Vec<String> = path.iter().map(|&i| g.fns[i].display()).collect();
        let sf = &files[g.fns[p.func].file];
        findings.push(Finding {
            file: sf.path.clone(),
            line: p.line,
            col: p.col,
            rule: "panic-reachability",
            message: format!(
                "`{}` can panic and is reachable from public API `{}` via {}; \
                 return a Result or justify the site or a call edge with \
                 `// andi::allow(panic-reachability) — <proof>`",
                p.what,
                chain.first().map(String::as_str).unwrap_or("?"),
                chain.join(" → "),
            ),
        });
    }
    (findings, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> (Vec<SourceFile>, CallGraph) {
        let files: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::new(p, s)).collect();
        let g = build(&files);
        (files, g)
    }

    #[test]
    fn links_free_fns_within_a_file() {
        let (_, g) = ws(&[(
            "crates/core/src/a.rs",
            "pub fn entry() { helper(1); }\nfn helper(x: u32) -> u32 { x }\n",
        )]);
        assert_eq!(g.fns.len(), 2);
        assert_eq!(g.calls.len(), 1);
        assert_eq!(g.fns[g.calls[0].caller].name, "entry");
        assert_eq!(g.fns[g.calls[0].callee].name, "helper");
        assert_eq!(g.calls[0].args.len(), 1);
    }

    #[test]
    fn links_module_qualified_calls_across_crates() {
        let (_, g) = ws(&[
            (
                "crates/graph/src/par.rs",
                "pub fn map_indexed(threads: usize, n: usize) -> Vec<u64> { Vec::new() }\n",
            ),
            (
                "crates/core/src/recipe.rs",
                "pub fn run() { let v = par::map_indexed(4, 100); }\n",
            ),
        ]);
        assert_eq!(g.calls.len(), 1);
        assert_eq!(g.fns[g.calls[0].callee].name, "map_indexed");
        assert_eq!(g.calls[0].args.len(), 2);
    }

    #[test]
    fn prefers_same_file_over_other_crates() {
        let (files, g) = ws(&[
            (
                "crates/core/src/a.rs",
                "fn pick() {}\npub fn go() { pick(); }\n",
            ),
            ("crates/graph/src/b.rs", "pub fn pick() {}\n"),
        ]);
        assert_eq!(g.calls.len(), 1);
        assert_eq!(
            files[g.fns[g.calls[0].callee].file].path,
            "crates/core/src/a.rs"
        );
    }

    #[test]
    fn method_calls_resolve_by_name_with_blocklist() {
        let (_, g) = ws(&[(
            "crates/core/src/a.rs",
            "pub struct P;\nimpl P { pub fn restrict(&self) {} }\n\
             pub fn f(p: &P, v: Vec<u32>) { p.restrict(); let _n = v.len(); }\n",
        )]);
        // `restrict` links; `len` is blocklisted.
        assert_eq!(g.calls.len(), 1);
        assert_eq!(g.fns[g.calls[0].callee].name, "restrict");
    }

    #[test]
    fn panic_sites_are_collected() {
        let (_, g) = ws(&[(
            "crates/core/src/a.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g() { panic!(\"no\"); }\n",
        )]);
        let whats: Vec<&str> = g.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, vec![".unwrap()", "panic!"]);
    }

    #[test]
    fn reachability_reports_shortest_path_at_the_site() {
        let (files, g) = ws(&[(
            "crates/core/src/a.rs",
            "pub fn api() { mid(); }\nfn mid() { deep(); }\n\
             fn deep(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        let (findings, used) = panic_reachability(&files, &g);
        assert_eq!(findings.len(), 1);
        assert!(used.is_empty());
        let f = &findings[0];
        assert_eq!(f.rule, "panic-reachability");
        assert_eq!(f.line, 3);
        assert!(f.message.contains("api → mid → deep"), "{}", f.message);
    }

    #[test]
    fn site_pragma_justifies_the_panic() {
        let (files, g) = ws(&[(
            "crates/core/src/a.rs",
            "pub fn api(x: Option<u32>) -> u32 {\n\
             // andi::allow(lib-unwrap) — checked above\n  x.unwrap()\n}\n",
        )]);
        let (findings, _) = panic_reachability(&files, &g);
        assert!(findings.is_empty());
    }

    #[test]
    fn call_edge_pragma_cuts_the_path_and_counts_as_used() {
        let (files, g) = ws(&[(
            "crates/core/src/a.rs",
            "pub fn api() {\n// andi::allow(panic-reachability) — input validated by caller\n\
             mid();\n}\nfn mid(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        let (findings, used) = panic_reachability(&files, &g);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(used, vec![(0, 2)]);
    }

    #[test]
    fn test_code_is_never_a_root_or_a_path() {
        let (files, g) = ws(&[(
            "crates/core/src/a.rs",
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { helper(); }\n}\n\
             pub(crate) fn helper(x: Option<u32>) { x.unwrap(); }\n",
        )]);
        // helper is only reachable from tests; pub(crate) is not a root.
        let (findings, _) = panic_reachability(&files, &g);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cross_file_reachability() {
        let (files, g) = ws(&[
            (
                "crates/core/src/entry.rs",
                "pub fn api() { leaf::inner(); }\n",
            ),
            (
                "crates/core/src/leaf.rs",
                "pub(crate) fn inner(x: Option<u32>) { x.unwrap(); }\n",
            ),
        ]);
        let (findings, _) = panic_reachability(&files, &g);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].file, "crates/core/src/leaf.rs");
        assert!(findings[0].message.contains("api → inner"));
    }
}

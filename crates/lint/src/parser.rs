//! A lightweight recursive-descent *item* parser on top of the token
//! stream from [`crate::lexer`].
//!
//! The lexer strips comments and string contents; this layer
//! recovers the file's item structure — modules, functions with
//! signatures, `impl`/`trait` blocks, `use` paths — with exact token
//! spans, which is what the semantic rules need: real
//! `#[cfg(test)]`/`#[test]` subtree exemption, per-function body
//! ranges for the dataflow engine, and signatures for the workspace
//! call graph.
//!
//! It parses exactly as much Rust as the workspace uses. Anything it
//! does not understand degrades gracefully: unknown constructs are
//! recorded as [`ItemKind::Other`] spans (or skipped one token at a
//! time), and the parser is total — it never panics and always
//! terminates, which the property suite pins. Statement-level syntax
//! inside function bodies is *not* parsed here; the dataflow layer
//! works on the raw body token range.

use crate::lexer::{Token, TokenKind};

/// Item visibility, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vis {
    /// `pub` — part of the crate's public API surface.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — visible but not a
    /// public API root.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// What kind of item a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Mod,
    /// `fn name(…) { … }` (free, associated, or trait method).
    Fn,
    /// `impl [Trait for] Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
    /// `use path::to::thing;`.
    Use,
    /// `struct` / `enum` / `union` definition.
    TypeDef,
    /// `const` / `static` item.
    ConstItem,
    /// Anything else (type aliases, macro definitions/invocations,
    /// extern blocks, recovery spans).
    Other,
}

/// One function parameter: `name: Type` (name may be empty for
/// pattern parameters, `"self"` for receivers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Binding name (`""` for destructuring patterns).
    pub name: String,
    /// Normalized type text (token texts joined by single spaces).
    pub ty: String,
}

/// One parsed item with exact token spans.
#[derive(Clone, Debug)]
pub struct Item {
    /// Item class.
    pub kind: ItemKind,
    /// Item name (fn/mod/type name; full path text for `use`; the
    /// self-type name for `impl`; empty when unnamed).
    pub name: String,
    /// Visibility.
    pub vis: Vis,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// 1-based column of the item keyword.
    pub col: u32,
    /// Token index of the first attribute (== `start` when there are
    /// none).
    pub attr_start: usize,
    /// Token index of the item keyword.
    pub start: usize,
    /// Exclusive token index one past the item.
    pub end: usize,
    /// For `Fn`: the token range strictly inside the body braces.
    /// `None` for bodyless signatures (`fn f();`).
    pub body: Option<(usize, usize)>,
    /// For `Fn`: parsed parameters.
    pub params: Vec<Param>,
    /// For `Fn`: normalized return-type text (empty when `()`).
    pub ret: String,
    /// Const generics declared in this item's own `<…>` header
    /// (`const N: usize` → `Param { name: "N", ty: "usize" }`). For
    /// `Fn` these are the fn's own; enclosing `impl` headers carry
    /// their own list (the call graph merges them per fn).
    pub consts: Vec<Param>,
    /// Whether the item sits in a `#[cfg(test)]` / `#[test]` subtree
    /// (its own attributes or any ancestor's).
    pub in_test: bool,
    /// For fns inside `impl Type` / `trait Type`: the type name.
    pub self_of: Option<String>,
    /// Nested items (mod / impl / trait contents).
    pub children: Vec<Item>,
}

/// A parsed file: the item tree plus the token count it was built
/// from (for mask construction).
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Number of tokens in the underlying stream.
    pub n_tokens: usize,
}

impl FileAst {
    /// Marks every token inside a `#[cfg(test)]` / `#[test]` subtree.
    /// The mask is parallel to the token stream the AST was parsed
    /// from.
    pub fn test_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.n_tokens];
        fn walk(items: &[Item], mask: &mut [bool]) {
            for it in items {
                if it.in_test {
                    let end = it.end.min(mask.len());
                    for m in mask.iter_mut().take(end).skip(it.attr_start) {
                        *m = true;
                    }
                } else {
                    walk(&it.children, mask);
                }
            }
        }
        walk(&self.items, &mut mask);
        mask
    }

    /// Depth-first visit of every item (parents before children).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Item)) {
        fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
            for it in items {
                f(it);
                walk(&it.children, f);
            }
        }
        walk(&self.items, f);
    }
}

/// Parses one file's token stream into an item tree. Total: never
/// panics, always terminates, and unparseable stretches degrade to
/// [`ItemKind::Other`] spans.
pub fn parse(tokens: &[Token]) -> FileAst {
    let mut p = Parser { toks: tokens };
    let items = p.parse_items(0, tokens.len(), false, None);
    FileAst {
        items,
        n_tokens: tokens.len(),
    }
}

/// Keywords that can never start an expression-call we care about
/// and never name an item.
fn is_item_keyword(s: &str) -> bool {
    matches!(
        s,
        "mod"
            | "fn"
            | "impl"
            | "trait"
            | "use"
            | "struct"
            | "enum"
            | "union"
            | "const"
            | "static"
            | "type"
            | "extern"
            | "macro_rules"
            | "unsafe"
            | "async"
            | "default"
            | "pub"
    )
}

struct Parser<'a> {
    toks: &'a [Token],
}

impl<'a> Parser<'a> {
    fn ident_at(&self, i: usize) -> Option<&str> {
        let t = self.toks.get(i)?;
        (t.kind == TokenKind::Ident).then_some(t.text.as_str())
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    /// Index of the token closing the `{`/`(`/`[` opened at `open`.
    /// Clamps to `end` on imbalance (total, never panics).
    fn matching(&self, open: usize, end: usize, lo: char, hi: char) -> usize {
        let mut depth = 0i64;
        let mut k = open;
        while k < end.min(self.toks.len()) {
            let t = &self.toks[k];
            if t.is_punct(lo) {
                depth += 1;
            } else if t.is_punct(hi) {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            k += 1;
        }
        end.min(self.toks.len()).saturating_sub(1)
    }

    /// Skips a balanced generics group `<…>` starting at `i` (which
    /// must hold `<`); returns the index just past the closing `>`.
    /// `->` arrows inside (Fn-trait sugar) do not close the group.
    fn skip_generics(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut k = i;
        while k < end {
            let t = &self.toks[k];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                // `->`: the `>` belongs to an arrow, not the group.
                let is_arrow = k > 0
                    && self.toks[k - 1].is_punct('-')
                    && self.toks[k - 1].start + self.toks[k - 1].len == t.start;
                if !is_arrow {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
            }
            k += 1;
        }
        end
    }

    /// Extracts `const NAME: Ty` declarations from a generics group
    /// body `[lo, hi)` (the tokens strictly inside the `<…>`). Type
    /// and lifetime parameters are skipped; only const generics carry
    /// interval information for the prover.
    fn parse_const_generics(&self, lo: usize, hi: usize) -> Vec<Param> {
        let hi = hi.min(self.toks.len());
        let mut out = Vec::new();
        let mut k = lo;
        let mut depth = 0i64;
        while k < hi {
            let t = &self.toks[k];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.kind == TokenKind::Ident && t.text == "const" {
                if let Some(name) = self.ident_at(k + 1) {
                    if self.punct_at(k + 2, ':') {
                        // Type runs to the next `,` at this depth (or
                        // the end of the group).
                        let ty_lo = k + 3;
                        let mut ty_hi = ty_lo;
                        let mut d2 = 0i64;
                        while ty_hi < hi {
                            let u = &self.toks[ty_hi];
                            if u.is_punct('<') || u.is_punct('(') || u.is_punct('[') {
                                d2 += 1;
                            } else if u.is_punct('>') || u.is_punct(')') || u.is_punct(']') {
                                if d2 == 0 {
                                    break;
                                }
                                d2 -= 1;
                            } else if d2 == 0 && u.is_punct(',') {
                                break;
                            }
                            ty_hi += 1;
                        }
                        // A `= DEFAULT` tail is not part of the type.
                        let mut t_end = ty_hi;
                        for m in ty_lo..ty_hi {
                            if self.punct_at(m, '=') {
                                t_end = m;
                                break;
                            }
                        }
                        out.push(Param {
                            name: name.to_string(),
                            ty: join_tokens(&self.toks[ty_lo..t_end]),
                        });
                        k = ty_hi;
                        continue;
                    }
                }
            }
            k += 1;
        }
        out
    }

    /// Parses items in `[i, end)` until exhausted.
    fn parse_items(
        &mut self,
        mut i: usize,
        end: usize,
        in_test: bool,
        self_of: Option<&str>,
    ) -> Vec<Item> {
        let mut out = Vec::new();
        while i < end {
            let before = i;
            if let Some(item) = self.parse_item(&mut i, end, in_test, self_of) {
                out.push(item);
            }
            if i <= before {
                i = before + 1; // recovery: always make progress
            }
        }
        out
    }

    /// Parses one item starting at `*i`; advances `*i` past it.
    fn parse_item(
        &mut self,
        i: &mut usize,
        end: usize,
        parent_test: bool,
        self_of: Option<&str>,
    ) -> Option<Item> {
        let attr_start = *i;
        let mut attr_test = false;

        // Attributes. Inner attributes (`#![…]`) apply to the
        // enclosing scope, not the next item; skip them without
        // attaching.
        while self.punct_at(*i, '#') {
            let inner = self.punct_at(*i + 1, '!');
            let open = *i + 1 + usize::from(inner);
            if !self.punct_at(open, '[') {
                break;
            }
            let close = self.matching(open, end, '[', ']');
            if !inner && self.attr_is_test(open + 1, close) {
                attr_test = true;
            }
            *i = close + 1;
        }

        // Visibility.
        let mut vis = Vis::Private;
        if self.ident_at(*i) == Some("pub") {
            *i += 1;
            if self.punct_at(*i, '(') {
                vis = Vis::Restricted;
                *i = self.matching(*i, end, '(', ')') + 1;
            } else {
                vis = Vis::Pub;
            }
        }

        // Fn modifiers (`const unsafe async extern "C" default fn`).
        // `const` only counts as a modifier when a `fn` actually
        // follows within the modifier chain.
        let mut j = *i;
        loop {
            match self.ident_at(j) {
                Some("unsafe" | "async" | "default") => j += 1,
                Some("const")
                    if matches!(
                        self.ident_at(j + 1),
                        Some("fn" | "unsafe" | "async" | "extern")
                    ) =>
                {
                    j += 1
                }
                Some("extern")
                    if self
                        .toks
                        .get(j + 1)
                        .is_some_and(|t| t.kind == TokenKind::Str)
                        && self.ident_at(j + 2) == Some("fn") =>
                {
                    j += 2
                }
                _ => break,
            }
        }

        let in_test = parent_test || attr_test;
        let kw_at = j;
        let kw = self.ident_at(j)?.to_string();
        let (line, col) = self
            .toks
            .get(kw_at)
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1));
        let mk =
            |kind, name: String, start, item_end, body, params, ret, so: Option<String>| Item {
                kind,
                name,
                vis,
                line,
                col,
                attr_start,
                start,
                end: item_end,
                body,
                params,
                ret,
                consts: Vec::new(),
                in_test,
                self_of: so,
                children: Vec::new(),
            };

        match kw.as_str() {
            "fn" => {
                *i = j + 1;
                let name = self.ident_at(*i).unwrap_or("").to_string();
                *i += 1;
                let mut consts = Vec::new();
                if self.punct_at(*i, '<') {
                    let after = self.skip_generics(*i, end);
                    consts = self.parse_const_generics(*i + 1, after.saturating_sub(1));
                    *i = after;
                }
                let mut params = Vec::new();
                if self.punct_at(*i, '(') {
                    let close = self.matching(*i, end, '(', ')');
                    params = self.parse_params(*i + 1, close);
                    *i = close + 1;
                }
                // Return type: `->` … until `{`, `;`, or `where`.
                let mut ret = String::new();
                if self.punct_at(*i, '-') && self.punct_at(*i + 1, '>') {
                    *i += 2;
                    let stop = self.scan_to_fn_body(*i, end);
                    ret = join_tokens(&self.toks[*i..stop]);
                    *i = stop;
                } else {
                    *i = self.scan_to_fn_body(*i, end);
                }
                // Trim a trailing where-clause out of the return text.
                if let Some(w) = ret.find(" where ") {
                    ret.truncate(w);
                }
                let (body, item_end) = if self.punct_at(*i, '{') {
                    let close = self.matching(*i, end, '{', '}');
                    (Some((*i + 1, close)), close + 1)
                } else {
                    (None, (*i + 1).min(end)) // the `;`
                };
                *i = item_end;
                let mut item = mk(
                    ItemKind::Fn,
                    name,
                    kw_at,
                    item_end,
                    body,
                    params,
                    ret,
                    self_of.map(str::to_string),
                );
                item.consts = consts;
                Some(item)
            }
            "mod" => {
                *i = j + 1;
                let name = self.ident_at(*i).unwrap_or("").to_string();
                *i += 1;
                if self.punct_at(*i, '{') {
                    let close = self.matching(*i, end, '{', '}');
                    let children = self.parse_items(*i + 1, close, in_test, None);
                    *i = close + 1;
                    let mut item = mk(
                        ItemKind::Mod,
                        name,
                        kw_at,
                        close + 1,
                        None,
                        Vec::new(),
                        String::new(),
                        None,
                    );
                    item.children = children;
                    Some(item)
                } else {
                    let item_end = (*i + 1).min(end); // `mod name;`
                    *i = item_end;
                    Some(mk(
                        ItemKind::Mod,
                        name,
                        kw_at,
                        item_end,
                        None,
                        Vec::new(),
                        String::new(),
                        None,
                    ))
                }
            }
            "impl" | "trait" => {
                *i = j + 1;
                let mut consts = Vec::new();
                if kw == "impl" && self.punct_at(*i, '<') {
                    let after = self.skip_generics(*i, end);
                    consts = self.parse_const_generics(*i + 1, after.saturating_sub(1));
                    *i = after;
                }
                // Header up to the `{` (or `;` for `trait A = B;`).
                let header_start = *i;
                let mut k = *i;
                let mut angle = 0i64;
                while k < end {
                    let t = &self.toks[k];
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') && angle > 0 {
                        angle -= 1;
                    } else if angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
                        break;
                    }
                    k += 1;
                }
                let name = self.self_type_name(header_start, k);
                if self.punct_at(k, '{') {
                    let close = self.matching(k, end, '{', '}');
                    let children = self.parse_items(k + 1, close, in_test, Some(&name));
                    *i = close + 1;
                    let mut item = mk(
                        if kw == "impl" {
                            ItemKind::Impl
                        } else {
                            ItemKind::Trait
                        },
                        name,
                        kw_at,
                        close + 1,
                        None,
                        Vec::new(),
                        String::new(),
                        None,
                    );
                    item.consts = consts;
                    item.children = children;
                    Some(item)
                } else {
                    let item_end = (k + 1).min(end);
                    *i = item_end;
                    Some(mk(
                        ItemKind::Other,
                        name,
                        kw_at,
                        item_end,
                        None,
                        Vec::new(),
                        String::new(),
                        None,
                    ))
                }
            }
            "use" => {
                *i = j + 1;
                let start = *i;
                let item_end = self.skip_to_semi(i, end);
                Some(mk(
                    ItemKind::Use,
                    join_tokens(&self.toks[start..item_end.saturating_sub(1).max(start)]),
                    kw_at,
                    item_end,
                    None,
                    Vec::new(),
                    String::new(),
                    None,
                ))
            }
            "struct" | "enum" | "union" => {
                *i = j + 1;
                let name = self.ident_at(*i).unwrap_or("").to_string();
                let item_end = self.skip_type_def(i, end);
                Some(mk(
                    ItemKind::TypeDef,
                    name,
                    kw_at,
                    item_end,
                    None,
                    Vec::new(),
                    String::new(),
                    None,
                ))
            }
            "const" | "static" => {
                *i = j + 1;
                if self.ident_at(*i) == Some("mut") {
                    *i += 1;
                }
                let name = self.ident_at(*i).unwrap_or("").to_string();
                let item_end = self.skip_to_semi(i, end);
                Some(mk(
                    ItemKind::ConstItem,
                    name,
                    kw_at,
                    item_end,
                    None,
                    Vec::new(),
                    String::new(),
                    None,
                ))
            }
            "type" => {
                *i = j + 1;
                let name = self.ident_at(*i).unwrap_or("").to_string();
                let item_end = self.skip_to_semi(i, end);
                Some(mk(
                    ItemKind::Other,
                    name,
                    kw_at,
                    item_end,
                    None,
                    Vec::new(),
                    String::new(),
                    None,
                ))
            }
            "extern" | "macro_rules" => {
                // `extern crate x;`, `extern { … }`, `macro_rules! m { … }`.
                *i = j + 1;
                if kw == "macro_rules" && self.punct_at(*i, '!') {
                    *i += 1;
                    if self.ident_at(*i).is_some() {
                        *i += 1;
                    }
                }
                let item_end = if self.punct_at(*i, '{') {
                    self.matching(*i, end, '{', '}') + 1
                } else {
                    let mut k = *i;
                    self.skip_to_semi(&mut k, end)
                };
                *i = item_end;
                Some(mk(
                    ItemKind::Other,
                    String::new(),
                    kw_at,
                    item_end,
                    None,
                    Vec::new(),
                    String::new(),
                    None,
                ))
            }
            // Item-level macro invocation: `name! { … }` / `name!(…);`.
            name if !is_item_keyword(name) && self.punct_at(j + 1, '!') => {
                *i = j + 2;
                let item_end = if self.punct_at(*i, '{') {
                    self.matching(*i, end, '{', '}') + 1
                } else if self.punct_at(*i, '(') {
                    let close = self.matching(*i, end, '(', ')');
                    if self.punct_at(close + 1, ';') {
                        close + 2
                    } else {
                        close + 1
                    }
                } else if self.punct_at(*i, '[') {
                    let close = self.matching(*i, end, '[', ']');
                    if self.punct_at(close + 1, ';') {
                        close + 2
                    } else {
                        close + 1
                    }
                } else {
                    *i
                };
                *i = item_end;
                Some(mk(
                    ItemKind::Other,
                    name.to_string(),
                    kw_at,
                    item_end,
                    None,
                    Vec::new(),
                    String::new(),
                    None,
                ))
            }
            _ => {
                // Unknown: consume one token as a recovery span.
                *i = j + 1;
                None
            }
        }
    }

    /// Whether attribute body tokens in `[lo, hi)` mark test code:
    /// `test`, `cfg(test)`, or any `cfg(…)` mentioning `test`.
    fn attr_is_test(&self, lo: usize, hi: usize) -> bool {
        let body = &self.toks[lo.min(self.toks.len())..hi.min(self.toks.len())];
        match body.first() {
            Some(t) if t.is_ident("test") && body.len() == 1 => true,
            Some(t) if t.is_ident("cfg") => body[1..].iter().any(|t| t.is_ident("test")),
            _ => false,
        }
    }

    /// Scans forward from `i` to the fn body `{` or terminating `;`
    /// at depth 0 (skipping a where clause and any grouped tokens).
    fn scan_to_fn_body(&self, i: usize, end: usize) -> usize {
        let mut k = i;
        let mut angle = 0i64;
        let mut paren = 0i64;
        while k < end {
            let t = &self.toks[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                let is_arrow = k > 0
                    && self.toks[k - 1].is_punct('-')
                    && self.toks[k - 1].start + self.toks[k - 1].len == t.start;
                if !is_arrow {
                    angle -= 1;
                }
            } else if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if paren <= 0 && angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
                return k;
            }
            k += 1;
        }
        end
    }

    /// Advances past the next `;` at depth 0 (braces/brackets/parens
    /// tracked); returns the index just past it.
    fn skip_to_semi(&self, i: &mut usize, end: usize) -> usize {
        let mut depth = 0i64;
        while *i < end {
            let t = &self.toks[*i];
            if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                *i += 1;
                return *i;
            }
            *i += 1;
        }
        *i
    }

    /// End of a struct/enum/union definition: past the brace block or
    /// the `;` (tuple structs / unit structs), whichever comes first
    /// at depth 0.
    fn skip_type_def(&self, i: &mut usize, end: usize) -> usize {
        let mut depth = 0i64;
        while *i < end {
            let t = &self.toks[*i];
            if t.is_punct('{') && depth == 0 {
                *i = self.matching(*i, end, '{', '}') + 1;
                return *i;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct(';') && depth == 0 {
                *i += 1;
                return *i;
            }
            *i += 1;
        }
        *i
    }

    /// The self-type name of an `impl` header in `[lo, hi)`: the last
    /// angle-depth-0 identifier after `for` (trait impls) or in the
    /// whole header (inherent impls); generic arguments are skipped.
    fn self_type_name(&self, lo: usize, hi: usize) -> String {
        let mut seg_lo = lo;
        let mut angle = 0i64;
        for k in lo..hi.min(self.toks.len()) {
            if angle == 0 && self.toks[k].is_ident("for") {
                seg_lo = k + 1;
            }
            if self.toks[k].is_punct('<') {
                angle += 1;
            } else if self.toks[k].is_punct('>') && angle > 0 {
                angle -= 1;
            }
        }
        let mut name = String::new();
        let mut angle = 0i64;
        for k in seg_lo..hi.min(self.toks.len()) {
            let t = &self.toks[k];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                angle -= 1;
            } else if angle == 0
                && t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "where" | "mut")
            {
                name = t.text.clone();
            } else if angle == 0 && t.is_ident("where") {
                break;
            }
        }
        name
    }

    /// Parses a parameter list between parens `(lo..hi)` exclusive of
    /// the delimiters.
    fn parse_params(&self, lo: usize, hi: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut depth = 0i64;
        let mut seg = lo;
        let mut k = lo;
        let hi = hi.min(self.toks.len());
        let flush = |a: usize, b: usize, params: &mut Vec<Param>| {
            if a >= b {
                return;
            }
            params.push(self.parse_one_param(a, b));
        };
        while k < hi {
            let t = &self.toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('>') && depth > 0 {
                let is_arrow = k > 0
                    && self.toks[k - 1].is_punct('-')
                    && self.toks[k - 1].start + self.toks[k - 1].len == t.start;
                if !is_arrow {
                    depth -= 1;
                }
            } else if t.is_punct(',') && depth == 0 {
                flush(seg, k, &mut params);
                seg = k + 1;
            }
            k += 1;
        }
        flush(seg, hi, &mut params);
        params
    }

    /// One parameter from tokens `[a, b)`: `[mut] name: Type`,
    /// `[&[mut]] self`, or a pattern (empty name).
    fn parse_one_param(&self, mut a: usize, b: usize) -> Param {
        while a < b
            && (self.toks[a].is_ident("mut")
                || self.toks[a].is_punct('&')
                || self.toks[a].kind == TokenKind::Lifetime)
        {
            a += 1;
        }
        if self.ident_at(a) == Some("self") {
            return Param {
                name: "self".to_string(),
                ty: String::new(),
            };
        }
        if a < b && self.toks[a].kind == TokenKind::Ident && self.punct_at(a + 1, ':') {
            return Param {
                name: self.toks[a].text.clone(),
                ty: join_tokens(&self.toks[(a + 2).min(b)..b]),
            };
        }
        Param {
            name: String::new(),
            ty: join_tokens(&self.toks[a..b]),
        }
    }
}

/// Joins token texts with single spaces (normalized type/path text).
fn join_tokens(toks: &[Token]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() && !t.is_punct(':') && !s.ends_with(':') && !s.ends_with('&') {
            s.push(' ');
        }
        s.push_str(&t.text);
    }
    s.trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn ast(src: &str) -> FileAst {
        parse(&scan(src).tokens)
    }

    fn flat(ast: &FileAst) -> Vec<(ItemKind, String, bool)> {
        let mut out = Vec::new();
        ast.visit(&mut |it| out.push((it.kind, it.name.clone(), it.in_test)));
        out
    }

    #[test]
    fn parses_free_fns_with_signatures() {
        let a = ast("pub fn add(a: u64, b: u64) -> u64 { a + b }\nfn noop() {}\n");
        let items = &a.items;
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert_eq!(items[0].name, "add");
        assert_eq!(items[0].vis, Vis::Pub);
        assert_eq!(items[0].params.len(), 2);
        assert_eq!(items[0].params[0].name, "a");
        assert_eq!(items[0].params[0].ty, "u64");
        assert_eq!(items[0].ret, "u64");
        assert!(items[0].body.is_some());
        assert_eq!(items[1].vis, Vis::Private);
    }

    #[test]
    fn generics_where_clauses_and_impl_ret() {
        let a = ast(
            "pub fn m<T, F>(n: usize, f: F) -> Vec<T> where F: Fn(usize) -> T + Sync { todo!() }\n\
             pub fn it(&self) -> impl Iterator<Item = u32> + '_ { 0..3 }\n",
        );
        assert_eq!(a.items[0].name, "m");
        assert_eq!(a.items[0].params.len(), 2);
        assert_eq!(a.items[0].params[1].name, "f");
        assert!(a.items[0].ret.starts_with("Vec"), "{:?}", a.items[0].ret);
        assert_eq!(a.items[1].name, "it");
        assert!(a.items[1].ret.contains("Iterator"));
    }

    #[test]
    fn impl_blocks_carry_self_type() {
        let a = ast(
            "impl<O: EdgeOracle> Walk<'_, O> { fn step(&mut self) {} }\n\
             impl std::fmt::Display for Error { fn fmt(&self) -> u8 { 0 } }\n\
             impl Default for Config { fn default() -> Self { Config }\n}",
        );
        assert_eq!(a.items[0].kind, ItemKind::Impl);
        assert_eq!(a.items[0].name, "Walk");
        assert_eq!(a.items[0].children[0].self_of.as_deref(), Some("Walk"));
        assert_eq!(a.items[1].name, "Error");
        assert_eq!(a.items[2].name, "Config");
        assert_eq!(a.items[2].children[0].name, "default");
    }

    #[test]
    fn cfg_test_subtrees_are_marked() {
        let src = "pub fn lib_code() {}\n\
                   #[cfg(test)]\nmod tests {\n  use super::*;\n  #[test]\n  fn t() { lib_code(); }\n}\n";
        let a = ast(src);
        assert!(!a.items[0].in_test);
        assert!(a.items[1].in_test);
        assert_eq!(a.items[1].kind, ItemKind::Mod);
        // Every child inherits.
        assert!(a.items[1].children.iter().all(|c| c.in_test));
        // The mask covers the mod's tokens.
        let mask = a.test_mask();
        let toks = scan(src).tokens;
        let idx = toks.iter().position(|t| t.is_ident("t")).unwrap();
        assert!(mask[idx]);
        let lib = toks.iter().position(|t| t.is_ident("lib_code")).unwrap();
        assert!(!mask[lib]);
    }

    #[test]
    fn test_attr_on_fn_marks_it() {
        let a = ast("#[test]\nfn check() { assert!(true); }\npub fn real() {}\n");
        assert!(a.items[0].in_test);
        assert!(!a.items[1].in_test);
    }

    #[test]
    fn pub_crate_is_restricted() {
        let a = ast("pub(crate) fn helper() {}\npub(super) fn up() {}\n");
        assert_eq!(a.items[0].vis, Vis::Restricted);
        assert_eq!(a.items[1].vis, Vis::Restricted);
    }

    #[test]
    fn const_fn_vs_const_item() {
        let a = ast("pub const LIMIT: usize = 3;\npub const fn cap() -> usize { LIMIT }\n");
        assert_eq!(a.items[0].kind, ItemKind::ConstItem);
        assert_eq!(a.items[0].name, "LIMIT");
        assert_eq!(a.items[1].kind, ItemKind::Fn);
        assert_eq!(a.items[1].name, "cap");
    }

    #[test]
    fn structs_enums_uses_and_macros() {
        let a = ast("use std::collections::BTreeMap;\n\
             pub struct P(pub u32);\n\
             pub enum E { A, B(u8) }\n\
             struct S { x: u32 }\n\
             macro_rules! m { () => {}; }\n\
             thread_local! { static X: u32 = 0; }\n");
        let kinds: Vec<ItemKind> = a.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::TypeDef,
                ItemKind::TypeDef,
                ItemKind::TypeDef,
                ItemKind::Other,
                ItemKind::Other,
            ]
        );
        assert_eq!(a.items[1].name, "P");
        assert_eq!(a.items[2].name, "E");
    }

    #[test]
    fn nested_mods_inherit_test_scope() {
        let a = ast(
            "#[cfg(test)]\nmod outer {\n  mod inner {\n    fn deep() { x.unwrap(); }\n  }\n}\n",
        );
        let all = flat(&a);
        assert!(all.iter().all(|(_, _, t)| *t), "{all:?}");
    }

    #[test]
    fn traits_parse_their_methods() {
        let a = ast(
            "pub trait Oracle { fn n(&self) -> usize; fn has(&self, i: usize) -> bool { i < self.n() } }",
        );
        assert_eq!(a.items[0].kind, ItemKind::Trait);
        assert_eq!(a.items[0].name, "Oracle");
        assert_eq!(a.items[0].children.len(), 2);
        assert!(a.items[0].children[0].body.is_none());
        assert!(a.items[0].children[1].body.is_some());
        assert_eq!(a.items[0].children[1].self_of.as_deref(), Some("Oracle"));
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl {",
            "pub pub pub",
            "#[cfg(test) fn x",
            "mod m { fn f( }",
            "struct",
            "} } }",
            "fn f<T(x: T) {}",
        ] {
            let a = ast(src);
            // Mask construction must also be total.
            let _ = a.test_mask();
        }
    }

    #[test]
    fn body_ranges_are_exact() {
        let src = "fn f() { let x = 1; }";
        let a = ast(src);
        let toks = scan(src).tokens;
        let (lo, hi) = a.items[0].body.unwrap();
        let texts: Vec<&str> = toks[lo..hi].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "1", ";"]);
    }
}

//! The rule catalogue: token-stream matchers plus the semantic
//! (call-graph / dataflow) rules.
//!
//! Every rule guards one leg of the workspace's headline guarantee —
//! reproducible risk numbers (see `DESIGN.md` §"Static-analysis
//! layer" and §"Semantic analysis layer"):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `nondet-iteration` | no result-affecting iteration of `HashMap`/`HashSet` |
//! | `lib-unwrap` | no `unwrap`/`expect` panics reachable from library APIs |
//! | `wallclock-in-core` | no `Instant`/`SystemTime` outside `crates/bench` |
//! | `unseeded-rng` | no entropy-seeded RNG construction in core/graph |
//! | `thread-spawn-outside-par` | all threading goes through `andi_graph::par` |
//! | `panic-reachability` | no panic transitively reachable from a public API |
//! | `seed-provenance` | no RNG seed fed from a nondeterministic source |
//! | `float-merge-order` | no float merge whose grouping tracks the thread count |
//! | `result-discard` | no `Result` from a fallible workspace fn silently dropped |
//! | `poll-reachability` | no long budget-reachable loop that never reaches a poll |
//! | `unchecked-width` | every op in a proven region fits its type's width |
//! | `assume-soundness` | every `andi::assume` is backed by a runtime guard |
//! | `leak-to-log` | no sensitive data reaches a format/log/write sink undeclared |
//! | `leak-in-error` | no sensitive data flows into error payloads or error `Display` |
//! | `sensitive-debug` | no `Debug` on a sensitive type without declassification |
//!
//! Token matchers are heuristics over the token stream (there is no
//! type information), tuned to the idioms of this workspace: they
//! must flag every real violation class we have seen while never
//! flagging the fixture near-misses. The semantic rules run on the
//! parsed item trees and the workspace call graph ([`crate::graph`],
//! [`crate::dataflow`]). Paths are workspace-relative with `/`
//! separators; `#[cfg(test)]` / `#[test]` subtrees (real parser
//! scopes, not heuristics) are exempt from every rule — test code
//! may panic and may time things.

use crate::dataflow::{float_merge_order, poll_reachability, result_discard, seed_provenance};
use crate::graph::{panic_reachability, CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};

/// One reported violation.
#[derive(Clone, Debug, PartialEq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule name (suppressible via `andi::allow(<rule>)`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Catalogue entry, surfaced by `andi-lint rules` and the docs.
pub struct RuleInfo {
    /// Stable rule name.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// The rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "nondet-iteration",
        summary: "iterating a HashMap/HashSet binding without a sort or BTree conversion",
        scope: "crates/{core,graph,mining,data}/src",
    },
    RuleInfo {
        name: "lib-unwrap",
        summary: "unwrap()/expect() (and *_err variants) in non-test library code",
        scope: "crates/{core,graph,mining,data}/src",
    },
    RuleInfo {
        name: "wallclock-in-core",
        summary: "Instant/SystemTime outside crates/bench",
        scope: "everything except crates/bench and crates/graph/src/par.rs (the Budget clock)",
    },
    RuleInfo {
        name: "unseeded-rng",
        summary: "entropy-seeded RNG construction (thread_rng/from_entropy/OsRng)",
        scope: "crates/{core,graph}/src",
    },
    RuleInfo {
        name: "thread-spawn-outside-par",
        summary: "raw std::thread/crossbeam use outside andi_graph::par",
        scope: "everything except crates/graph/src/{par,faults}.rs",
    },
    RuleInfo {
        name: "panic-reachability",
        summary: "panic site transitively reachable from a public API fn (shortest path)",
        scope: "crates/{core,graph,mining,data}/src",
    },
    RuleInfo {
        name: "seed-provenance",
        summary: "RNG seed fed from a nondeterministic source instead of run config",
        scope: "crates/{core,graph,mining,data}/src",
    },
    RuleInfo {
        name: "float-merge-order",
        summary: "float accumulation whose grouping depends on the thread count",
        scope: "crates/{core,graph}/src except par.rs",
    },
    RuleInfo {
        name: "result-discard",
        summary: "Result of a fallible workspace fn silently discarded",
        scope: "crates/{core,graph,mining,data}/src",
    },
    RuleInfo {
        name: "poll-reachability",
        summary: "long non-constant loop reachable from a budgeted entry point that \
                  never reaches a Budget/CancelToken poll, even through calls",
        scope: "crates/{core,graph,mining,data,oracle}/src",
    },
    RuleInfo {
        name: "unchecked-width",
        summary: "arithmetic op inside an andi::prove_no_overflow region whose interval \
                  is not provably within its type's width",
        scope: "everywhere a prove_no_overflow contract appears",
    },
    RuleInfo {
        name: "assume-soundness",
        summary: "andi::assume contract with no dominating runtime guard mentioning its \
                  free identifiers",
        scope: "everywhere an assume contract appears",
    },
    RuleInfo {
        name: "leak-to-log",
        summary: "sensitive data (andi::sensitive sources) reaching a format!/log/write \
                  sink without an andi::declassify boundary",
        scope: "every non-test fn body",
    },
    RuleInfo {
        name: "leak-in-error",
        summary: "sensitive data flowing into an Error constructor payload or an error \
                  Display body",
        scope: "every non-test fn body",
    },
    RuleInfo {
        name: "sensitive-debug",
        summary: "#[derive(Debug)] or manual Debug impl on an andi::sensitive type \
                  without declassification",
        scope: "every non-test type definition",
    },
    RuleInfo {
        name: "invalid-pragma",
        summary: "andi::allow/declassify/sensitive pragma without a rule name, target, \
                  or written justification",
        scope: "everywhere",
    },
    RuleInfo {
        name: "unused-pragma",
        summary: "andi::allow or andi::declassify pragma that suppresses/sanctions nothing",
        scope: "everywhere",
    },
];

/// Whether `name` is a known suppressible rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

const LIB_CRATES: &[&str] = &[
    "crates/core/src/",
    "crates/graph/src/",
    "crates/mining/src/",
    "crates/data/src/",
    "crates/oracle/src/",
    "crates/serve/src/",
];

pub(crate) fn in_lib_crate(path: &str) -> bool {
    LIB_CRATES.iter().any(|p| path.starts_with(p))
}

/// Runs the semantic rules over the whole workspace: the call-graph
/// reachability analysis and the three dataflow rules. Returns the
/// findings plus `(file index, pragma line)` pairs for mid-path
/// pragmas that cut a reachability edge (the engine marks those
/// used).
pub fn run_semantic_rules(
    files: &[SourceFile],
    graph: &CallGraph,
) -> (Vec<Finding>, Vec<(usize, u32)>) {
    let (mut findings, used) = panic_reachability(files, graph);
    findings.extend(seed_provenance(files, graph));
    findings.extend(float_merge_order(files, graph));
    findings.extend(result_discard(files, graph));
    findings.extend(poll_reachability(files, graph));
    (findings, used)
}

/// Runs every applicable rule over one file's tokens. `is_test[i]`
/// marks tokens inside `#[cfg(test)]` / `#[test]` items.
pub fn run_rules(path: &str, tokens: &[Token], is_test: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if in_lib_crate(path) {
        nondet_iteration(path, tokens, is_test, &mut findings);
        lib_unwrap(path, tokens, is_test, &mut findings);
    }
    // par.rs hosts the Budget deadline clock — the one sanctioned
    // Instant in library code (results never depend on it: a deadline
    // only turns an answer into a structured BudgetExceeded).
    if !path.starts_with("crates/bench/") && path != "crates/graph/src/par.rs" {
        wallclock(path, tokens, is_test, &mut findings);
    }
    if path.starts_with("crates/core/src/") || path.starts_with("crates/graph/src/") {
        unseeded_rng(path, tokens, is_test, &mut findings);
    }
    // faults.rs injects delays via std::thread::sleep on the current
    // worker; it never spawns.
    if path != "crates/graph/src/par.rs" && path != "crates/graph/src/faults.rs" {
        thread_spawn(path, tokens, is_test, &mut findings);
    }
    findings
}

fn finding(path: &str, t: &Token, rule: &'static str, message: String) -> Finding {
    Finding {
        file: path.to_string(),
        line: t.line,
        col: t.col,
        rule,
        message,
    }
}

/// `lib-unwrap`: `.unwrap()`, `.expect(`, `.unwrap_err()`,
/// `.expect_err(` in non-test library code. Safe combinators
/// (`unwrap_or`, `unwrap_or_else`, …) do not match because the
/// identifier comparison is exact.
fn lib_unwrap(path: &str, tokens: &[Token], is_test: &[bool], out: &mut Vec<Finding>) {
    for i in 1..tokens.len() {
        if is_test[i] {
            continue;
        }
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if !matches!(
            t.text.as_str(),
            "unwrap" | "expect" | "unwrap_err" | "expect_err"
        ) {
            continue;
        }
        let preceded_by_dot = tokens[i - 1].is_punct('.');
        let followed_by_paren = tokens.get(i + 1).is_some_and(|n| n.is_punct('('));
        if preceded_by_dot && followed_by_paren {
            out.push(finding(
                path,
                t,
                "lib-unwrap",
                format!(
                    ".{}() can panic in library code; return a Result or prove safety \
                     with `// andi::allow(lib-unwrap) — <proof>`",
                    t.text
                ),
            ));
        }
    }
}

/// `wallclock-in-core`: any `Instant` / `SystemTime` identifier.
fn wallclock(path: &str, tokens: &[Token], is_test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if is_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "Instant" | "SystemTime") {
            out.push(finding(
                path,
                t,
                "wallclock-in-core",
                format!(
                    "{} makes results depend on wall-clock time; timing belongs in crates/bench",
                    t.text
                ),
            ));
        }
    }
}

/// `unseeded-rng`: constructing an RNG from ambient entropy instead
/// of a caller-supplied seed.
fn unseeded_rng(path: &str, tokens: &[Token], is_test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if is_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng"
        ) {
            out.push(finding(
                path,
                t,
                "unseeded-rng",
                format!(
                    "{} draws ambient entropy; core/graph RNGs must take a caller-supplied seed",
                    t.text
                ),
            ));
        }
    }
}

/// `thread-spawn-outside-par`: `crossbeam` anywhere, `std::thread`
/// or `thread::spawn` sequences, outside `andi_graph::par`.
fn thread_spawn(path: &str, tokens: &[Token], is_test: &[bool], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if is_test[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "crossbeam" => true,
            "std" => path_follows(tokens, i, "thread"),
            "thread" => path_follows(tokens, i, "spawn"),
            _ => false,
        };
        if hit {
            out.push(finding(
                path,
                t,
                "thread-spawn-outside-par",
                "raw threading bypasses the deterministic parallel layer; \
                 use andi_graph::par::map_indexed"
                    .to_string(),
            ));
        }
    }
}

/// For a `while` keyword at `i`, the index of the body `{` (the first
/// brace outside any parens/brackets in the condition).
pub(crate) fn loop_body_open(tokens: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(i + 1).take(200) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') && depth == 0 {
            return Some(k);
        }
    }
    None
}

/// For an opening `{` at `open`, the index of its matching `}`.
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether tokens `i+1..=i+3` spell `::<seg>`.
fn path_follows(tokens: &[Token], i: usize, seg: &str) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(seg))
}

/// Iteration methods whose order leaks into results.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// `nondet-iteration`: collect identifiers bound to `HashMap` /
/// `HashSet` (let bindings, struct fields, fn params — anything of
/// the shape `name: HashMap<…>` or `name = HashMap::new()`), then
/// flag `for … in` loops and iteration-method calls on them, unless
/// the same statement converts through a `BTreeMap`/`BTreeSet` or a
/// sort.
fn nondet_iteration(path: &str, tokens: &[Token], is_test: &[bool], out: &mut Vec<Finding>) {
    let mut hashy: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if is_test[i] || !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        if let Some(name) = binding_name(tokens, i) {
            if !hashy.contains(&name) {
                hashy.push(name);
            }
        }
    }
    if hashy.is_empty() {
        return;
    }

    for (i, t) in tokens.iter().enumerate() {
        if is_test[i] {
            continue;
        }
        // `for <pat> in <expr> {`: flag a hashy identifier anywhere in
        // <expr>.
        if t.is_ident("for") {
            if let Some((expr_lo, expr_hi)) = for_loop_expr(tokens, i) {
                let segment = &tokens[expr_lo..expr_hi];
                if let Some(h) = segment
                    .iter()
                    .find(|t| t.kind == TokenKind::Ident && hashy.contains(&t.text))
                {
                    if !has_order_fix(segment) {
                        out.push(finding(
                            path,
                            h,
                            "nondet-iteration",
                            format!(
                                "iterating hash-ordered `{}`: order is nondeterministic; \
                                 use a BTree collection or sort first",
                                h.text
                            ),
                        ));
                    }
                }
                continue;
            }
        }
        // `<hashy>.iter()` and friends, outside a for-expr (the loop
        // case above already covers those tokens).
        if t.kind == TokenKind::Ident && hashy.contains(&t.text) {
            let is_iter_call = tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && tokens
                    .get(i + 2)
                    .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
                && tokens.get(i + 3).is_some_and(|n| n.is_punct('('));
            if is_iter_call && !in_for_expr(tokens, i) {
                let start = statement_start(tokens, i);
                let end = statement_end(tokens, i);
                if !has_order_fix(&tokens[start..end]) {
                    out.push(finding(
                        path,
                        t,
                        "nondet-iteration",
                        format!(
                            "`{}.{}()` iterates in hash order; convert through a BTree \
                             collection or sort the result",
                            t.text,
                            tokens[i + 2].text
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether a token segment contains an order-restoring operation.
fn has_order_fix(segment: &[Token]) -> bool {
    segment.iter().any(|t| {
        t.kind == TokenKind::Ident && (t.text.starts_with("BTree") || t.text.starts_with("sort"))
    })
}

/// For a `HashMap`/`HashSet` ident at `j`, resolves the name it is
/// bound to: `name: [&mut] [path::]HashMap<…>` or
/// `name = [path::]HashMap`.
fn binding_name(tokens: &[Token], j: usize) -> Option<String> {
    // Step over leading path segments (`std::collections::HashMap`).
    let mut k = j;
    while k >= 3
        && tokens[k - 1].is_punct(':')
        && tokens[k - 2].is_punct(':')
        && tokens[k - 3].kind == TokenKind::Ident
    {
        k -= 3;
    }
    // Step over reference sigils and mutability (`&mut HashMap`,
    // `&'a HashMap`) so borrowed parameters still resolve.
    while k >= 1
        && (tokens[k - 1].is_punct('&')
            || tokens[k - 1].is_ident("mut")
            || tokens[k - 1].kind == TokenKind::Lifetime)
    {
        k -= 1;
    }
    if k < 2 {
        return None;
    }
    let (prev, prev2) = (&tokens[k - 1], &tokens[k - 2]);
    let name_before_colon =
        prev.is_punct(':') && !prev2.is_punct(':') && prev2.kind == TokenKind::Ident;
    let name_before_eq = prev.is_punct('=')
        && prev2.kind == TokenKind::Ident
        && !matches!(prev2.text.as_str(), "if" | "while" | "return" | "else");
    if name_before_colon || name_before_eq {
        Some(prev2.text.clone())
    } else {
        None
    }
}

/// For a `for` keyword at `i`, the token range of the loop
/// expression: from after `in` to the body `{`.
pub(crate) fn for_loop_expr(tokens: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut in_at = None;
    for (k, t) in tokens.iter().enumerate().skip(i + 1).take(200) {
        match () {
            _ if t.is_punct('(') || t.is_punct('[') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            _ if t.is_ident("in") && depth == 0 && in_at.is_none() => in_at = Some(k + 1),
            _ if t.is_punct('{') && depth == 0 => {
                return in_at.map(|lo| (lo, k));
            }
            _ => {}
        }
    }
    None
}

/// Whether token `i` lies inside some enclosing `for` expression
/// (between `in` and the body `{`).
fn in_for_expr(tokens: &[Token], i: usize) -> bool {
    let lo = i.saturating_sub(200);
    (lo..i)
        .filter(|&k| tokens[k].is_ident("for"))
        .any(|k| for_loop_expr(tokens, k).is_some_and(|(a, b)| a <= i && i < b))
}

/// Start of the statement containing token `i`: the token after the
/// previous `;`, `{`, or `}` at the same bracket depth (bounded
/// back-walk). Lets the neutralizer scan see a `BTreeMap` in a `let`
/// type annotation left of the receiver.
fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let lo = i.saturating_sub(200);
    for k in (lo..i).rev() {
        let t = &tokens[k];
        if t.is_punct(')') || t.is_punct(']') {
            depth += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if depth == 0 {
                return k + 1;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            return k + 1;
        }
    }
    lo
}

/// End (exclusive) of the statement containing token `i`: the next
/// `;` or `{` at the same bracket depth, or a closing bracket that
/// leaves the expression.
fn statement_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(i) {
        match () {
            _ if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                if depth == 0 {
                    return k;
                }
                depth -= 1;
            }
            _ if t.is_punct(';') && depth == 0 => return k,
            _ => {}
        }
    }
    tokens.len()
}

//! CLI for `andi-lint`.
//!
//! ```text
//! andi-lint check [--root DIR] [--format human|json|sarif]
//! andi-lint check --file PATH --as VIRTUAL [--file … --as …] [--format human|json|sarif]
//! andi-lint prove [--root DIR]
//! andi-lint taint [--root DIR] [--format human|json]
//! andi-lint rules
//! ```
//!
//! `--file/--as` may repeat: the named files are linted together as
//! one virtual workspace, which is how the cross-file fixtures
//! exercise the call graph. `prove` runs only the interval prover
//! over the contract pragmas and prints a proof summary. `taint`
//! runs only the information-flow layer and prints the
//! source→…→sink flow stats plus the declassify inventory. Exit
//! codes: 0 = clean, 1 = findings, 2 = usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use andi_lint::{
    check_tree, format_human, format_json, format_sarif, lint_files, prove_tree, taint_tree, RULES,
};

const USAGE: &str = "usage: andi-lint check [--root DIR] [--file PATH --as VIRTUAL]... \
                     [--format human|json|sarif] | andi-lint prove [--root DIR] | \
                     andi-lint taint [--root DIR] [--format human|json] | andi-lint rules";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("prove") => prove(&args[1..]),
        Some("taint") => taint(&args[1..]),
        Some("rules") => {
            for r in RULES {
                println!("{:<26} {:<40} {}", r.name, r.scope, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn prove(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let proved = match prove_tree(&root) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("andi-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut all = proved.findings.clone();
    all.extend(proved.hygiene.iter().cloned());
    all.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    print!("{}", format_human(&all));
    println!(
        "andi-lint prove: {} region{}, {} checked op{}, {} assume{}, {} fn{} analyzed",
        proved.stats.regions,
        if proved.stats.regions == 1 { "" } else { "s" },
        proved.stats.checked_ops,
        if proved.stats.checked_ops == 1 {
            ""
        } else {
            "s"
        },
        proved.stats.assumes,
        if proved.stats.assumes == 1 { "" } else { "s" },
        proved.stats.fns_analyzed,
        if proved.stats.fns_analyzed == 1 {
            ""
        } else {
            "s"
        },
    );
    if all.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn taint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("--root needs a value\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next() {
                Some(v) if v == "human" || v == "json" => format = v.clone(),
                _ => {
                    eprintln!("--format must be human or json");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match taint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("andi-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut all = report.findings.clone();
    all.extend(report.hygiene.iter().cloned());
    all.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    let s = &report.stats;
    if format == "json" {
        // Structured flow stats for the CI artifact: findings first,
        // then the declassify inventory with its sanctioned chains.
        print!("{}", format_json(&all));
        println!("{{");
        println!(
            "  \"sensitive_types\": {}, \"sensitive_members\": {}, \"bearing_types\": {},",
            s.sensitive_types.len(),
            s.sensitive_members,
            s.bearing_types.len()
        );
        println!(
            "  \"fns_analyzed\": {}, \"raw_returning_fns\": {}, \"sink_sites\": {},",
            s.fns_analyzed, s.raw_returning_fns, s.sink_sites
        );
        println!("  \"declassifies\": [");
        let esc = |v: &str| v.replace('\\', "\\\\").replace('"', "\\\"");
        for (i, d) in s.declassifies.iter().enumerate() {
            let flows: Vec<String> = d.flows.iter().map(|f| format!("\"{}\"", esc(f))).collect();
            println!(
                "    {{\"file\": \"{}\", \"line\": {}, \"reason\": \"{}\", \"flows\": [{}]}}{}",
                esc(&d.file),
                d.line,
                esc(&d.reason),
                flows.join(", "),
                if i + 1 == s.declassifies.len() {
                    ""
                } else {
                    ","
                }
            );
        }
        println!("  ]");
        println!("}}");
    } else {
        print!("{}", format_human(&all));
        println!(
            "andi-lint taint: {} sensitive type{} ({} member{}), {} bearing type{}, \
             {} fn{} analyzed, {} raw-returning, {} sink site{}",
            s.sensitive_types.len(),
            if s.sensitive_types.len() == 1 {
                ""
            } else {
                "s"
            },
            s.sensitive_members,
            if s.sensitive_members == 1 { "" } else { "s" },
            s.bearing_types.len(),
            if s.bearing_types.len() == 1 { "" } else { "s" },
            s.fns_analyzed,
            if s.fns_analyzed == 1 { "" } else { "s" },
            s.raw_returning_fns,
            s.sink_sites,
            if s.sink_sites == 1 { "" } else { "s" },
        );
        println!(
            "declassify inventory ({} boundar{}):",
            s.declassifies.len(),
            if s.declassifies.len() == 1 {
                "y"
            } else {
                "ies"
            }
        );
        for d in &s.declassifies {
            println!("  {}:{} — {}", d.file, d.line, d.reason);
            for f in &d.flows {
                println!("    {f}");
            }
        }
    }
    if all.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "human".to_string();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut virts: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("{name} needs a value\n{USAGE}");
            }
            v
        };
        match arg.as_str() {
            "--root" => match take("--root") {
                Some(v) => root = PathBuf::from(v),
                None => return ExitCode::from(2),
            },
            "--format" => match take("--format") {
                Some(v) if v == "human" || v == "json" || v == "sarif" => format = v,
                _ => {
                    eprintln!("--format must be human, json, or sarif");
                    return ExitCode::from(2);
                }
            },
            "--file" => match take("--file") {
                Some(v) => files.push(PathBuf::from(v)),
                None => return ExitCode::from(2),
            },
            "--as" => match take("--as") {
                Some(v) => virts.push(v),
                None => return ExitCode::from(2),
            },
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let findings = if files.is_empty() && virts.is_empty() {
        check_tree(&root)
    } else if files.len() == virts.len() {
        let pairs: Vec<(String, PathBuf)> = virts.into_iter().zip(files).collect();
        lint_files(&pairs)
    } else {
        eprintln!("each --file needs a matching --as VIRTUAL to scope the rules\n{USAGE}");
        return ExitCode::from(2);
    };
    let findings = match findings {
        Ok(f) => f,
        Err(e) => {
            eprintln!("andi-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!("{}", format_json(&findings)),
        "sarif" => print!("{}", format_sarif(&findings)),
        _ => print!("{}", format_human(&findings)),
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

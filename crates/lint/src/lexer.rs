//! A comment/string/char-literal-aware Rust token scanner.
//!
//! The build environment is offline, so this crate cannot depend on
//! `syn` or `proc-macro2`; instead it carries a small hand-rolled
//! lexer that understands exactly as much Rust surface syntax as the
//! rule engine needs to avoid false positives:
//!
//! * line comments (`//`) and *nested* block comments (`/* /* */ */`),
//! * cooked strings with escapes, raw strings `r#"…"#` with any
//!   number of hashes, byte strings `b"…"` / `br#"…"#`,
//! * char literals (including escapes) vs. lifetimes (`'a`, `'static`),
//! * identifiers, numbers (including float/exponent forms and the
//!   `0..n` range ambiguity), and single-character punctuation.
//!
//! Comments are not tokens, but suppression pragmas inside them
//! (`// andi::allow(<rule>) — <reason>`) are collected as [`Pragma`]s
//! so the engine can honor them.
//!
//! The scanner never panics on malformed input: an unterminated
//! string or comment simply extends to the end of the file. Token
//! spans are byte offsets into the source and round-trip exactly
//! (`&source[t.start..t.start + t.len] == t.text`), which the
//! property suite pins.

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integers, floats, any suffix).
    Number,
    /// String literal (cooked, raw, or byte; delimiters included).
    Str,
    /// Char or byte-char literal (delimiters included).
    Char,
    /// Lifetime (`'a`), including the leading quote.
    Lifetime,
    /// Any other single character of punctuation.
    Punct,
}

/// One lexed token with its exact source span.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte length of the token.
    pub len: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based *character* column of the first character. Multi-byte
    /// UTF-8 in comments or strings earlier on the line (pragma
    /// reasons with `—`, say) advances this by one per character, not
    /// one per byte; `start`/`len` remain exact byte offsets.
    pub col: u32,
    /// Lexical class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
}

impl Token {
    /// Whether this is an identifier with exactly the given text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A suppression pragma found in a comment:
/// `andi::allow(<rule>) — <reason>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Pragma {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The rule name between the parentheses (untrimmed of interior
    /// whitespace beyond leading/trailing).
    pub rule: String,
    /// The justification text after the closing parenthesis, with
    /// leading separator characters (`—`, `-`, `:`) stripped.
    pub reason: String,
}

/// A *contract* pragma found in a comment: `andi::assume(…)` or
/// `andi::prove_no_overflow`. Contracts feed the interval prover
/// ([`crate::contracts`]), not the suppression machinery, so they are
/// collected separately from [`Pragma`]s and never count against the
/// suppression ceiling.
#[derive(Clone, Debug, PartialEq)]
pub struct ContractComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The comment body with the `//`/`/*` markers stripped, raw;
    /// [`crate::contracts::parse`] gives it structure.
    pub body: String,
}

/// An `andi::sensitive` source annotation: marks the type, field, or
/// accessor on the next (or same) line as carrying data that must not
/// reach a disclosure sink. Feeds the taint layer ([`crate::taint`]),
/// not the suppression machinery.
#[derive(Clone, Debug, PartialEq)]
pub struct SensitiveMark {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Optional note after the bare marker (separator-stripped);
    /// purely documentary.
    pub note: String,
}

/// An `andi::declassify(<reason>)` pragma: sanctions a disclosure
/// boundary the taint layer would otherwise flag. The reason lives
/// *inside* the parentheses (unlike `andi::allow`, whose reason
/// follows them) because a declassification is meaningless without
/// one — an empty reason is malformed by construction.
#[derive(Clone, Debug, PartialEq)]
pub struct Declassify {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The audit justification between the parentheses; empty means
    /// the pragma was malformed and must be flagged.
    pub reason: String,
}

/// Result of scanning one source file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Scan {
    /// All tokens, in source order.
    pub tokens: Vec<Token>,
    /// All suppression pragmas, in source order.
    pub pragmas: Vec<Pragma>,
    /// All contract pragmas, in source order.
    pub contracts: Vec<ContractComment>,
    /// All `andi::sensitive` source annotations, in source order.
    pub sensitives: Vec<SensitiveMark>,
    /// All `andi::declassify(…)` boundary pragmas, in source order.
    pub declassifies: Vec<Declassify>,
}

/// Scans `source` into tokens and pragmas. Infallible: malformed
/// constructs degrade to over-long tokens, never panics.
pub fn scan(source: &str) -> Scan {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Scan,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        let mut out = Scan::default();
        // Rust source runs ~6 bytes/token; one up-front reservation
        // avoids re-copying the token vec through its growth doublings.
        out.tokens.reserve(src.len() / 6);
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
            out,
        }
    }

    fn peek(&self) -> Option<char> {
        // ASCII fast path: the scanner peeks several times per byte,
        // and a full UTF-8 decode on each peek dominates scan time.
        let b = *self.src.as_bytes().get(self.pos)?;
        if b < 0x80 {
            Some(b as char)
        } else {
            self.src[self.pos..].chars().next()
        }
    }

    fn peek_at(&self, byte_ahead: usize) -> Option<char> {
        let b = *self.src.as_bytes().get(self.pos + byte_ahead)?;
        if b < 0x80 {
            Some(b as char)
        } else {
            self.src.get(self.pos + byte_ahead..)?.chars().next()
        }
    }

    /// Consumes one char, maintaining line/col accounting.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            // One column per *character*: a `—` in a comment must not
            // shift the columns of everything after it by three.
            self.col += 1;
        }
        Some(c)
    }

    fn emit(&mut self, start: usize, line: u32, col: u32, kind: TokenKind) {
        self.out.tokens.push(Token {
            start,
            len: self.pos - start,
            line,
            col,
            kind,
            text: self.src[start..self.pos].to_string(),
        });
    }

    fn run(mut self) -> Scan {
        while let Some(c) = self.peek() {
            let (start, line, col) = (self.pos, self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    // Batch the run on bytes; non-ASCII whitespace
                    // falls back to the char path.
                    loop {
                        match self.src.as_bytes().get(self.pos) {
                            Some(b'\n') => {
                                self.pos += 1;
                                self.line += 1;
                                self.col = 1;
                            }
                            Some(&b) if b < 0x80 && (b as char).is_whitespace() => {
                                self.pos += 1;
                                self.col += 1;
                            }
                            Some(&b)
                                if b >= 0x80 && self.peek().is_some_and(char::is_whitespace) =>
                            {
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                }
                '/' if self.peek_at(1) == Some('/') => self.line_comment(line),
                '/' if self.peek_at(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.cooked_string();
                    self.emit(start, line, col, TokenKind::Str);
                }
                '\'' => self.char_or_lifetime(start, line, col),
                c if c.is_ascii_digit() => {
                    self.number();
                    self.emit(start, line, col, TokenKind::Number);
                }
                c if is_ident_start(c) => {
                    self.ident();
                    let text = &self.src[start..self.pos];
                    // Raw/byte string prefixes: r"..", r#".."#, b"..",
                    // br#".."#, and the byte char b'x'.
                    match (text, self.peek()) {
                        ("r" | "b" | "br" | "rb", Some('"')) | ("r" | "br" | "rb", Some('#')) => {
                            if self.raw_or_cooked_suffix(text) {
                                self.emit(start, line, col, TokenKind::Str);
                            } else {
                                self.emit(start, line, col, TokenKind::Ident);
                            }
                        }
                        ("b", Some('\'')) => {
                            self.bump(); // the quote
                            self.char_literal_body();
                            self.emit(start, line, col, TokenKind::Char);
                        }
                        _ => self.emit(start, line, col, TokenKind::Ident),
                    }
                }
                _ => {
                    self.bump();
                    self.emit(start, line, col, TokenKind::Punct);
                }
            }
        }
        self.out
    }

    /// After an `r`/`b`/`br` identifier, consumes the string body if
    /// one actually follows. Returns false when the `#`s are not
    /// followed by a quote (then the prefix stays an identifier and
    /// the `#`s will lex as punctuation).
    fn raw_or_cooked_suffix(&mut self, prefix: &str) -> bool {
        let raw = prefix.contains('r');
        if raw {
            let mut hashes = 0usize;
            while self.peek_at(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek_at(hashes) != Some('"') {
                return false;
            }
            for _ in 0..=hashes {
                self.bump(); // hashes plus the opening quote
            }
            self.raw_string_body(hashes);
        } else {
            self.bump(); // the opening quote
            self.cooked_string_body();
        }
        true
    }

    /// Consumes a cooked string starting at the opening quote.
    fn cooked_string(&mut self) {
        self.bump();
        self.cooked_string_body();
    }

    /// Consumes a cooked string body up to and including the closing
    /// quote (or end of file).
    fn cooked_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw string body terminated by `"` plus `hashes`
    /// hash characters.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek() == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
        }
    }

    /// Distinguishes `'a'` (char) from `'a` (lifetime) and consumes
    /// whichever it is.
    fn char_or_lifetime(&mut self, start: usize, line: u32, col: u32) {
        self.bump(); // the quote
        let first = self.peek();
        let second = self.peek_at(first.map_or(0, |c| c.len_utf8()));
        let is_lifetime = first.is_some_and(is_ident_start) && second != Some('\'');
        if is_lifetime {
            self.ident();
            self.emit(start, line, col, TokenKind::Lifetime);
        } else {
            self.char_literal_body();
            self.emit(start, line, col, TokenKind::Char);
        }
    }

    /// Consumes a char-literal body up to and including the closing
    /// quote, bounded so an unterminated quote cannot swallow the
    /// file.
    fn char_literal_body(&mut self) {
        // Longest legal form is '\u{10FFFF}': 10 interior chars.
        for _ in 0..12 {
            match self.bump() {
                None | Some('\'') | Some('\n') => return,
                Some('\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    fn ident(&mut self) {
        // Byte loop for the ASCII run; a non-ASCII byte falls back to
        // the char path (idents can continue with unicode).
        loop {
            match self.src.as_bytes().get(self.pos) {
                Some(&b) if b == b'_' || b.is_ascii_alphanumeric() => {
                    self.pos += 1;
                    self.col += 1;
                }
                Some(&b) if b >= 0x80 && self.peek().is_some_and(is_ident_continue) => {
                    self.bump();
                }
                _ => break,
            }
        }
    }

    fn number(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
                // Exponent sign: 1e-3, 2.5E+7.
                if matches!(c, 'e' | 'E') && matches!(self.peek(), Some('+') | Some('-')) {
                    self.bump();
                }
            } else if c == '.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `0..n` does not.
                self.bump();
            } else {
                break;
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        // Runs to end of line, so per-char column accounting is
        // unneeded: the next char is the newline (or EOF), and the
        // newline's bump resets the column anyway.
        let src = self.src;
        let start = self.pos;
        self.pos = src[start..].find('\n').map_or(src.len(), |i| start + i);
        self.collect_pragma(&src[start..self.pos], line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump(); // the `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                None => break,
                Some('/') if self.peek_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek_at(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        let src = self.src;
        self.collect_pragma(&src[start..self.pos], line);
    }

    /// Extracts an `andi::allow(rule) — reason` pragma from comment
    /// text, if present. The pragma must be the first thing in the
    /// comment (after the `//`/`/*` markers and optional doc `!`/`*`)
    /// — prose that merely *mentions* the grammar is not a pragma.
    fn collect_pragma(&mut self, comment: &str, line: u32) {
        let body = comment
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim_start();
        if body.starts_with("andi::assume") || body.starts_with("andi::prove_no_overflow") {
            self.out.contracts.push(ContractComment {
                line,
                body: body.trim_end_matches("*/").trim_end().to_string(),
            });
            return;
        }
        if let Some(after) = body.strip_prefix("andi::sensitive") {
            let note = after
                .trim_start()
                .trim_start_matches(['—', '-', ':', '*'])
                .trim()
                .trim_end_matches("*/")
                .trim()
                .to_string();
            self.out.sensitives.push(SensitiveMark { line, note });
            return;
        }
        if let Some(after) = body.strip_prefix("andi::declassify") {
            let rest = after.trim_start();
            // The reason sits between the parens; inner parens are
            // allowed, so match the *last* close. Anything malformed
            // degrades to an empty reason for the hygiene pass.
            let reason = rest
                .strip_prefix('(')
                .and_then(|r| r.rfind(')').map(|close| r[..close].trim().to_string()))
                .unwrap_or_default();
            self.out.declassifies.push(Declassify { line, reason });
            return;
        }
        if !body.starts_with("andi::allow") {
            return;
        }
        let Some(rest) = body.strip_prefix("andi::allow(") else {
            // `andi::allow` without `(…)`: record as malformed so the
            // engine flags it rather than silently ignoring it.
            self.out.pragmas.push(Pragma {
                line,
                rule: String::new(),
                reason: String::new(),
            });
            return;
        };
        let Some(close) = rest.find(')') else {
            // Malformed pragma: record it with an empty rule so the
            // engine can flag it rather than silently ignore it.
            self.out.pragmas.push(Pragma {
                line,
                rule: String::new(),
                reason: String::new(),
            });
            return;
        };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['—', '-', ':', '*'])
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        self.out.pragmas.push(Pragma { line, rule, reason });
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        scan(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_their_contents() {
        let src = "let a = 1; // HashMap unwrap()\n/* Instant /* nested SystemTime */ */ let b;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let src =
            r##"let s = "unwrap() HashMap"; let r = r#"Instant "quoted" body"# ; let done = 1;"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "HashMap" || i == "Instant"));
        assert!(ids.iter().any(|i| i == "done"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let x = b\"unwrap\"; let c = b'x'; let y = br#\"HashMap\"#;";
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "HashMap"));
        let kinds: Vec<TokenKind> = scan(src).tokens.iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TokenKind::Char));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'static str { 'x'; x }";
        let toks = scan(src);
        let lifetimes: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert!(toks
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'x'"));
    }

    #[test]
    fn escaped_char_literals() {
        for src in ["'\\''", "'\\n'", "'\\u{10FFFF}'", "'\\\\'"] {
            let toks = scan(&format!("let c = {src};"));
            assert!(
                toks.tokens
                    .iter()
                    .any(|t| t.kind == TokenKind::Char && t.text == src),
                "{src}"
            );
        }
    }

    #[test]
    fn range_vs_float() {
        let toks = scan("for i in 0..n { let f = 1.5e-3; }");
        let nums: Vec<&str> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "1.5e-3"]);
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"never closed", "/* never closed", "r#\"open", "'", "b'"] {
            let toks = scan(src);
            for t in toks.tokens {
                assert_eq!(&src[t.start..t.start + t.len], t.text);
            }
        }
    }

    #[test]
    fn pragmas_are_collected() {
        let src = "// andi::allow(lib-unwrap) — join only fails on panic\nlet x = a.unwrap();";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].rule, "lib-unwrap");
        assert_eq!(s.pragmas[0].reason, "join only fails on panic");
        assert_eq!(s.pragmas[0].line, 1);
    }

    #[test]
    fn pragma_reason_separators() {
        for sep in ["—", "-", ":", ""] {
            let src = format!("// andi::allow(r) {sep} why\nx();");
            let s = scan(&src);
            assert_eq!(s.pragmas[0].reason, "why", "separator {sep:?}");
        }
    }

    #[test]
    fn malformed_pragma_is_recorded_empty() {
        let s = scan("// andi::allow(lib-unwrap with no close\nx();");
        assert_eq!(s.pragmas.len(), 1);
        assert!(s.pragmas[0].rule.is_empty());
    }

    #[test]
    fn contract_comments_are_collected_separately() {
        let src = "// andi::assume(n in [1, 22]) — dispatch guard\n\
                   // andi::prove_no_overflow\n\
                   // andi::allow(lib-unwrap) — justified\n\
                   let x = 1;";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 1, "allow stays a suppression pragma");
        assert_eq!(s.contracts.len(), 2);
        assert_eq!(s.contracts[0].line, 1);
        assert_eq!(
            s.contracts[0].body,
            "andi::assume(n in [1, 22]) — dispatch guard"
        );
        assert_eq!(s.contracts[1].body, "andi::prove_no_overflow");
    }

    #[test]
    fn sensitive_marks_are_collected() {
        let src = "// andi::sensitive — raw item contents\nitems: Box<[ItemId]>,\n\
                   // andi::sensitive\npub struct T;";
        let s = scan(src);
        assert_eq!(s.sensitives.len(), 2);
        assert_eq!(s.sensitives[0].line, 1);
        assert_eq!(s.sensitives[0].note, "raw item contents");
        assert_eq!(s.sensitives[1].line, 3);
        assert!(s.sensitives[1].note.is_empty());
        assert!(s.pragmas.is_empty(), "sensitive is not a suppression");
    }

    #[test]
    fn declassify_reason_lives_inside_the_parens() {
        let src = "// andi::declassify(FIMI export (audited): whole-row output)\nw.write_all(b);";
        let s = scan(src);
        assert_eq!(s.declassifies.len(), 1);
        assert_eq!(s.declassifies[0].line, 1);
        assert_eq!(
            s.declassifies[0].reason,
            "FIMI export (audited): whole-row output"
        );
    }

    #[test]
    fn malformed_declassify_records_empty_reason() {
        for src in [
            "// andi::declassify\nx();",
            "// andi::declassify(never closed\nx();",
            "// andi::declassify()\nx();",
        ] {
            let s = scan(src);
            assert_eq!(s.declassifies.len(), 1, "{src}");
            assert!(s.declassifies[0].reason.is_empty(), "{src}");
        }
    }

    #[test]
    fn multibyte_comment_does_not_shift_columns() {
        // The `—` is 3 bytes but one character: the token after the
        // block comment must sit at the *character* column, while its
        // byte span stays exact.
        let src = "/* — dash */ let x = 1;";
        let s = scan(src);
        let let_tok = s.tokens.iter().find(|t| t.is_ident("let")).unwrap();
        assert_eq!(let_tok.col, 14, "character column, not byte column");
        assert_eq!(&src[let_tok.start..let_tok.start + let_tok.len], "let");
    }

    #[test]
    fn spans_round_trip() {
        let src = "fn main() { let v: Vec<u8> = b\"ok\".to_vec(); /* c */ }";
        let s = scan(src);
        let mut prev_end = 0usize;
        for t in &s.tokens {
            assert!(t.start >= prev_end, "overlap at {}", t.start);
            assert_eq!(&src[t.start..t.start + t.len], t.text);
            prev_end = t.start + t.len;
        }
    }
}

//! Property tests of the `DeltaBatch` algebra behind the incremental
//! risk engine:
//!
//! * `apply(a)` then `apply(b)` reaches the same state — fingerprint
//!   and assessment bits — as `apply(a ⧺ b)`;
//! * the empty batch is the identity;
//! * inserting a transaction and then deleting it restores the
//!   database fingerprint exactly.
//!
//! Assessments are compared at thread counts 1 and 4; equality is
//! always `to_bits`, never an epsilon.

use andi_core::parallel::Budget;
use andi_core::{summary_fingerprint, DeltaBatch, Edit, IncrementalEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: [usize; 2] = [1, 4];

/// Strategy: a small summary (supports over m) plus seeded intervals.
fn summary() -> impl Strategy<Value = (Vec<u64>, u64, u64)> {
    (4u64..40, 1u64..u64::MAX)
        .prop_flat_map(|(m, seed)| (prop::collection::vec(0..=m, 2..10), Just(m), Just(seed)))
}

/// Seeded random belief intervals: a mix of full ignorance, wide, and
/// point beliefs so both reused and recomputed (and empty-window)
/// groups occur.
fn intervals_for(n: usize, rng: &mut StdRng) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => (0.0, 1.0),
            1 => {
                let a: f64 = rng.gen_range(0.0..1.0);
                let b: f64 = rng.gen_range(0.0..1.0);
                (a.min(b), a.max(b))
            }
            _ => {
                let p: f64 = rng.gen_range(0.0..1.0);
                (p, p)
            }
        })
        .collect()
}

/// A strictly increasing non-empty item subset.
fn random_items(rng: &mut StdRng, n: usize) -> Vec<usize> {
    loop {
        let items: Vec<usize> = (0..n).filter(|_| rng.gen_bool(0.4)).collect();
        if !items.is_empty() {
            return items;
        }
    }
}

/// Generates `k` edits that stay valid against the running summary.
/// Candidates are screened with `apply_edits_to_summary`; inserts are
/// the always-valid fallback.
fn random_batch(rng: &mut StdRng, supports: &mut Vec<u64>, m: &mut u64, k: usize) -> DeltaBatch {
    let n = supports.len();
    let mut edits = Vec::with_capacity(k);
    for _ in 0..k {
        let candidate = match rng.gen_range(0..3u32) {
            0 => Edit::Insert {
                items: random_items(rng, n),
            },
            1 => Edit::Delete {
                items: random_items(rng, n),
            },
            _ => Edit::Replace {
                old: random_items(rng, n),
                new: random_items(rng, n),
            },
        };
        let single = DeltaBatch::new(vec![candidate.clone()]);
        let chosen = match andi_core::apply_edits_to_summary(supports, *m, &single) {
            Ok((s, new_m)) => {
                *supports = s;
                *m = new_m;
                candidate
            }
            Err(_) => {
                let items = random_items(rng, n);
                for &i in &items {
                    supports[i] += 1;
                }
                *m += 1;
                Edit::Insert { items }
            }
        };
        edits.push(chosen);
    }
    DeltaBatch::new(edits)
}

/// Asserts two engines agree bit-for-bit: fingerprint, O-estimate,
/// and every per-item probability, at both thread counts.
fn assert_engines_identical(a: &mut IncrementalEngine, b: &mut IncrementalEngine, what: &str) {
    assert_eq!(
        a.summary_fingerprint(),
        b.summary_fingerprint(),
        "{what}: fingerprint"
    );
    let budget = Budget::unlimited();
    for t in THREADS {
        let x = a.assess_risk_delta(t, &budget).unwrap();
        let y = b.assess_risk_delta(t, &budget).unwrap();
        assert_eq!(
            x.expected_cracks.to_bits(),
            y.expected_cracks.to_bits(),
            "{what}: O-estimate at threads {t}"
        );
        assert_eq!(x.probabilities.len(), y.probabilities.len());
        for (i, (p, q)) in x.probabilities.iter().zip(&y.probabilities).enumerate() {
            assert_eq!(p.to_bits(), q.to_bits(), "{what}: item {i} at threads {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `apply(a) ∘ apply(b)` ≡ `apply(a ⧺ b)`, in state and in bits.
    #[test]
    fn sequential_application_equals_concatenation(
        (supports, m, seed) in summary(),
        ka in 1usize..5,
        kb in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let intervals = intervals_for(supports.len(), &mut rng);
        let (mut s, mut cur_m) = (supports.clone(), m);
        let a = random_batch(&mut rng, &mut s, &mut cur_m, ka);
        let b = random_batch(&mut rng, &mut s, &mut cur_m, kb);

        let mut seq = IncrementalEngine::new(&supports, m, &intervals).unwrap();
        seq.apply(&a).unwrap();
        // Interleave an assessment so the second batch lands on a
        // warm (partially reused) engine, not a fresh one.
        seq.assess_risk_delta(1, &Budget::unlimited()).unwrap();
        seq.apply(&b).unwrap();

        let mut whole = IncrementalEngine::new(&supports, m, &intervals).unwrap();
        whole.apply(&a.clone().concat(b)).unwrap();

        assert_engines_identical(&mut seq, &mut whole, "a;b vs a++b");
        prop_assert_eq!(seq.summary_fingerprint(), summary_fingerprint(&s, cur_m));
    }

    /// The empty batch changes nothing — not the fingerprint, not a
    /// single probability bit.
    #[test]
    fn empty_batch_is_the_identity((supports, m, seed) in summary()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let intervals = intervals_for(supports.len(), &mut rng);
        let mut touched = IncrementalEngine::new(&supports, m, &intervals).unwrap();
        let mut pristine = IncrementalEngine::new(&supports, m, &intervals).unwrap();
        touched.apply(&DeltaBatch::empty()).unwrap();
        assert_engines_identical(&mut touched, &mut pristine, "empty batch");
    }

    /// Insert a transaction, delete the same transaction: the summary
    /// fingerprint round-trips, and the assessment agrees with an
    /// engine that never moved.
    #[test]
    fn insert_then_delete_round_trips(
        (supports, m, seed) in summary(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let intervals = intervals_for(supports.len(), &mut rng);
        let items = random_items(&mut rng, supports.len());
        let before = summary_fingerprint(&supports, m);

        let mut engine = IncrementalEngine::new(&supports, m, &intervals).unwrap();
        engine.apply(&DeltaBatch::new(vec![Edit::Insert { items: items.clone() }])).unwrap();
        prop_assert!(engine.summary_fingerprint() != before, "insert must move the summary");
        engine.apply(&DeltaBatch::new(vec![Edit::Delete { items }])).unwrap();
        prop_assert_eq!(engine.summary_fingerprint(), before);

        let mut pristine = IncrementalEngine::new(&supports, m, &intervals).unwrap();
        assert_engines_identical(&mut engine, &mut pristine, "insert/delete round trip");
    }
}

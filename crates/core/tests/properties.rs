//! Property tests of the core analysis layer.

use andi_core::{
    assess_risk, round_supports, suppression_plan, BeliefFunction, ChainSpec, OutdegreeProfile,
    RecipeConfig,
};
use andi_data::{DatabaseBuilder, FrequencyGroups};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a support profile over m = 200.
fn profile() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..200, 3..25)
}

/// Strategy: a small database (as transaction sets).
fn small_db() -> impl Strategy<Value = Vec<std::collections::BTreeSet<u32>>> {
    prop::collection::vec(prop::collection::btree_set(0u32..10, 1..6), 3..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With the linear masked-OE curve, `α_max ≈ min(1, τ·n / OE)`.
    /// The mask averaging introduces only small deviations.
    #[test]
    fn alpha_max_tracks_the_linear_formula(
        supports in profile(),
        tau_pct in 2u32..40,
    ) {
        let tau = tau_pct as f64 / 100.0;
        let config = RecipeConfig {
            tolerance: tau,
            use_propagation: false,
            n_mask_runs: 8,
            ..RecipeConfig::default()
        };
        let n = supports.len() as f64;
        let verdict = assess_risk(&supports, 200, &config).unwrap();
        if let Some(alpha) = verdict.alpha_max() {
            let predicted = (tau * n / verdict.full_compliance_oe).min(1.0);
            // The search runs on integer item counts, so quantization
            // contributes up to ~1/n on top of mask-average noise.
            let tolerance = 0.2 + 1.5 / n;
            prop_assert!(
                (alpha - predicted).abs() < tolerance,
                "alpha_max {alpha} vs linear prediction {predicted} (n = {n})"
            );
        } else {
            // Disclosure: one of the two early exits fired.
            let g = FrequencyGroups::from_supports(&supports, 200).n_groups() as f64;
            prop_assert!(
                g <= tau * n + 1e-9 || verdict.full_compliance_oe <= tau * n + 1e-9
            );
        }
    }

    /// The chain O-estimate never exceeds the exact Lemma 6 value
    /// (the Δ table's positivity), across random valid chains.
    #[test]
    fn chain_oe_is_a_lower_bound(
        n1 in 2usize..20, n2 in 2usize..20,
        e1_frac in 0.0f64..1.0, v1_frac in 0.0f64..1.0,
    ) {
        let e1 = ((e1_frac * n1 as f64) as usize).min(n1);
        let u1 = n1 - e1;
        let v1 = ((v1_frac * n2 as f64) as usize).min(n2);
        let s1 = u1 + v1;
        let e2 = n2 - v1;
        let chain = ChainSpec::new(vec![n1, n2], vec![e1, e2], vec![s1]);
        prop_assume!(chain.is_ok());
        let chain = chain.unwrap();
        prop_assert!(
            chain.oestimate() <= chain.expected_cracks() + 1e-9,
            "OE {} > exact {}",
            chain.oestimate(),
            chain.expected_cracks()
        );
    }

    /// Support rounding always produces bucket-aligned (or clamped)
    /// supports and keeps every transaction non-empty.
    #[test]
    fn sanitizer_respects_its_contract(
        txs in small_db(),
        bucket in 1u64..10,
        seed in 0u64..500,
    ) {
        let mut builder = DatabaseBuilder::new(10);
        for t in &txs {
            builder.add(t.iter().copied()).unwrap();
        }
        let db = builder.build().unwrap();
        let m = db.n_transactions() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let sanitized = round_supports(&db, bucket, &mut rng).unwrap();
        prop_assert_eq!(sanitized.database.n_transactions(), db.n_transactions());
        for t in sanitized.database.transactions() {
            prop_assert!(!t.is_empty());
        }
        // Supports either hit a bucket boundary, the clamp at m, or
        // were blocked by the no-empty-transaction rule (deletions
        // can stall); in the last case the support moved toward the
        // target.
        let orig = db.supports();
        for (x, &s) in sanitized.database.supports().iter().enumerate() {
            if orig[x] == 0 {
                prop_assert_eq!(s, 0);
                continue;
            }
            let target = ((orig[x] as f64 / bucket as f64).round() as u64 * bucket)
                .clamp(bucket.min(m), m);
            let aligned = s == target;
            let stalled = target < orig[x] && s >= target && s <= orig[x];
            prop_assert!(
                aligned || stalled,
                "item {x}: support {s}, original {}, target {target}",
                orig[x]
            );
        }
    }

    /// The suppression plan always meets its budget and never
    /// suppresses more than necessary (removing its last item would
    /// breach the budget).
    #[test]
    fn suppression_plan_is_tight(supports in profile(), tau_pct in 2u32..50) {
        let tau = tau_pct as f64 / 100.0;
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 200.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.02).unwrap();
        let graph = belief.build_graph(&supports, 200);
        let profile = OutdegreeProfile::plain(&graph);
        let plan = suppression_plan(&profile, tau).unwrap();
        prop_assert!(plan.within_budget);
        prop_assert!(plan.residual_oestimate <= plan.budget + 1e-9);
        if let Some(&last) = plan.exposure.last() {
            prop_assert!(
                plan.residual_oestimate + last > plan.budget - 1e-9,
                "plan suppressed more than needed"
            );
        }
    }

    /// α-compliant perturbation hits the requested compliance
    /// exactly and leaves untouched items untouched.
    #[test]
    fn noncompliant_rewrite_is_surgical(
        supports in profile(),
        bad_frac in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let n = supports.len();
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 200.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.03).unwrap();
        let n_bad = ((bad_frac * n as f64) as usize).min(n);
        let bad: Vec<usize> = (0..n_bad).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let perturbed = belief.with_noncompliant_items(&freqs, &bad, &mut rng);
        let mask = perturbed.compliance_mask(&freqs);
        for (x, &ok) in mask.iter().enumerate() {
            prop_assert_eq!(ok, x >= n_bad, "item {}", x);
        }
        for x in n_bad..n {
            prop_assert_eq!(perturbed.interval(x), belief.interval(x));
        }
    }
}

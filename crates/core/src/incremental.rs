//! Incremental risk engine: delta updates over the frequency-group
//! pipeline with a metamorphic `incremental ≡ from-scratch`
//! bit-identity guarantee.
//!
//! A production owner's database changes continuously; rebuilding the
//! grouped graph and the Figure 5 O-estimate from scratch on every
//! transaction append costs `O(|D| + n log n)` per edit. The
//! O-estimate, however, is a pure function of the frequency-group
//! partition, so edits that touch few groups should cost
//! proportionally little. [`IncrementalEngine`] realizes that: a
//! [`DeltaBatch`] of transaction inserts/deletes/replaces is applied
//! as support-delta updates to the retained [`FrequencyScaffold`],
//! touched support values are recorded in a dirty set, and
//! [`IncrementalEngine::assess_risk_delta`] recomputes only the
//! groups whose cached probability slices could have changed —
//! reporting reuse counts in [`DeltaProvenance`].
//!
//! # Why bit-identity is the spec
//!
//! The risk figure is the *adversary's* figure (the
//! compatible-probability framing): an approximate fast path would
//! report a risk no attacker computes. The engine therefore promises
//! the incremental result is **bit-identical** to a from-scratch
//! recompute after every batch. The enabling observation is integer
//! support windows: for fixed `m`, `s ↦ s as f64 / m as f64` is
//! monotone (IEEE division is correctly rounded), so the set of
//! supports whose frequency falls in a belief interval `[l, r]` is a
//! contiguous integer range computable by binary search with the
//! *same float comparisons* the grouped-graph completion uses. An
//! item's outdegree is then an exact integer count of supports inside
//! its window (prefix sums), and `1 / outdegree` is the identical
//! `f64` either way. The metamorphic suites in
//! `crates/core/tests/incremental_delta.rs` and
//! `crates/oracle/tests/edit_scripts.rs` pin this after every prefix
//! of seeded edit scripts, at `ANDI_THREADS` 1 and 4, under
//! `ANDI_FAULTS` schedules.

use std::collections::{BTreeMap, BTreeSet};

use andi_graph::faults;
use andi_graph::grouped::{support_window, FrequencyScaffold, GroupedBigraph};
use andi_graph::par::{try_map_indexed, Budget};

use crate::error::{Error, Result};
use crate::oestimate::OutdegreeProfile;

/// One transaction-level edit, expressed against the database
/// *summary* — the support profile plus transaction count that the
/// whole O-estimate pipeline consumes. Each item list names the
/// distinct items of the affected transaction, strictly increasing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Edit {
    /// Append one transaction containing exactly `items`.
    Insert { items: Vec<usize> },
    /// Remove one transaction containing exactly `items`.
    Delete { items: Vec<usize> },
    /// Rewrite one transaction in place: it contained `old`, it now
    /// contains `new`. Leaves the transaction count unchanged.
    Replace { old: Vec<usize>, new: Vec<usize> },
}

/// An ordered batch of [`Edit`]s, applied left to right.
///
/// Batches form a monoid under [`DeltaBatch::concat`]: applying
/// `a.concat(b)` is equivalent to applying `a` then `b`, and the
/// empty batch is the identity — the algebra the property suite
/// checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaBatch {
    /// The edits, in application order.
    pub edits: Vec<Edit>,
}

impl DeltaBatch {
    /// Wraps a list of edits.
    pub fn new(edits: Vec<Edit>) -> Self {
        DeltaBatch { edits }
    }

    /// The identity batch.
    pub fn empty() -> Self {
        DeltaBatch::default()
    }

    /// True when the batch carries no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of edits in the batch.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Concatenation: the batch that applies `self`'s edits, then
    /// `other`'s.
    pub fn concat(mut self, other: DeltaBatch) -> DeltaBatch {
        self.edits.extend(other.edits);
        self
    }
}

fn check_items(n: usize, index: usize, what: &str, items: &[usize]) -> Result<()> {
    if items.is_empty() {
        return Err(Error::InvalidParameter(format!(
            "edit {index}: {what} transaction must name at least one item"
        )));
    }
    let mut prev: Option<usize> = None;
    for &j in items {
        if j >= n {
            return Err(Error::InvalidParameter(format!(
                "edit {index}: {what} transaction names an item outside the domain"
            )));
        }
        if prev.is_some_and(|p| p >= j) {
            return Err(Error::InvalidParameter(format!(
                "edit {index}: {what} transaction items must be strictly increasing"
            )));
        }
        prev = Some(j);
    }
    Ok(())
}

fn apply_one(supports: &mut [u64], m: &mut u64, index: usize, edit: &Edit) -> Result<()> {
    let n = supports.len();
    match edit {
        Edit::Insert { items } => {
            check_items(n, index, "inserted", items)?;
            *m = m.checked_add(1).ok_or_else(|| {
                Error::InvalidParameter(format!("edit {index}: transaction count overflow"))
            })?;
            for &j in items {
                supports[j] += 1;
            }
        }
        Edit::Delete { items } => {
            check_items(n, index, "deleted", items)?;
            if *m < 2 {
                return Err(Error::InvalidParameter(format!(
                    "edit {index}: the last transaction cannot be deleted"
                )));
            }
            for &j in items {
                if supports[j] == 0 {
                    return Err(Error::InvalidParameter(format!(
                        "edit {index}: deleted transaction names an unsupported item"
                    )));
                }
            }
            // A full-support item sits in every transaction, so the
            // deleted one must name it — otherwise the summary would
            // be unrealizable at m - 1.
            for (j, &s) in supports.iter().enumerate() {
                if s == *m && items.binary_search(&j).is_err() {
                    return Err(Error::InvalidParameter(format!(
                        "edit {index}: deletion would leave a support exceeding the \
                         transaction count"
                    )));
                }
            }
            *m -= 1;
            for &j in items {
                supports[j] -= 1;
            }
        }
        Edit::Replace { old, new } => {
            check_items(n, index, "replaced", old)?;
            check_items(n, index, "replacement", new)?;
            for &j in old {
                if supports[j] == 0 {
                    return Err(Error::InvalidParameter(format!(
                        "edit {index}: replaced transaction names an unsupported item"
                    )));
                }
            }
            for &j in new {
                if old.binary_search(&j).is_err() && supports[j] >= *m {
                    return Err(Error::InvalidParameter(format!(
                        "edit {index}: replacement would push a support past the \
                         transaction count"
                    )));
                }
            }
            for &j in old {
                supports[j] -= 1;
            }
            for &j in new {
                supports[j] += 1;
            }
        }
    }
    Ok(())
}

/// Applies a batch to a database summary, validating every edit
/// against the state it actually sees, and returns the edited
/// `(supports, m)`. The input is never mutated; an error reports the
/// first offending edit and leaves nothing half-applied. The
/// `incremental.delta` fault probe fires once per edit, *before* that
/// edit is staged, so an injected fault can never corrupt a summary.
pub fn apply_edits_to_summary(
    supports: &[u64],
    m: u64,
    batch: &DeltaBatch,
) -> Result<(Vec<u64>, u64)> {
    let mut s = supports.to_vec();
    let mut m2 = m;
    for (i, edit) in batch.edits.iter().enumerate() {
        faults::probe("incremental.delta", i);
        apply_one(&mut s, &mut m2, i, edit)?;
    }
    Ok((s, m2))
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a fingerprint of a database summary `(supports, m)` — the
/// round-trip witness of the delta property suite and the engine's
/// cheap identity for "same database". Matches two summaries iff
/// they are equal, modulo hash collisions.
pub fn summary_fingerprint(supports: &[u64], m: u64) -> u64 {
    let mut h = fnv_u64(FNV_OFFSET, m);
    h = fnv_u64(h, supports.len() as u64);
    for &s in supports {
        h = fnv_u64(h, s);
    }
    h
}

/// A cached per-group probability slice: the crack probabilities of
/// one frequency group's members, plus everything needed to decide
/// whether the cache is still valid.
#[derive(Clone, Debug)]
struct GroupSlice {
    /// Crack probabilities aligned with the group's member list *at
    /// computation time*. The member indices themselves are not
    /// stored: `input_fp` hashes them, so a fingerprint match proves
    /// the scaffold's current member list is the one these
    /// probabilities were computed for — keeping the slice to a
    /// single allocation makes engine clones and recomputes cheap.
    probs: Vec<f64>,
    /// FNV over (support value, members, member windows): the
    /// group-level fingerprint of every input the probabilities
    /// depend on *except* the support counts inside the member
    /// windows — the dirty set covers those. The reuse check pairs
    /// this with the freshly computed window envelope; fingerprint
    /// equality guarantees the fresh envelope equals the one the
    /// slice was computed under.
    input_fp: u64,
}

/// One splitmix-style mixing round. Group fingerprints are internal
/// — only ever compared with other group fingerprints — so a
/// single-multiply mix per word beats byte-wise FNV in the hot plan
/// loop without changing any observable behavior.
#[inline]
fn mix_u64(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn group_signature(
    support: u64,
    members: &[usize],
    windows: &[Option<(u64, u64)>],
) -> (u64, Option<(u64, u64)>) {
    let mut h = mix_u64(FNV_OFFSET, support);
    let mut envelope: Option<(u64, u64)> = None;
    for &y in members {
        h = mix_u64(h, (y as u64).wrapping_add(1));
        match windows[y] {
            None => h = mix_u64(h, 0),
            Some((lo, hi)) => {
                h = mix_u64(h, lo.wrapping_add(1));
                h = mix_u64(h, hi.wrapping_add(1));
                envelope = Some(match envelope {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
    }
    (h, envelope)
}

fn envelope_touches(envelope: Option<(u64, u64)>, dirty: &BTreeSet<u64>) -> bool {
    match envelope {
        None => false,
        Some((lo, hi)) => dirty.range(lo..=hi).next().is_some(),
    }
}

/// How an [`IncrementalEngine::assess_risk_delta`] call got its
/// answer: the incremental analogue of the ladder's `Provenance`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaProvenance {
    /// Frequency groups in the current partition.
    pub groups_total: usize,
    /// Groups whose cached probability slice was reused verbatim.
    pub groups_reused: usize,
    /// Groups recomputed this call (`groups_total = groups_reused +
    /// groups_recomputed`).
    pub groups_recomputed: usize,
    /// True when the per-item integer support windows were rebuilt
    /// (the transaction count changed since the last assessment).
    pub windows_rebuilt: bool,
    /// Edits applied since the previous successful assessment.
    pub edits_applied: u64,
}

/// The result of an incremental assessment: the Figure 5 O-estimate
/// (`expected_cracks = Σ 1/O_y`), the per-item crack probabilities in
/// item order, and the reuse provenance.
#[derive(Clone, Debug)]
pub struct DeltaAssessment {
    /// Expected cracks — bit-identical to
    /// `OutdegreeProfile::plain(..).oestimate()` from scratch.
    pub expected_cracks: f64,
    /// Per-item crack probabilities, item order — bit-identical to
    /// the from-scratch profile's.
    pub probabilities: Vec<f64>,
    /// Reuse accounting for this call.
    pub provenance: DeltaProvenance,
}

/// The incremental risk engine: a database summary, the retained
/// frequency scaffold, per-item integer support windows, and a cache
/// of per-group probability slices with dirty-value tracking.
///
/// # Examples
///
/// ```
/// use andi_core::incremental::{DeltaBatch, Edit, IncrementalEngine};
/// use andi_core::parallel::Budget;
///
/// let supports = [5u64, 4, 5, 5, 3, 5];
/// let intervals = vec![
///     (0.0, 1.0), (0.4, 0.5), (0.5, 0.5),
///     (0.4, 0.6), (0.1, 0.4), (0.5, 0.5),
/// ];
/// let mut engine = IncrementalEngine::new(&supports, 10, &intervals).unwrap();
/// let batch = DeltaBatch::new(vec![Edit::Insert { items: vec![1, 4] }]);
/// engine.apply(&batch).unwrap();
/// let out = engine.assess_risk_delta(1, &Budget::unlimited()).unwrap();
/// let (reference, probs) = engine.assess_from_scratch();
/// assert_eq!(out.expected_cracks.to_bits(), reference.to_bits());
/// assert_eq!(out.probabilities.len(), probs.len());
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalEngine {
    intervals: Vec<(f64, f64)>,
    supports: Vec<u64>,
    m: u64,
    scaffold: FrequencyScaffold,
    /// Per-item integer support windows under the current `m`.
    windows: Vec<Option<(u64, u64)>>,
    /// Cached probability slices, keyed by group support value.
    slices: BTreeMap<u64, GroupSlice>,
    /// Support values whose item counts changed since the last
    /// successful assessment (old and new value of every moved item).
    dirty: BTreeSet<u64>,
    /// True when `m` changed since the windows were computed.
    windows_stale: bool,
    edits_since_assess: u64,
}

impl IncrementalEngine {
    /// Builds an engine over a database summary and a fixed interval
    /// belief function (one `[l, r]` frequency interval per item).
    pub fn new(supports: &[u64], m: u64, intervals: &[(f64, f64)]) -> Result<Self> {
        if intervals.len() != supports.len() {
            return Err(Error::DomainMismatch {
                expected: supports.len(),
                got: intervals.len(),
            });
        }
        if supports.is_empty() {
            return Err(Error::InvalidParameter(
                "the domain must contain at least one item".into(),
            ));
        }
        if m == 0 {
            return Err(Error::InvalidParameter(
                "need at least one transaction".into(),
            ));
        }
        if supports.iter().any(|&s| s > m) {
            return Err(Error::InvalidParameter(
                "a support exceeds the transaction count".into(),
            ));
        }
        for (y, &(l, r)) in intervals.iter().enumerate() {
            if !(l.is_finite() && r.is_finite() && 0.0 <= l && l <= r && r <= 1.0) {
                return Err(Error::InvalidInterval {
                    item: y,
                    low: l,
                    high: r,
                });
            }
        }
        let scaffold = FrequencyScaffold::new(supports, m);
        let windows = intervals
            .iter()
            .map(|&(l, r)| support_window(m, l, r))
            .collect();
        Ok(IncrementalEngine {
            intervals: intervals.to_vec(),
            supports: supports.to_vec(),
            m,
            scaffold,
            windows,
            slices: BTreeMap::new(),
            dirty: BTreeSet::new(),
            windows_stale: false,
            edits_since_assess: 0,
        })
    }

    /// Current support profile.
    pub fn supports(&self) -> &[u64] {
        &self.supports
    }

    /// Current transaction count.
    pub fn n_transactions(&self) -> u64 {
        self.m
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.supports.len()
    }

    /// The belief intervals the engine was built over.
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// Fingerprint of the current database summary.
    pub fn summary_fingerprint(&self) -> u64 {
        summary_fingerprint(&self.supports, self.m)
    }

    /// The retained frequency scaffold (always consistent with
    /// [`IncrementalEngine::supports`]).
    pub fn scaffold(&self) -> &FrequencyScaffold {
        &self.scaffold
    }

    /// Applies a batch of edits transactionally. All validation — and
    /// the `incremental.delta` fault probe — runs against scratch
    /// copies before any engine state is touched, so an error or an
    /// injected panic leaves the engine exactly as it was.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<()> {
        // Stage: everything fallible happens here.
        let (new_supports, new_m) = apply_edits_to_summary(&self.supports, self.m, batch)?;
        // Commit: infallible updates only.
        let mut changes: Vec<(usize, u64)> = Vec::new();
        for (j, (&old_s, &new_s)) in self.supports.iter().zip(&new_supports).enumerate() {
            if old_s != new_s {
                self.dirty.insert(old_s);
                self.dirty.insert(new_s);
                changes.push((j, new_s));
            }
        }
        if new_m != self.m {
            self.windows_stale = true;
        }
        self.scaffold.apply_support_changes(&changes, new_m);
        self.supports = new_supports;
        self.m = new_m;
        self.edits_since_assess = self
            .edits_since_assess
            .saturating_add(batch.edits.len() as u64);
        Ok(())
    }

    /// Incrementally assesses the current summary: rebuilds support
    /// windows only if `m` changed, recomputes only the groups whose
    /// cached slice could be stale (group fingerprint mismatch or a
    /// dirty support value inside the slice's window envelope), and
    /// assembles probabilities in item order so the serial sum is the
    /// exact from-scratch sum.
    ///
    /// On error (budget, cancellation, an injected worker panic) the
    /// engine stays consistent: cached slices are only ever replaced
    /// by values computed from the *current* committed summary, and
    /// the dirty set is cleared only on success — the next call, or a
    /// from-scratch recompute, still agrees.
    pub fn assess_risk_delta(
        &mut self,
        threads: usize,
        budget: &Budget,
    ) -> Result<DeltaAssessment> {
        budget.check()?;
        let n = self.supports.len();
        let windows_rebuilt = self.windows_stale;
        if self.windows_stale {
            let m = self.m;
            let intervals = &self.intervals;
            self.windows = try_map_indexed(threads, n, budget, |y| {
                let (l, r) = intervals[y];
                support_window(m, l, r)
            })?;
            self.windows_stale = false;
        }
        // Plan which groups can reuse their cached slice; the fresh
        // fingerprint rides along so the recompute tasks don't hash
        // the same inputs a second time.
        let k = self.scaffold.n_groups();
        let mut plan: Vec<(usize, u64)> = Vec::new();
        let mut reused = 0usize;
        for g in 0..k {
            budget.check()?;
            let v = self.scaffold.group_supports()[g];
            let (fp, envelope) = group_signature(v, self.scaffold.group_members(g), &self.windows);
            let fresh = self
                .slices
                .get(&v)
                .is_some_and(|s| s.input_fp == fp && !envelope_touches(envelope, &self.dirty));
            if fresh {
                reused += 1;
            } else {
                plan.push((g, fp));
            }
        }
        // Recompute stale groups in parallel. `try_map_indexed`
        // returns results in task order regardless of thread count,
        // and the `incremental.group` probe turns injected faults
        // into structured WorkerPanic errors.
        let scaffold = &self.scaffold;
        let windows = &self.windows;
        let plan_ref = &plan;
        let computed: Vec<(u64, GroupSlice)> =
            try_map_indexed(threads, plan.len(), budget, |ix| {
                let (g, input_fp) = plan_ref[ix];
                faults::probe("incremental.group", g);
                let v = scaffold.group_supports()[g];
                let probs: Vec<f64> = scaffold
                    .group_members(g)
                    .iter()
                    .map(|&y| match windows[y] {
                        None => 0.0,
                        Some((lo, hi)) => {
                            let d = scaffold.count_supports_in(lo, hi);
                            if d == 0 {
                                0.0
                            } else {
                                1.0 / d as f64
                            }
                        }
                    })
                    .collect();
                (v, GroupSlice { probs, input_fp })
            })?;
        for (v, slice) in computed {
            self.slices.insert(v, slice);
        }
        // Drop slices for support values no longer in the partition.
        // Every live group has an entry at this point (reused or just
        // recomputed) and map keys are unique, so a matching length
        // proves there is nothing stale to drop.
        if self.slices.len() != k {
            let live: BTreeSet<u64> = self.scaffold.group_supports().iter().copied().collect();
            self.slices.retain(|v, _| live.contains(v));
        }
        // Assemble per-item probabilities and sum serially in item
        // order — the exact order `OutdegreeProfile::oestimate` uses,
        // so the total is bit-identical too.
        let mut probabilities = vec![0.0f64; n];
        for g in 0..k {
            budget.check()?;
            let v = self.scaffold.group_supports()[g];
            let Some(slice) = self.slices.get(&v) else {
                // Unreachable by construction: every group was either
                // reused (fresh slice) or just recomputed. A
                // structured error beats a panic on the service path.
                return Err(Error::InvalidParameter(
                    "internal: missing probability slice for a frequency group".into(),
                ));
            };
            // A reused slice's fingerprint covers the member list, so
            // in both the reused and the just-recomputed case these
            // probabilities align with the scaffold's current members.
            for (&y, &p) in self.scaffold.group_members(g).iter().zip(&slice.probs) {
                probabilities[y] = p;
            }
        }
        let mut expected_cracks = 0.0f64;
        for &p in &probabilities {
            expected_cracks += p;
        }
        self.dirty.clear();
        let provenance = DeltaProvenance {
            groups_total: k,
            groups_reused: reused,
            groups_recomputed: plan.len(),
            windows_rebuilt,
            edits_applied: self.edits_since_assess,
        };
        self.edits_since_assess = 0;
        Ok(DeltaAssessment {
            expected_cracks,
            probabilities,
            provenance,
        })
    }

    /// The reference implementation the metamorphic suites compare
    /// against: a full from-scratch rebuild of the grouped graph and
    /// the plain Figure 5 profile over the engine's *current*
    /// summary. Returns `(expected_cracks, probabilities)`.
    pub fn assess_from_scratch(&self) -> (f64, Vec<f64>) {
        let graph = GroupedBigraph::new(&self.supports, self.m, &self.intervals);
        let profile = OutdegreeProfile::plain(&graph);
        (profile.oestimate(), profile.probabilities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bigmart() -> (Vec<u64>, u64, Vec<(f64, f64)>) {
        (
            vec![5, 4, 5, 5, 3, 5],
            10,
            vec![
                (0.0, 1.0),
                (0.4, 0.5),
                (0.5, 0.5),
                (0.4, 0.6),
                (0.1, 0.4),
                (0.5, 0.5),
            ],
        )
    }

    fn assert_bit_identical(engine: &mut IncrementalEngine, threads: usize) -> DeltaAssessment {
        let out = engine
            .assess_risk_delta(threads, &Budget::unlimited())
            .expect("assessment succeeds");
        let (oe, probs) = engine.assess_from_scratch();
        assert_eq!(out.expected_cracks.to_bits(), oe.to_bits());
        assert_eq!(out.probabilities.len(), probs.len());
        for (y, (a, b)) in out.probabilities.iter().zip(&probs).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "item {y}");
        }
        out
    }

    #[test]
    fn initial_assessment_matches_from_scratch() {
        let (s, m, iv) = bigmart();
        let mut engine = IncrementalEngine::new(&s, m, &iv).expect("valid");
        for threads in [1, 4] {
            let out = assert_bit_identical(&mut engine, threads);
            assert_eq!(
                out.provenance.groups_total,
                out.provenance.groups_reused + out.provenance.groups_recomputed
            );
        }
    }

    #[test]
    fn replace_reuses_groups_outside_the_dirty_envelope() {
        // Narrow point beliefs give each group a tight window
        // envelope, so a replace touching supports {1, 2, 7, 8}
        // leaves the support-5 group's (5, 5) envelope clean.
        let supports = vec![2u64, 5, 5, 7];
        let iv = vec![(0.2, 0.2), (0.5, 0.5), (0.5, 0.5), (0.7, 0.7)];
        let mut engine = IncrementalEngine::new(&supports, 10, &iv).expect("valid");
        assert_bit_identical(&mut engine, 1);
        let batch = DeltaBatch::new(vec![Edit::Replace {
            old: vec![0],
            new: vec![3],
        }]);
        engine.apply(&batch).expect("valid edit");
        let out = assert_bit_identical(&mut engine, 1);
        assert_eq!(out.provenance.edits_applied, 1);
        assert!(!out.provenance.windows_rebuilt);
        assert!(
            out.provenance.groups_reused >= 1,
            "the support-5 group avoids the dirty values: {:?}",
            out.provenance
        );
        assert!(out.provenance.groups_recomputed >= 2);
    }

    #[test]
    fn append_rebuilds_windows_and_stays_identical() {
        let (s, m, iv) = bigmart();
        let mut engine = IncrementalEngine::new(&s, m, &iv).expect("valid");
        engine
            .apply(&DeltaBatch::new(vec![Edit::Insert {
                items: vec![0, 2, 3],
            }]))
            .expect("valid edit");
        let out = assert_bit_identical(&mut engine, 4);
        assert!(out.provenance.windows_rebuilt);
        assert_eq!(engine.n_transactions(), 11);
        assert_eq!(engine.supports(), &[6, 4, 6, 6, 3, 5]);
    }

    #[test]
    fn delete_validation_protects_full_support_items() {
        let supports = vec![3u64, 1];
        let iv = vec![(0.0, 1.0), (0.0, 1.0)];
        let mut engine = IncrementalEngine::new(&supports, 3, &iv).expect("valid");
        // Item 0 has full support; deleting a transaction without it
        // is unrealizable.
        let bad = DeltaBatch::new(vec![Edit::Delete { items: vec![1] }]);
        assert!(engine.apply(&bad).is_err());
        // State untouched by the failed apply.
        assert_eq!(engine.supports(), &[3, 1]);
        assert_eq!(engine.n_transactions(), 3);
        let good = DeltaBatch::new(vec![Edit::Delete { items: vec![0, 1] }]);
        engine.apply(&good).expect("valid edit");
        assert_eq!(engine.supports(), &[2, 0]);
        assert_eq!(engine.n_transactions(), 2);
        assert_bit_identical(&mut engine, 1);
    }

    #[test]
    fn replace_validation_rejects_support_overflow() {
        let supports = vec![3u64, 1];
        let iv = vec![(0.0, 1.0), (0.0, 1.0)];
        let mut engine = IncrementalEngine::new(&supports, 3, &iv).expect("valid");
        // Pushing item 0 (already full) into another transaction
        // would exceed m.
        let bad = DeltaBatch::new(vec![Edit::Replace {
            old: vec![1],
            new: vec![0],
        }]);
        assert!(engine.apply(&bad).is_err());
        assert_eq!(engine.supports(), &[3, 1]);
    }

    #[test]
    fn edits_reject_malformed_item_lists() {
        let (s, m, iv) = bigmart();
        let mut engine = IncrementalEngine::new(&s, m, &iv).expect("valid");
        for edit in [
            Edit::Insert { items: vec![] },
            Edit::Insert { items: vec![2, 2] },
            Edit::Insert { items: vec![3, 1] },
            Edit::Insert { items: vec![6] },
        ] {
            assert!(
                engine.apply(&DeltaBatch::new(vec![edit.clone()])).is_err(),
                "{edit:?} must be rejected"
            );
        }
        assert_eq!(engine.supports(), &s[..]);
    }

    #[test]
    fn empty_batch_is_identity() {
        let (s, m, iv) = bigmart();
        let mut engine = IncrementalEngine::new(&s, m, &iv).expect("valid");
        let fp = engine.summary_fingerprint();
        engine.apply(&DeltaBatch::empty()).expect("identity");
        assert_eq!(engine.summary_fingerprint(), fp);
        let out = assert_bit_identical(&mut engine, 1);
        assert_eq!(out.provenance.edits_applied, 0);
    }

    #[test]
    fn long_random_script_stays_bit_identical_at_both_thread_counts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (s, m, iv) = bigmart();
        let mut engine = IncrementalEngine::new(&s, m, &iv).expect("valid");
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for step in 0..60 {
            let n = engine.n();
            let k = rng.gen_range(1..=n);
            let mut items: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                items.swap(i, rng.gen_range(0..=i));
            }
            items.truncate(k);
            items.sort_unstable();
            let edit = Edit::Insert { items };
            engine
                .apply(&DeltaBatch::new(vec![edit]))
                .expect("insert is always valid");
            if step % 3 == 0 {
                let threads = if step % 2 == 0 { 1 } else { 4 };
                assert_bit_identical(&mut engine, threads);
            }
        }
        assert_bit_identical(&mut engine, 4);
    }

    #[test]
    fn constructor_validates_inputs() {
        assert!(IncrementalEngine::new(&[], 5, &[]).is_err());
        assert!(IncrementalEngine::new(&[1], 0, &[(0.0, 1.0)]).is_err());
        assert!(IncrementalEngine::new(&[6], 5, &[(0.0, 1.0)]).is_err());
        assert!(IncrementalEngine::new(&[1], 5, &[(0.5, 0.4)]).is_err());
        assert!(IncrementalEngine::new(&[1], 5, &[(0.0, 1.5)]).is_err());
        assert!(IncrementalEngine::new(&[1, 2], 5, &[(0.0, 1.0)]).is_err());
    }
}

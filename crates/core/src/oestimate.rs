//! The O-estimate heuristic (Section 5, Figure 5).
//!
//! For each original item `x`, let `O_x` be the number of anonymized
//! items that can map to it. Under compliance the crack edge
//! `(x', x)` exists, and the O-estimate approximates the probability
//! of cracking `x` by `1/O_x`:
//!
//! ```text
//! OE(β, D) = Σ_{x ∈ I} 1 / O_x
//! ```
//!
//! restricted to the compliant subset `I_C` for α-compliant belief
//! functions (Section 5.3). The plain estimate runs in
//! `O(|D| + n log n)` via frequency groups and prefix sums; the
//! *propagated* variant first applies the Figure 7 degree-1
//! propagation ("whenever we refer to outdegrees, we assume that this
//! algorithm has been applied"), which turns certainty cascades like
//! Figure 6(a) into exact contributions.

use andi_data::Database;
use andi_graph::propagate::propagate_in_place;
use andi_graph::{DenseBigraph, GroupedBigraph};

use crate::belief::BeliefFunction;
use crate::error::{Error, Result};

/// What propagation concluded about one original item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemStatus {
    /// Still free; cracked with estimated probability `1/O_x`.
    Free { outdegree: usize },
    /// Propagation proved `x' -> x` is in every consistent mapping:
    /// cracked with certainty.
    ForcedCrack,
    /// Propagation matched some other anonymized item to `x`: never
    /// cracked.
    ForcedElsewhere,
    /// No anonymized item can map to `x` (its belief interval misses
    /// every observed frequency): never cracked.
    NoCandidates,
}

/// Per-item crack-probability profile, the carrier for all O-estimate
/// variants. Computing it once lets the recipe reuse it across many
/// compliance masks.
#[derive(Clone, Debug)]
pub struct OutdegreeProfile {
    status: Vec<ItemStatus>,
}

impl OutdegreeProfile {
    /// Plain Figure 5 profile (no propagation): every item with a
    /// non-empty candidate set is `Free` with its raw outdegree.
    pub fn plain(graph: &GroupedBigraph) -> Self {
        let status = (0..graph.n())
            .map(|x| match graph.outdegree(x) {
                0 => ItemStatus::NoCandidates,
                d => ItemStatus::Free { outdegree: d },
            })
            .collect();
        OutdegreeProfile { status }
    }

    /// Profile after degree-1 propagation (Figure 7). Materializes
    /// the dense graph; intended for domains up to a few tens of
    /// thousands of items.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyMappingSpace`] if propagation proves no
    /// consistent perfect matching exists.
    pub fn propagated(graph: &GroupedBigraph) -> Result<Self> {
        Self::propagated_dense(graph.to_dense())
    }

    /// Plain profile over an arbitrary dense mapping-space graph —
    /// the Section 8.1 generalization, where the graph may come from
    /// relational/attribute knowledge rather than frequency
    /// intervals.
    pub fn plain_dense(graph: &DenseBigraph) -> Self {
        let status = graph
            .right_degrees()
            .into_iter()
            .map(|d| match d {
                0 => ItemStatus::NoCandidates,
                d => ItemStatus::Free { outdegree: d },
            })
            .collect();
        OutdegreeProfile { status }
    }

    /// Propagated profile over an arbitrary dense mapping-space
    /// graph (consumes the graph, which propagation mutates).
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyMappingSpace`] if propagation proves no
    /// consistent perfect matching exists.
    pub fn propagated_dense(mut dense: DenseBigraph) -> Result<Self> {
        let prop = propagate_in_place(&mut dense);
        if prop.infeasible() {
            return Err(Error::EmptyMappingSpace);
        }
        let n = dense.n();
        let mut status: Vec<ItemStatus> = prop
            .graph
            .right_degrees()
            .into_iter()
            .map(|d| match d {
                0 => ItemStatus::NoCandidates,
                d => ItemStatus::Free { outdegree: d },
            })
            .collect();
        for &(i, y) in &prop.forced {
            debug_assert!(y < n);
            status[y] = if i == y {
                ItemStatus::ForcedCrack
            } else {
                ItemStatus::ForcedElsewhere
            };
        }
        Ok(OutdegreeProfile { status })
    }

    /// Domain size.
    pub fn n_items(&self) -> usize {
        self.status.len()
    }

    /// Status of item `x`.
    pub fn status(&self, x: usize) -> ItemStatus {
        self.status[x]
    }

    /// Estimated probability that item `x` is cracked.
    pub fn crack_probability(&self, x: usize) -> f64 {
        match self.status[x] {
            ItemStatus::Free { outdegree } => 1.0 / outdegree as f64,
            ItemStatus::ForcedCrack => 1.0,
            ItemStatus::ForcedElsewhere | ItemStatus::NoCandidates => 0.0,
        }
    }

    /// The O-estimate over the whole domain (full compliance).
    pub fn oestimate(&self) -> f64 {
        (0..self.n_items()).map(|x| self.crack_probability(x)).sum()
    }

    /// All crack probabilities as a vector (for the curve and recipe
    /// machinery, which is estimator-agnostic).
    pub fn probabilities(&self) -> Vec<f64> {
        (0..self.n_items())
            .map(|x| self.crack_probability(x))
            .collect()
    }

    /// The α-compliant O-estimate (Section 5.3): sum only over the
    /// compliant items — consistency guarantees the others are never
    /// cracked.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DomainMismatch`] when the mask length
    /// disagrees with the domain.
    pub fn oestimate_masked(&self, compliant: &[bool]) -> Result<f64> {
        if compliant.len() != self.n_items() {
            return Err(Error::DomainMismatch {
                expected: self.n_items(),
                got: compliant.len(),
            });
        }
        Ok((0..self.n_items())
            .filter(|&x| compliant[x])
            .map(|x| self.crack_probability(x))
            .sum())
    }

    /// A copy of the profile with the crack probability of every
    /// item outside `keep` zeroed out (status `NoCandidates`). Used
    /// by items-of-interest analyses so downstream sums and curves
    /// only count the kept items.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DomainMismatch`] when the mask length
    /// disagrees with the domain.
    pub fn restrict(&self, keep: &[bool]) -> Result<OutdegreeProfile> {
        if keep.len() != self.n_items() {
            return Err(Error::DomainMismatch {
                expected: self.n_items(),
                got: keep.len(),
            });
        }
        Ok(OutdegreeProfile {
            status: self
                .status
                .iter()
                .zip(keep.iter())
                .map(|(&s, &k)| if k { s } else { ItemStatus::NoCandidates })
                .collect(),
        })
    }

    /// Items propagation identified with certainty.
    pub fn forced_cracks(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, ItemStatus::ForcedCrack))
            .count()
    }
}

/// The O-estimate `OE(β, D)` of Figure 5 for a belief function
/// against an observed support profile (aligned indexing), without
/// propagation.
///
/// # Examples
///
/// The ignorant hacker's estimate recovers Lemma 1 and the
/// point-valued hacker's recovers Lemma 3:
///
/// ```
/// use andi_core::{oestimate, BeliefFunction};
///
/// let supports = [5u64, 4, 5, 5, 3, 5]; // BigMart, m = 10
/// let ignorant = BeliefFunction::ignorant(6);
/// assert!((oestimate(&ignorant, &supports, 10) - 1.0).abs() < 1e-12);
///
/// let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 10.0).collect();
/// let exact = BeliefFunction::point_valued(&freqs).unwrap();
/// assert!((oestimate(&exact, &supports, 10) - 3.0).abs() < 1e-12);
/// ```
pub fn oestimate(belief: &BeliefFunction, supports: &[u64], n_transactions: u64) -> f64 {
    let graph = belief.build_graph(supports, n_transactions);
    OutdegreeProfile::plain(&graph).oestimate()
}

/// Figure 5 + the Figure 7 propagation.
///
/// # Errors
///
/// See [`OutdegreeProfile::propagated`].
pub fn oestimate_propagated(
    belief: &BeliefFunction,
    supports: &[u64],
    n_transactions: u64,
) -> Result<f64> {
    let graph = belief.build_graph(supports, n_transactions);
    Ok(OutdegreeProfile::propagated(&graph)?.oestimate())
}

/// Convenience: the plain O-estimate straight from a database
/// (computes the support profile in a single pass, as step 1 of
/// Figure 5 prescribes).
pub fn oestimate_for(belief: &BeliefFunction, db: &Database) -> f64 {
    oestimate(belief, &db.supports(), db.n_transactions() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];
    const M: u64 = 10;

    fn freqs() -> Vec<f64> {
        BIGMART_SUPPORTS
            .iter()
            .map(|&s| s as f64 / M as f64)
            .collect()
    }

    #[test]
    fn ignorant_oe_is_one() {
        // Every O_x = n, so OE = n * 1/n = 1 (Lemma 1 recovered).
        let b = BeliefFunction::ignorant(6);
        let oe = oestimate(&b, &BIGMART_SUPPORTS, M);
        assert!((oe - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_valued_oe_equals_group_count() {
        // O_x = |group of x|, so OE = Σ n_i * (1/n_i) = g (Lemma 3
        // recovered).
        let b = BeliefFunction::point_valued(&freqs()).unwrap();
        let oe = oestimate(&b, &BIGMART_SUPPORTS, M);
        assert!((oe - 3.0).abs() < 1e-12);
    }

    #[test]
    fn figure_6a_plain_vs_propagated() {
        // The staircase: O-estimate 25/12 without propagation, exact
        // 4 with it.
        let supports = vec![2u64, 4, 6, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![(f(2), f(2)), (f(2), f(4)), (f(2), f(6)), (f(2), f(8))];
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let plain = oestimate(&b, &supports, 10);
        assert!(
            (plain - 25.0 / 12.0).abs() < 1e-12,
            "plain OE should be 25/12, got {plain}"
        );
        let prop = oestimate_propagated(&b, &supports, 10).unwrap();
        assert!(
            (prop - 4.0).abs() < 1e-12,
            "propagated OE should be 4, got {prop}"
        );
    }

    #[test]
    fn masked_oe_drops_noncompliant_items() {
        let b = BeliefFunction::widened(&freqs(), 0.05).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, M);
        let profile = OutdegreeProfile::plain(&graph);
        let full = profile.oestimate();
        let half = profile
            .oestimate_masked(&[true, false, true, false, true, false])
            .unwrap();
        assert!(half < full);
        let none = profile.oestimate_masked(&[false; 6]).unwrap();
        assert_eq!(none, 0.0);
        let all = profile.oestimate_masked(&[true; 6]).unwrap();
        assert!((all - full).abs() < 1e-12);
        // Wrong-size masks are a domain error, not a panic.
        assert!(matches!(
            profile.oestimate_masked(&[true; 3]),
            Err(Error::DomainMismatch {
                expected: 6,
                got: 3
            })
        ));
    }

    #[test]
    fn monotonicity_lemma_8() {
        // Wider intervals => smaller OE.
        let f = freqs();
        let narrow = BeliefFunction::widened(&f, 0.01).unwrap();
        let wide = BeliefFunction::widened(&f, 0.15).unwrap();
        assert!(narrow.refines(&wide));
        let oe_narrow = oestimate(&narrow, &BIGMART_SUPPORTS, M);
        let oe_wide = oestimate(&wide, &BIGMART_SUPPORTS, M);
        assert!(
            oe_narrow >= oe_wide - 1e-12,
            "Lemma 8 violated: {oe_narrow} < {oe_wide}"
        );
    }

    #[test]
    fn monotonicity_lemma_10() {
        // Fewer compliant items => smaller OE.
        let b = BeliefFunction::widened(&freqs(), 0.05).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, M);
        let profile = OutdegreeProfile::plain(&graph);
        let big = profile
            .oestimate_masked(&[true, true, true, true, false, false])
            .unwrap();
        let small = profile
            .oestimate_masked(&[true, true, false, false, false, false])
            .unwrap();
        assert!(small <= big + 1e-12, "Lemma 10 violated: {small} > {big}");
    }

    #[test]
    fn no_candidate_items_contribute_zero() {
        // Item 0 believes a frequency nothing has.
        let intervals = vec![(0.95, 1.0), (0.0, 1.0), (0.0, 1.0)];
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let oe = oestimate(&b, &[5, 4, 3], 10);
        // Items 1, 2 each have O = 3.
        assert!((oe - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn propagated_profile_reports_statuses() {
        let supports = vec![2u64, 4, 6, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![(f(2), f(2)), (f(2), f(4)), (f(2), f(6)), (f(2), f(8))];
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let graph = b.build_graph(&supports, 10);
        let profile = OutdegreeProfile::propagated(&graph).unwrap();
        assert_eq!(profile.forced_cracks(), 4);
        for x in 0..4 {
            assert_eq!(profile.status(x), ItemStatus::ForcedCrack);
            assert_eq!(profile.crack_probability(x), 1.0);
        }
    }

    #[test]
    fn oestimate_for_database_matches_supports_path() {
        let db = andi_data::bigmart();
        let b = BeliefFunction::widened(&db.frequencies(), 0.05).unwrap();
        let via_db = oestimate_for(&b, &db);
        let via_supports = oestimate(&b, &db.supports(), db.n_transactions() as u64);
        assert_eq!(via_db, via_supports);
    }

    #[test]
    fn restrict_zeroes_dropped_items() {
        let b = BeliefFunction::widened(&freqs(), 0.05).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, M);
        let profile = OutdegreeProfile::plain(&graph);
        let restricted = profile
            .restrict(&[true, false, true, false, false, false])
            .unwrap();
        assert_eq!(restricted.crack_probability(1), 0.0);
        assert_eq!(restricted.status(3), ItemStatus::NoCandidates);
        assert_eq!(
            restricted.crack_probability(0),
            profile.crack_probability(0)
        );
        assert!(
            (restricted.oestimate()
                - profile
                    .oestimate_masked(&[true, false, true, false, false, false])
                    .unwrap())
            .abs()
                < 1e-12
        );
        // Probabilities vector agrees entry-wise.
        let probs = restricted.probabilities();
        assert_eq!(probs.len(), 6);
        assert_eq!(probs[1], 0.0);
    }

    #[test]
    fn restrict_checks_mask_length() {
        let b = BeliefFunction::ignorant(6);
        let graph = b.build_graph(&BIGMART_SUPPORTS, M);
        assert!(matches!(
            OutdegreeProfile::plain(&graph).restrict(&[true; 3]),
            Err(Error::DomainMismatch {
                expected: 6,
                got: 3
            })
        ));
    }

    #[test]
    fn chain_oe_agrees_with_closed_form() {
        use crate::chain::ChainSpec;
        let c = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap();
        let (supports, belief) = c.realize(90).unwrap();
        let oe = oestimate(&belief, &supports, 90);
        assert!(
            (oe - c.oestimate()).abs() < 1e-12,
            "general OE {oe} vs chain closed form {}",
            c.oestimate()
        );
    }

    /// Property tests generalizing the Lemma 8 / Lemma 10 monotonicity
    /// checks above from hand-picked masks to random non-compliant
    /// subsets, plus the `DomainMismatch` path of `oestimate_masked`.
    mod masked_props {
        use super::*;
        use proptest::prelude::*;

        const M: u64 = 200;

        /// Strategy: a support profile over `m = 200` together with a
        /// uniform compliance mask and a thinning mask, all of one
        /// random length.
        fn profile_mask_and_drop() -> impl Strategy<Value = (Vec<u64>, Vec<bool>, Vec<bool>)> {
            (3usize..20).prop_flat_map(|n| {
                (
                    prop::collection::vec(1u64..M, n),
                    prop::collection::vec(prop::bool::ANY, n),
                    prop::collection::vec(prop::bool::weighted(0.4), n),
                )
            })
        }

        fn widened_profile(supports: &[u64], width: f64) -> OutdegreeProfile {
            let f: Vec<f64> = supports.iter().map(|&s| s as f64 / M as f64).collect();
            let b = BeliefFunction::widened(&f, width).unwrap();
            OutdegreeProfile::plain(&b.build_graph(supports, M))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Lemma 10 over random subsets: shrinking the compliant
            /// set can only lower the masked O-estimate, and the
            /// all-true mask recovers the unmasked estimate.
            #[test]
            fn lemma_10_holds_for_random_subsets(
                (supports, mask, drop) in profile_mask_and_drop(),
                width_pct in 0u32..30,
            ) {
                let profile = widened_profile(&supports, width_pct as f64 / 100.0);
                let submask: Vec<bool> = mask
                    .iter()
                    .zip(drop.iter())
                    .map(|(&m, &d)| m && !d)
                    .collect();
                let big = profile.oestimate_masked(&mask).unwrap();
                let small = profile.oestimate_masked(&submask).unwrap();
                prop_assert!(
                    small <= big + 1e-12,
                    "Lemma 10 violated: OE({submask:?}) = {small} > OE({mask:?}) = {big}"
                );
                let full = profile.oestimate_masked(&vec![true; supports.len()]).unwrap();
                prop_assert!((full - profile.oestimate()).abs() < 1e-12);
            }

            /// Lemma 8 under masking: a refined belief (narrower
            /// intervals) never lowers the O-estimate, whatever the
            /// compliant subset.
            #[test]
            fn lemma_8_holds_under_random_masks(
                (supports, mask, _) in profile_mask_and_drop(),
                w_lo_pct in 0u32..15,
                w_delta_pct in 1u32..20,
            ) {
                let narrow = widened_profile(&supports, w_lo_pct as f64 / 100.0);
                let wide =
                    widened_profile(&supports, (w_lo_pct + w_delta_pct) as f64 / 100.0);
                let oe_narrow = narrow.oestimate_masked(&mask).unwrap();
                let oe_wide = wide.oestimate_masked(&mask).unwrap();
                prop_assert!(
                    oe_narrow >= oe_wide - 1e-12,
                    "Lemma 8 violated under mask {mask:?}: {oe_narrow} < {oe_wide}"
                );
            }

            /// The masked estimator is additive over a partition of
            /// the domain and agrees with `restrict`.
            #[test]
            fn masked_oe_partitions_and_matches_restrict(
                (supports, mask, _) in profile_mask_and_drop(),
                width_pct in 0u32..30,
            ) {
                let profile = widened_profile(&supports, width_pct as f64 / 100.0);
                let complement: Vec<bool> = mask.iter().map(|&m| !m).collect();
                let kept = profile.oestimate_masked(&mask).unwrap();
                let dropped = profile.oestimate_masked(&complement).unwrap();
                prop_assert!(
                    (kept + dropped - profile.oestimate()).abs() < 1e-9,
                    "masked OE not additive: {kept} + {dropped} != {}",
                    profile.oestimate()
                );
                let restricted = profile.restrict(&mask).unwrap().oestimate();
                prop_assert!((restricted - kept).abs() < 1e-12);
            }

            /// Every wrong-length mask is a `DomainMismatch` carrying
            /// both lengths — never a panic, never a silent truncation.
            #[test]
            fn wrong_length_masks_are_domain_errors(
                (supports, _, _) in profile_mask_and_drop(),
                bad_len in 0usize..40,
                width_pct in 0u32..30,
            ) {
                prop_assume!(bad_len != supports.len());
                let profile = widened_profile(&supports, width_pct as f64 / 100.0);
                let n = supports.len();
                match profile.oestimate_masked(&vec![true; bad_len]) {
                    Err(Error::DomainMismatch { expected, got }) => {
                        prop_assert_eq!(expected, n);
                        prop_assert_eq!(got, bad_len);
                    }
                    other => {
                        prop_assert!(false, "expected DomainMismatch, got {other:?}");
                    }
                }
                match profile.restrict(&vec![false; bad_len]) {
                    Err(Error::DomainMismatch { expected, got }) => {
                        prop_assert_eq!(expected, n);
                        prop_assert_eq!(got, bad_len);
                    }
                    other => {
                        let unexpected = other.map(|p| p.oestimate());
                        prop_assert!(false, "expected DomainMismatch, got {unexpected:?}");
                    }
                }
            }
        }
    }
}

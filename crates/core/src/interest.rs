//! Items-of-interest risk analysis (Lemmas 2 and 4 generalized).
//!
//! Often the owner is not equally worried about every item: "the
//! data owner may only be concerned with the identities of the
//! frequent items, or the items with the highest profit margin"
//! (Section 3.1). This module selects an interest subset `I₁ ⊆ I`,
//! evaluates the closed forms restricted to it (Lemma 2 for the
//! ignorant hacker, Lemma 4 for the point-valued one) and the
//! O-estimate restricted to it, and finds the interest-budgeted
//! `α_max`.

use andi_data::FrequencyGroups;

use crate::belief::BeliefFunction;
use crate::error::{Error, Result};
use crate::formulas;
use crate::oestimate::OutdegreeProfile;
use crate::recipe::compliancy_curve;

/// How the interest subset is chosen.
#[derive(Clone, Debug, PartialEq)]
pub enum InterestSpec {
    /// The `k` most frequent items (ties broken by item id).
    TopKFrequent(usize),
    /// Items with frequency at least the threshold.
    FrequencyAbove(f64),
    /// An explicit item list.
    Explicit(Vec<usize>),
}

/// Weighted disclosure value: `Σ_x w_x · P(crack x)` — the "items
/// with the highest profit margin" reading of Section 3.1, where a
/// crack is as bad as the item is valuable.
///
/// # Errors
///
/// The weight vector must cover the domain, with non-negative
/// finite entries.
pub fn weighted_expected_damage(
    profile: &crate::oestimate::OutdegreeProfile,
    weights: &[f64],
) -> Result<f64> {
    if weights.len() != profile.n_items() {
        return Err(Error::DomainMismatch {
            expected: profile.n_items(),
            got: weights.len(),
        });
    }
    for (x, &w) in weights.iter().enumerate() {
        if !(w >= 0.0 && w.is_finite()) {
            return Err(Error::InvalidParameter(format!(
                "weight of item {x} must be finite and non-negative, got {w}"
            )));
        }
    }
    Ok(weights
        .iter()
        .enumerate()
        .map(|(x, &w)| w * profile.crack_probability(x))
        .sum())
}

impl InterestSpec {
    /// Materializes the boolean mask over the domain.
    ///
    /// # Errors
    ///
    /// Rejects out-of-domain explicit items, `k` larger than the
    /// domain, or thresholds outside `[0, 1]`.
    pub fn mask(&self, supports: &[u64], n_transactions: u64) -> Result<Vec<bool>> {
        let n = supports.len();
        match self {
            InterestSpec::TopKFrequent(k) => {
                if *k > n {
                    return Err(Error::InvalidParameter(format!(
                        "top-{k} requested from a domain of {n}"
                    )));
                }
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_unstable_by_key(|&x| (std::cmp::Reverse(supports[x]), x));
                let mut mask = vec![false; n];
                for &x in order.iter().take(*k) {
                    mask[x] = true;
                }
                Ok(mask)
            }
            InterestSpec::FrequencyAbove(threshold) => {
                if !(0.0..=1.0).contains(threshold) {
                    return Err(Error::InvalidParameter(format!(
                        "frequency threshold {threshold} out of [0, 1]"
                    )));
                }
                let m = n_transactions as f64;
                Ok(supports
                    .iter()
                    .map(|&s| s as f64 / m >= *threshold)
                    .collect())
            }
            InterestSpec::Explicit(items) => {
                let mut mask = vec![false; n];
                for &x in items {
                    if x >= n {
                        return Err(Error::InvalidParameter(format!(
                            "interest item {x} outside domain 0..{n}"
                        )));
                    }
                    mask[x] = true;
                }
                Ok(mask)
            }
        }
    }
}

/// Risk figures restricted to the interest subset.
#[derive(Clone, Debug)]
pub struct InterestRisk {
    /// The interest mask used.
    pub mask: Vec<bool>,
    /// `n₁ = |I₁|`.
    pub n_interest: usize,
    /// Lemma 2: expected interesting cracks under the ignorant
    /// hacker, `n₁/n`.
    pub ignorant: f64,
    /// Lemma 4: expected interesting cracks under the compliant
    /// point-valued hacker, `Σ cᵢ/nᵢ`.
    pub point_valued: f64,
    /// O-estimate of interesting cracks for the `δ`-widened
    /// compliant interval belief.
    pub interval_oe: f64,
    /// Largest compliancy fraction keeping the *interesting* crack
    /// estimate within `tolerance · n₁`, averaged over nested random
    /// masks (None if even full compliance fits).
    pub alpha_max: Option<f64>,
}

/// Configuration for [`assess_interest_risk`].
#[derive(Clone, Copy, Debug)]
pub struct InterestConfig {
    /// Tolerated expected fraction *of the interest subset* cracked.
    pub tolerance: f64,
    /// Interval half-width; `None` = use the median frequency-group
    /// gap (`δ_med`).
    pub delta: Option<f64>,
    /// Averaging runs for the α curve.
    pub n_mask_runs: usize,
    /// Apply Figure 7 propagation.
    pub use_propagation: bool,
    /// RNG seed for mask permutations.
    pub seed: u64,
}

impl Default for InterestConfig {
    fn default() -> Self {
        InterestConfig {
            tolerance: 0.1,
            delta: None,
            n_mask_runs: 5,
            use_propagation: true,
            seed: 0x1A7E,
        }
    }
}

/// Runs the interest-restricted analysis on a support profile.
///
/// # Errors
///
/// Propagates spec/parameter validation and empty-space detection.
/// # Examples
///
/// ```
/// use andi_core::{assess_interest_risk, InterestConfig, InterestSpec};
///
/// let supports = [5u64, 4, 5, 5, 3, 5]; // BigMart
/// // The owner only cares about the two best sellers.
/// let risk = assess_interest_risk(
///     &supports, 10,
///     &InterestSpec::TopKFrequent(2),
///     &InterestConfig::default(),
/// ).unwrap();
/// assert_eq!(risk.n_interest, 2);
/// // Lemma 2: an ignorant hacker cracks n1/n of them.
/// assert!((risk.ignorant - 2.0 / 6.0).abs() < 1e-12);
/// ```
pub fn assess_interest_risk(
    supports: &[u64],
    n_transactions: u64,
    spec: &InterestSpec,
    config: &InterestConfig,
) -> Result<InterestRisk> {
    if supports.is_empty() {
        return Err(Error::InvalidParameter("empty support profile".into()));
    }
    if !(config.tolerance > 0.0 && config.tolerance <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "tolerance must be in (0, 1], got {}",
            config.tolerance
        )));
    }
    let n = supports.len();
    let mask = spec.mask(supports, n_transactions)?;
    let n_interest = mask.iter().filter(|&&b| b).count();

    let groups = FrequencyGroups::from_supports(supports, n_transactions);
    let ignorant = formulas::ignorant_expected_cracks_of_subset(n, n_interest)?;
    let point_valued = formulas::point_valued_expected_cracks_of_subset(&groups, &mask)?;

    let delta = config
        .delta
        .unwrap_or_else(|| groups.median_gap().unwrap_or(0.0));
    let m = n_transactions as f64;
    let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / m).collect();
    let belief = BeliefFunction::widened(&freqs, delta)?;
    let graph = belief.build_graph(supports, n_transactions);
    let profile = if config.use_propagation {
        OutdegreeProfile::propagated(&graph)?
    } else {
        OutdegreeProfile::plain(&graph)
    };
    let interval_oe = profile.oestimate_masked(&mask)?;

    // α search against the interest budget. The compliancy curve
    // machinery works on crack probabilities; zero out uninteresting
    // items by building a restricted profile view via masking within
    // the curve: reuse compliancy_curve on a masked pseudo-profile.
    let budget = config.tolerance * n_interest as f64;
    let alpha_max = if interval_oe <= budget {
        None
    } else {
        // Restrict the profile to interesting items (uninteresting
        // crack probabilities do not count toward the budget).
        let restricted = profile.restrict(&mask)?;
        let alphas: Vec<f64> = (0..=100).map(|k| k as f64 / 100.0).collect();
        let curve = compliancy_curve(&restricted, &alphas, config.n_mask_runs, config.seed);
        let best = curve
            .iter()
            .rev()
            .find(|p| p.oestimate <= budget)
            .map(|p| p.alpha)
            .unwrap_or(0.0);
        Some(best)
    };

    Ok(InterestRisk {
        mask,
        n_interest,
        ignorant,
        point_valued,
        interval_oe,
        alpha_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];

    #[test]
    fn top_k_mask_selects_most_frequent() {
        let mask = InterestSpec::TopKFrequent(2)
            .mask(&BIGMART_SUPPORTS, 10)
            .unwrap();
        // Supports 5,4,5,5,3,5: top-2 by (support, id) = items 0, 2.
        assert_eq!(mask, vec![true, false, true, false, false, false]);
    }

    #[test]
    fn frequency_threshold_mask() {
        let mask = InterestSpec::FrequencyAbove(0.45)
            .mask(&BIGMART_SUPPORTS, 10)
            .unwrap();
        assert_eq!(mask, vec![true, false, true, true, false, true]);
    }

    #[test]
    fn explicit_mask_and_validation() {
        let mask = InterestSpec::Explicit(vec![1, 4])
            .mask(&BIGMART_SUPPORTS, 10)
            .unwrap();
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
        assert!(InterestSpec::Explicit(vec![9])
            .mask(&BIGMART_SUPPORTS, 10)
            .is_err());
        assert!(InterestSpec::TopKFrequent(7)
            .mask(&BIGMART_SUPPORTS, 10)
            .is_err());
        assert!(InterestSpec::FrequencyAbove(1.5)
            .mask(&BIGMART_SUPPORTS, 10)
            .is_err());
    }

    #[test]
    fn lemma_values_on_bigmart() {
        let risk = assess_interest_risk(
            &BIGMART_SUPPORTS,
            10,
            &InterestSpec::Explicit(vec![0, 1]),
            &InterestConfig::default(),
        )
        .unwrap();
        assert_eq!(risk.n_interest, 2);
        // Lemma 2: 2/6.
        assert!((risk.ignorant - 2.0 / 6.0).abs() < 1e-12);
        // Lemma 4: item 0 in the 4-group (1/4), item 1 alone (1).
        assert!((risk.point_valued - 1.25).abs() < 1e-12);
        // Interval OE of the subset is at most the Lemma 4 value
        // (wider intervals, Lemma 8).
        assert!(risk.interval_oe <= risk.point_valued + 1e-12);
    }

    #[test]
    fn alpha_max_appears_under_tight_budgets() {
        let tight = assess_interest_risk(
            &BIGMART_SUPPORTS,
            10,
            &InterestSpec::TopKFrequent(4),
            &InterestConfig {
                tolerance: 0.05,
                ..InterestConfig::default()
            },
        )
        .unwrap();
        let alpha = tight.alpha_max.expect("tight budget forces the search");
        assert!(alpha < 1.0);

        let loose = assess_interest_risk(
            &BIGMART_SUPPORTS,
            10,
            &InterestSpec::TopKFrequent(4),
            &InterestConfig {
                tolerance: 1.0,
                ..InterestConfig::default()
            },
        )
        .unwrap();
        assert_eq!(loose.alpha_max, None, "full compliance fits a 100% budget");
    }

    #[test]
    fn empty_interest_is_risk_free() {
        let risk = assess_interest_risk(
            &BIGMART_SUPPORTS,
            10,
            &InterestSpec::Explicit(vec![]),
            &InterestConfig::default(),
        )
        .unwrap();
        assert_eq!(risk.n_interest, 0);
        assert_eq!(risk.ignorant, 0.0);
        assert_eq!(risk.point_valued, 0.0);
        assert_eq!(risk.interval_oe, 0.0);
        assert_eq!(risk.alpha_max, None);
    }

    #[test]
    fn weighted_damage_weighs_probabilities() {
        use crate::belief::BeliefFunction;
        use crate::oestimate::OutdegreeProfile;
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let b = BeliefFunction::point_valued(&freqs).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        let profile = OutdegreeProfile::plain(&graph);
        // Uniform weight 1: damage = OE = 3.
        let flat = weighted_expected_damage(&profile, &[1.0; 6]).unwrap();
        assert!((flat - 3.0).abs() < 1e-12);
        // All value on singleton item 1 (cracked w.p. 1): damage = w.
        let mut w = [0.0; 6];
        w[1] = 100.0;
        let focused = weighted_expected_damage(&profile, &w).unwrap();
        assert!((focused - 100.0).abs() < 1e-12);
        // Validation.
        assert!(weighted_expected_damage(&profile, &[1.0; 3]).is_err());
        assert!(weighted_expected_damage(&profile, &[1.0, -1.0, 0.0, 0.0, 0.0, 0.0]).is_err());
        assert!(weighted_expected_damage(&profile, &[f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn parameter_validation() {
        let bad = InterestConfig {
            tolerance: 0.0,
            ..InterestConfig::default()
        };
        assert!(
            assess_interest_risk(&BIGMART_SUPPORTS, 10, &InterestSpec::TopKFrequent(2), &bad)
                .is_err()
        );
        assert!(assess_interest_risk(
            &[],
            10,
            &InterestSpec::TopKFrequent(0),
            &InterestConfig::default()
        )
        .is_err());
    }
}

//! Similarity-by-Sampling (Section 7.4, Figure 13).
//!
//! How much compliancy can an attacker with *similar* data achieve?
//! The data owner simulates similarity by sampling their own
//! database: a `p%` sample yields sampled frequencies `f̂_x` and a
//! sampled median group gap `δ'_med`; the induced belief function
//! `β(x) = [f̂_x - δ'_med, f̂_x + δ'_med]` has a measurable degree of
//! compliancy against the true frequencies. Sweeping `p` produces the
//! Figure 12 curves, read together with the recipe's `α_max` to judge
//! whether "similar data" suffices to breach tolerance.

use andi_data::{sample::sample_fraction, Database, FrequencyGroups};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::belief::BeliefFunction;
use crate::error::{Error, Result};

/// Which gap statistic sets the sampled interval half-width.
///
/// The paper's procedure uses the median; it reports that using the
/// *average* instead yields a misleading ~0.99 compliancy uniformly
/// across sample sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GapPolicy {
    /// `δ' = ` sampled median group gap (the paper's choice).
    Median,
    /// `δ' = ` sampled mean group gap (shown by the paper to be
    /// over-permissive).
    Mean,
}

/// Configuration for the sampling sweep.
#[derive(Clone, Copy, Debug)]
pub struct SimilarityConfig {
    /// Samples drawn per sample size (the paper uses 10).
    pub samples_per_size: usize,
    /// Gap statistic for the interval width.
    pub gap_policy: GapPolicy,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            samples_per_size: 10,
            gap_policy: GapPolicy::Median,
            seed: 0x5A11,
        }
    }
}

/// One sweep point: the average compliancy achieved by belief
/// functions built from samples of a given size.
#[derive(Clone, Copy, Debug)]
pub struct SimilarityPoint {
    /// Sample size as a fraction of the database.
    pub fraction: f64,
    /// Mean degree of compliancy `α_p` over the repeated samples.
    pub mean_alpha: f64,
    /// Standard deviation of `α` across samples.
    pub std_alpha: f64,
    /// Mean sampled interval half-width `δ'` used.
    pub mean_delta: f64,
}

/// A belief function built from one sample, plus its bookkeeping.
#[derive(Clone, Debug)]
pub struct SampledBelief {
    /// The induced belief function over sampled frequencies.
    pub belief: BeliefFunction,
    /// The half-width `δ'` used.
    pub delta: f64,
    /// Its degree of compliancy against the full database.
    pub alpha: f64,
}

/// Builds the belief function induced by one random sample of
/// `fraction` of the transactions (steps a–d of Figure 13).
///
/// # Errors
///
/// Propagates parameter validation; `fraction` must lie in `(0, 1]`.
pub fn sampled_belief(
    db: &Database,
    fraction: f64,
    config: &SimilarityConfig,
    rng: &mut StdRng,
) -> Result<SampledBelief> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "sample fraction must be in (0, 1], got {fraction}"
        )));
    }
    let sample = sample_fraction(db, fraction, rng);
    let sampled_freqs = sample.frequencies();
    let groups = FrequencyGroups::of_database(&sample);
    let stats = groups.gap_stats();
    let delta = match (config.gap_policy, stats) {
        (GapPolicy::Median, Some(s)) => s.median,
        (GapPolicy::Mean, Some(s)) => s.mean,
        // A single frequency group has no gaps; fall back to a point
        // belief (width 0).
        (_, None) => 0.0,
    };
    let belief = BeliefFunction::widened(&sampled_freqs, delta)?;
    let alpha = belief.alpha(&db.frequencies());
    Ok(SampledBelief {
        belief,
        delta,
        alpha,
    })
}

/// Runs the full Figure 13 procedure over a range of sample sizes.
///
/// # Errors
///
/// Rejects an empty fraction list, out-of-range fractions, or a zero
/// repeat count.
/// # Examples
///
/// ```
/// use andi_core::{similarity_by_sampling, SimilarityConfig};
/// use andi_data::bigmart;
///
/// let db = bigmart();
/// let config = SimilarityConfig { samples_per_size: 3, ..SimilarityConfig::default() };
/// let points = similarity_by_sampling(&db, &[0.5, 1.0], &config).unwrap();
/// // A belief function built from the full data is fully compliant.
/// assert!((points[1].mean_alpha - 1.0).abs() < 1e-9);
/// ```
pub fn similarity_by_sampling(
    db: &Database,
    fractions: &[f64],
    config: &SimilarityConfig,
) -> Result<Vec<SimilarityPoint>> {
    if fractions.is_empty() {
        return Err(Error::InvalidParameter("no sample sizes given".into()));
    }
    if config.samples_per_size == 0 {
        return Err(Error::InvalidParameter(
            "need at least one sample per size".into(),
        ));
    }
    let mut out = Vec::with_capacity(fractions.len());
    for (k, &fraction) in fractions.iter().enumerate() {
        let mut alphas = Vec::with_capacity(config.samples_per_size);
        let mut deltas = Vec::with_capacity(config.samples_per_size);
        for s in 0..config.samples_per_size {
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add((k as u64) << 32)
                    .wrapping_add(s as u64),
            );
            let sb = sampled_belief(db, fraction, config, &mut rng)?;
            alphas.push(sb.alpha);
            deltas.push(sb.delta);
        }
        let mean_alpha = alphas.iter().sum::<f64>() / alphas.len() as f64;
        let var = alphas
            .iter()
            .map(|&a| (a - mean_alpha) * (a - mean_alpha))
            .sum::<f64>()
            / alphas.len().max(2) as f64;
        out.push(SimilarityPoint {
            fraction,
            mean_alpha,
            std_alpha: var.sqrt(),
            mean_delta: deltas.iter().sum::<f64>() / deltas.len() as f64,
        });
    }
    Ok(out)
}

/// Risk of releasing an anonymized *sample* instead of the full
/// database.
///
/// Clifton \[7\] argues a small random sample poses little threat; the
/// paper's Section 7.4 shows that in compliancy terms this is not
/// true for every dataset. This helper gives the owner the direct
/// view: for each candidate release fraction, the expected crack
/// fraction of the released sample itself, under the recipe's
/// `δ_med`-interval hacker with full compliancy on the *released*
/// frequencies.
#[derive(Clone, Copy, Debug)]
pub struct SampleReleasePoint {
    /// Fraction of transactions released.
    pub fraction: f64,
    /// Items in the released sample with non-zero support (only
    /// these can leak).
    pub exposed_items: usize,
    /// O-estimate of cracks against the released sample.
    pub oestimate: f64,
    /// The same as a fraction of the full domain.
    pub fraction_cracked: f64,
}

/// Sweeps release fractions and reports the crack O-estimate of each
/// hypothetical release (mean over `config.samples_per_size` draws).
///
/// # Errors
///
/// Mirrors [`similarity_by_sampling`]'s validation.
pub fn sample_release_curve(
    db: &Database,
    fractions: &[f64],
    config: &SimilarityConfig,
) -> Result<Vec<SampleReleasePoint>> {
    if fractions.is_empty() {
        return Err(Error::InvalidParameter("no release fractions given".into()));
    }
    if config.samples_per_size == 0 {
        return Err(Error::InvalidParameter(
            "need at least one sample per size".into(),
        ));
    }
    let n = db.n_items();
    let mut out = Vec::with_capacity(fractions.len());
    for (k, &fraction) in fractions.iter().enumerate() {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(Error::InvalidParameter(format!(
                "release fraction must be in (0, 1], got {fraction}"
            )));
        }
        let mut oes = Vec::with_capacity(config.samples_per_size);
        let mut exposed = 0usize;
        for s in 0..config.samples_per_size {
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add(0x5EED)
                    .wrapping_add((k as u64) << 32)
                    .wrapping_add(s as u64),
            );
            let sample = sample_fraction(db, fraction, &mut rng);
            let supports = sample.supports();
            let m = sample.n_transactions() as u64;
            let groups = FrequencyGroups::from_supports(&supports, m);
            let delta = match config.gap_policy {
                GapPolicy::Median => groups.median_gap().unwrap_or(0.0),
                GapPolicy::Mean => groups.gap_stats().map(|g| g.mean).unwrap_or(0.0),
            };
            let freqs: Vec<f64> = supports.iter().map(|&c| c as f64 / m as f64).collect();
            let belief = BeliefFunction::widened(&freqs, delta)?;
            let graph = belief.build_graph(&supports, m);
            let oe = crate::oestimate::OutdegreeProfile::plain(&graph).oestimate();
            oes.push(oe);
            exposed = exposed.max(supports.iter().filter(|&&c| c > 0).count());
        }
        let mean_oe = oes.iter().sum::<f64>() / oes.len() as f64;
        out.push(SampleReleasePoint {
            fraction,
            exposed_items: exposed,
            oestimate: mean_oe,
            fraction_cracked: mean_oe / n as f64,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::bigmart;

    #[test]
    fn full_sample_is_fully_compliant() {
        // A 100% sample reproduces the true frequencies exactly, so
        // every interval contains its truth.
        let db = bigmart();
        let config = SimilarityConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let sb = sampled_belief(&db, 1.0, &config, &mut rng).unwrap();
        assert!((sb.alpha - 1.0).abs() < 1e-12);
        assert!((sb.delta - 0.1).abs() < 1e-12, "true median gap is 0.1");
    }

    #[test]
    fn sweep_produces_one_point_per_fraction() {
        let db = bigmart();
        let config = SimilarityConfig {
            samples_per_size: 4,
            ..SimilarityConfig::default()
        };
        let points = similarity_by_sampling(&db, &[0.3, 0.6, 1.0], &config).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(
                (0.0..=1.0).contains(&p.mean_alpha),
                "alpha {}",
                p.mean_alpha
            );
            assert!(p.mean_delta >= 0.0);
        }
        // The 100% point is exact.
        assert!((points[2].mean_alpha - 1.0).abs() < 1e-12);
        assert_eq!(points[2].std_alpha, 0.0);
    }

    #[test]
    fn mean_policy_is_at_least_as_permissive() {
        // Wider intervals (mean >= median for skewed gaps) can only
        // raise compliancy on average.
        let db = bigmart();
        let base = SimilarityConfig {
            samples_per_size: 6,
            gap_policy: GapPolicy::Median,
            seed: 7,
        };
        let med = similarity_by_sampling(&db, &[0.5], &base).unwrap()[0];
        let mean = similarity_by_sampling(
            &db,
            &[0.5],
            &SimilarityConfig {
                gap_policy: GapPolicy::Mean,
                ..base
            },
        )
        .unwrap()[0];
        assert!(mean.mean_alpha >= med.mean_alpha - 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let db = bigmart();
        let config = SimilarityConfig::default();
        let mut rng = StdRng::seed_from_u64(2);
        assert!(sampled_belief(&db, 0.0, &config, &mut rng).is_err());
        assert!(sampled_belief(&db, 1.5, &config, &mut rng).is_err());
        assert!(similarity_by_sampling(&db, &[], &config).is_err());
        let bad = SimilarityConfig {
            samples_per_size: 0,
            ..config
        };
        assert!(similarity_by_sampling(&db, &[0.5], &bad).is_err());
    }

    #[test]
    fn sweep_is_reproducible() {
        let db = bigmart();
        let config = SimilarityConfig {
            samples_per_size: 3,
            ..SimilarityConfig::default()
        };
        let a = similarity_by_sampling(&db, &[0.4], &config).unwrap();
        let b = similarity_by_sampling(&db, &[0.4], &config).unwrap();
        assert_eq!(a[0].mean_alpha, b[0].mean_alpha);
    }

    #[test]
    fn sample_release_curve_shapes() {
        let db = bigmart();
        let config = SimilarityConfig {
            samples_per_size: 3,
            ..SimilarityConfig::default()
        };
        let points = sample_release_curve(&db, &[0.3, 1.0], &config).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.oestimate >= 0.0);
            assert!(p.fraction_cracked <= 1.0 + 1e-9);
            assert!(p.exposed_items <= 6);
        }
        // A full release exposes everything; its OE equals the
        // recipe's full-compliance OE on the original database.
        assert_eq!(points[1].exposed_items, 6);
        let full = &points[1];
        let groups = FrequencyGroups::of_database(&db);
        let belief =
            BeliefFunction::widened(&db.frequencies(), groups.median_gap().unwrap()).unwrap();
        let expected = crate::oestimate::oestimate_for(&belief, &db);
        assert!((full.oestimate - expected).abs() < 1e-9);
    }

    #[test]
    fn sample_release_rejects_bad_inputs() {
        let db = bigmart();
        let config = SimilarityConfig::default();
        assert!(sample_release_curve(&db, &[], &config).is_err());
        assert!(sample_release_curve(&db, &[0.0], &config).is_err());
        assert!(sample_release_curve(&db, &[1.5], &config).is_err());
        let bad = SimilarityConfig {
            samples_per_size: 0,
            ..config
        };
        assert!(sample_release_curve(&db, &[0.5], &bad).is_err());
    }

    #[test]
    fn single_group_sample_degrades_to_point_width() {
        // A database where every item has the same support: no gaps.
        let db = Database::from_raw(3, &[&[0, 1, 2], &[0, 1, 2]]).unwrap();
        let config = SimilarityConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let sb = sampled_belief(&db, 1.0, &config, &mut rng).unwrap();
        assert_eq!(sb.delta, 0.0);
        assert!((sb.alpha - 1.0).abs() < 1e-12);
    }

    use andi_data::Database;
}

//! Simulation driver: the paper's ground-truth estimator
//! (Section 7.1).
//!
//! Wraps the `andi-graph` swap-walk sampler with the experimental
//! protocol the paper uses throughout Section 7: several independent
//! runs (5 by default) of several thousand samples each; the reported
//! estimate is the mean of the run means and the spread is their
//! standard deviation ("the differences between the O-estimates and
//! the average simulated estimates are well within one standard
//! deviation"). Runs are independent and execute through the
//! deterministic parallel layer ([`andi_graph::par`]): run `r` is
//! seeded with `seed + r` regardless of which worker executes it, so
//! results are identical at any thread count.

use andi_graph::par;
use andi_graph::sampler::{sample_cracks, SamplerConfig};
use andi_graph::{GroupedBigraph, Matching};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{Error, Result};

/// How each run's walk is seeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedMode {
    /// Every run starts from the identity matching (all items
    /// cracked) — the paper's protocol. Biased *high* when the walk
    /// is under-mixed.
    Identity,
    /// Every run starts from a decracked matching (cyclic rotation
    /// within each frequency group where consistent) — biased *low*
    /// when under-mixed.
    Decracked,
    /// Runs alternate between the two starts, so the spread of run
    /// means brackets any residual mixing bias. Recommended.
    Alternate,
}

/// Protocol configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimulationConfig {
    /// Per-run sampler schedule.
    pub sampler: SamplerConfig,
    /// Number of independent runs averaged (the paper uses 5).
    pub n_runs: usize,
    /// Base RNG seed; run `r` uses `seed + r`.
    pub seed: u64,
    /// Walk seeding strategy.
    pub seed_mode: SeedMode,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            sampler: SamplerConfig::default(),
            n_runs: 5,
            seed: 0x51_D2005,
            seed_mode: SeedMode::Alternate,
        }
    }
}

impl SimulationConfig {
    /// A fast protocol for tests and interactive use.
    pub fn quick() -> Self {
        SimulationConfig {
            sampler: SamplerConfig::quick(),
            n_runs: 3,
            seed: 0x51_D2005,
            seed_mode: SeedMode::Alternate,
        }
    }

    /// The paper's schedule with the swap budget scaled to the domain
    /// size: warm-up and thinning each cover the whole domain several
    /// times, which the fixed published numbers only did for small
    /// `n`.
    pub fn scaled(n: usize) -> Self {
        let n = n.max(1);
        SimulationConfig {
            sampler: SamplerConfig {
                warmup_swaps: (30 * n).max(100_000),
                swaps_between_samples: (2 * n).max(10_000),
                samples_per_seed: 250,
                n_samples: 5_000,
                use_locality: true,
            },
            ..SimulationConfig::default()
        }
    }
}

/// Aggregated simulation outcome.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    /// Mean crack count of each run.
    pub run_means: Vec<f64>,
    /// Within-run sample variance of each run.
    pub run_vars: Vec<f64>,
    /// Samples per run.
    pub run_len: usize,
    /// Size of the seed matching used (equals `n` when perfect).
    pub matched: usize,
}

impl SimulationResult {
    /// The average simulated estimate (mean of run means).
    pub fn mean(&self) -> f64 {
        if self.run_means.is_empty() {
            return 0.0;
        }
        self.run_means.iter().sum::<f64>() / self.run_means.len() as f64
    }

    /// Standard deviation across run means (n-1 denominator).
    pub fn std_dev(&self) -> f64 {
        let k = self.run_means.len();
        if k < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .run_means
            .iter()
            .map(|&m| (m - mean) * (m - mean))
            .sum::<f64>()
            / (k - 1) as f64;
        var.sqrt()
    }

    /// The Gelman–Rubin potential scale reduction factor `R̂` over
    /// the runs (treating each run as one chain): values close to 1
    /// indicate the antithetic starts converged to the same
    /// distribution; values well above 1 flag under-mixing (enlarge
    /// the sampler's swap budget).
    ///
    /// Returns `None` with fewer than two runs or degenerate
    /// variances.
    pub fn r_hat(&self) -> Option<f64> {
        let k = self.run_means.len();
        if k < 2 || self.run_len < 2 {
            return None;
        }
        let n = self.run_len as f64;
        let mean = self.mean();
        // Between-chain variance (per-sample scale).
        let b = n / (k as f64 - 1.0)
            * self
                .run_means
                .iter()
                .map(|&m| (m - mean) * (m - mean))
                .sum::<f64>();
        // Mean within-chain variance.
        let w = self.run_vars.iter().sum::<f64>() / k as f64;
        if w <= 0.0 {
            // All runs are frozen at constants; converged iff the
            // means agree.
            return Some(if b <= 1e-12 { 1.0 } else { f64::INFINITY });
        }
        let var_plus = (n - 1.0) / n * w + b / n;
        Some((var_plus / w).sqrt())
    }
}

/// Simulates the expected number of cracks for a grouped mapping
/// space.
///
/// The seed matching is the identity (every item cracked, the paper's
/// starting point) when it is consistent; otherwise the greedy
/// interval matching — which may be partial when the belief function
/// is non-compliant enough that some items are unmatchable.
///
/// # Errors
///
/// Returns [`Error::EmptyMappingSpace`] if no item can be matched at
/// all, or [`Error::Sampler`] on internal sampler failures.
/// # Examples
///
/// ```
/// use andi_core::{simulate_expected_cracks, BeliefFunction, SimulationConfig};
///
/// let supports = [5u64, 4, 5, 5, 3, 5];
/// let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 10.0).collect();
/// let belief = BeliefFunction::point_valued(&freqs).unwrap();
/// let graph = belief.build_graph(&supports, 10);
/// let sim = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
/// // Lemma 3 says exactly 3; the sampler agrees statistically.
/// assert!((sim.mean() - 3.0).abs() < 0.4);
/// assert!(sim.r_hat().unwrap() < 1.3, "chains converged");
/// ```
pub fn simulate_expected_cracks(
    graph: &GroupedBigraph,
    config: &SimulationConfig,
) -> Result<SimulationResult> {
    let n = graph.n();
    let identity_ok = (0..n).all(|x| graph.crack_edge_exists(x));
    let base_seed = if identity_ok {
        Matching::identity(n)
    } else {
        let m = graph.greedy_matching();
        if m.size() == 0 {
            return Err(Error::EmptyMappingSpace);
        }
        m
    };
    let decracked = decrack(graph, &base_seed);

    let runs = par::map_indexed(par::available_threads(), config.n_runs, |r| {
        let start = run_start(config.seed_mode, r, &base_seed, &decracked);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(r as u64));
        sample_cracks(graph, start, &config.sampler, &mut rng)
            .map(|samples| {
                let sd = samples.std_dev();
                (samples.mean(), sd * sd, samples.counts.len())
            })
            .map_err(|e| e.to_string())
    });

    let mut run_means = Vec::with_capacity(config.n_runs);
    let mut run_vars = Vec::with_capacity(config.n_runs);
    let mut run_len = 0usize;
    for run in runs {
        let (mean, var, len) = run.map_err(Error::Sampler)?;
        run_means.push(mean);
        run_vars.push(var);
        run_len = len;
    }

    Ok(SimulationResult {
        run_means,
        run_vars,
        run_len,
        matched: base_seed.size(),
    })
}

/// The walk start for run `r` under a seed mode.
fn run_start<'a>(
    mode: SeedMode,
    r: usize,
    base_seed: &'a Matching,
    decracked: &'a Matching,
) -> &'a Matching {
    match mode {
        SeedMode::Identity => base_seed,
        SeedMode::Decracked => decracked,
        SeedMode::Alternate => {
            if r.is_multiple_of(2) {
                base_seed
            } else {
                decracked
            }
        }
    }
}

/// Like [`simulate_expected_cracks`], but returns the pooled crack
/// samples of all runs, giving access to the full empirical
/// distribution — histograms, quantiles and tail probabilities
/// (`P(X >= t)`), which matter to an owner whose concern is the
/// *chance* of a bad release rather than the average.
///
/// # Errors
///
/// As [`simulate_expected_cracks`].
pub fn simulate_crack_samples(
    graph: &GroupedBigraph,
    config: &SimulationConfig,
) -> Result<andi_graph::CrackSamples> {
    let n = graph.n();
    let identity_ok = (0..n).all(|x| graph.crack_edge_exists(x));
    let base_seed = if identity_ok {
        Matching::identity(n)
    } else {
        let m = graph.greedy_matching();
        if m.size() == 0 {
            return Err(Error::EmptyMappingSpace);
        }
        m
    };
    let decracked = decrack(graph, &base_seed);

    let runs = par::map_indexed(par::available_threads(), config.n_runs, |r| {
        let start = run_start(config.seed_mode, r, &base_seed, &decracked);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(r as u64));
        sample_cracks(graph, start, &config.sampler, &mut rng)
            .map(|samples| samples.counts)
            .map_err(|e| e.to_string())
    });

    let mut counts = Vec::new();
    for run in runs {
        counts.extend(run.map_err(Error::Sampler)?);
    }
    Ok(andi_graph::CrackSamples { counts })
}

/// Rewires a consistent matching to reduce its crack count without
/// breaking consistency: within each frequency group, cyclically
/// rotates the partners of matched, currently-cracked members where
/// every rotated edge stays consistent. Used as an antithetic walk
/// start.
fn decrack(graph: &GroupedBigraph, seed: &Matching) -> Matching {
    let mut m = seed.clone();
    for g in 0..graph.n_groups() {
        // Group members that are matched to themselves (cracked).
        let cracked: Vec<usize> = graph
            .group_members(g)
            .iter()
            .copied()
            .filter(|&x| m.left_partner[x] == Some(x))
            .collect();
        if cracked.len() < 2 {
            continue;
        }
        // Rotate: left cracked[i] takes right cracked[i+1]. Each new
        // edge must be consistent; members failing the check keep
        // their crack.
        let k = cracked.len();
        let rotatable: Vec<usize> = cracked
            .iter()
            .enumerate()
            .filter(|&(i, &x)| graph.has_edge(x, cracked[(i + 1) % k]))
            .map(|(_, &x)| x)
            .collect();
        if rotatable.len() == k {
            for i in 0..k {
                let x = cracked[i];
                let y = cracked[(i + 1) % k];
                m.left_partner[x] = Some(y);
                m.right_partner[y] = Some(x);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::BeliefFunction;

    const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];

    #[test]
    fn point_valued_simulation_matches_lemma_3() {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let b = BeliefFunction::point_valued(&freqs).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        let sim = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
        assert_eq!(sim.matched, 6);
        let mean = sim.mean();
        assert!((mean - 3.0).abs() < 0.35, "sim mean {mean} vs exact 3");
    }

    #[test]
    fn ignorant_simulation_matches_lemma_1() {
        let b = BeliefFunction::ignorant(6);
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        let sim = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
        let mean = sim.mean();
        assert!((mean - 1.0).abs() < 0.35, "sim mean {mean} vs exact 1");
    }

    #[test]
    fn runs_are_reproducible_under_seed() {
        let b = BeliefFunction::ignorant(6);
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        let a = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
        let b2 = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
        assert_eq!(a.run_means, b2.run_means);
    }

    #[test]
    fn noncompliant_graph_uses_greedy_seed() {
        // Item 0's interval misses its true frequency but still
        // covers group .4, so a perfect matching exists without any
        // crack edge for 0.
        let intervals = vec![
            (0.35, 0.45), // item 0 (true .5): wrong
            (0.35, 0.55),
            (0.45, 0.55),
            (0.45, 0.55),
            (0.25, 0.45),
            (0.45, 0.55),
        ];
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        assert!(!graph.crack_edge_exists(0));
        let sim = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
        assert!(sim.matched >= 5, "matched {}", sim.matched);
        // Item 0 can never be cracked; total cracks bounded by 5.
        assert!(sim.mean() <= 5.0);
    }

    #[test]
    fn empty_space_is_reported() {
        // Nothing can map anywhere.
        let intervals = vec![(0.9, 1.0), (0.9, 1.0)];
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let graph = b.build_graph(&[1, 2], 10);
        let err = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap_err();
        assert_eq!(err, Error::EmptyMappingSpace);
    }

    #[test]
    fn pooled_samples_match_distribution() {
        // Point-valued BigMart: singletons always cracked, so every
        // sample has at least 2 cracks; the tail at 2 is 1.0.
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let b = BeliefFunction::point_valued(&freqs).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        let samples = simulate_crack_samples(&graph, &SimulationConfig::quick()).unwrap();
        assert_eq!(
            samples.counts.len(),
            SimulationConfig::quick().n_runs * SimulationConfig::quick().sampler.n_samples
        );
        assert_eq!(samples.tail_probability(2), 1.0);
        assert!(samples.tail_probability(7) == 0.0);
        assert!((samples.mean() - 3.0).abs() < 0.3);
        assert!(samples.quantile(0.0) >= 2);
    }

    #[test]
    fn std_dev_over_runs() {
        let r = SimulationResult {
            run_means: vec![1.0, 2.0, 3.0],
            run_vars: vec![1.0, 1.0, 1.0],
            run_len: 100,
            matched: 5,
        };
        assert!((r.mean() - 2.0).abs() < 1e-12);
        assert!((r.std_dev() - 1.0).abs() < 1e-12);
        let single = SimulationResult {
            run_means: vec![2.5],
            run_vars: vec![0.5],
            run_len: 100,
            matched: 5,
        };
        assert_eq!(single.std_dev(), 0.0);
        assert_eq!(single.r_hat(), None, "one chain has no R-hat");
    }

    #[test]
    fn r_hat_flags_divergent_chains() {
        // Chains that agree: R-hat near 1.
        let good = SimulationResult {
            run_means: vec![2.0, 2.01, 1.99, 2.0],
            run_vars: vec![1.0; 4],
            run_len: 1_000,
            matched: 5,
        };
        let r = good.r_hat().unwrap();
        assert!((r - 1.0).abs() < 0.1, "converged chains: R-hat = {r}");

        // Chains far apart relative to their width: R-hat >> 1.
        let bad = SimulationResult {
            run_means: vec![1.0, 10.0],
            run_vars: vec![0.5, 0.5],
            run_len: 1_000,
            matched: 5,
        };
        assert!(bad.r_hat().unwrap() > 5.0);

        // Frozen chains at the same constant are converged.
        let frozen = SimulationResult {
            run_means: vec![4.0, 4.0],
            run_vars: vec![0.0, 0.0],
            run_len: 1_000,
            matched: 5,
        };
        assert_eq!(frozen.r_hat(), Some(1.0));
    }

    #[test]
    fn simulation_reports_convergence_fields() {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let b = BeliefFunction::point_valued(&freqs).unwrap();
        let graph = b.build_graph(&BIGMART_SUPPORTS, 10);
        let sim = simulate_expected_cracks(&graph, &SimulationConfig::quick()).unwrap();
        assert_eq!(sim.run_vars.len(), sim.run_means.len());
        assert_eq!(sim.run_len, SimulationConfig::quick().sampler.n_samples);
        let r = sim.r_hat().expect("multiple runs");
        assert!(r < 1.5, "quick BigMart runs should converge, R-hat = {r}");
    }
}

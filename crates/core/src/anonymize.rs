//! Anonymization mappings (Section 2.1).
//!
//! An anonymization mapping is a bijection from the original domain
//! `I` to a disjoint anonymized domain `J`, applied uniformly across
//! every transaction. We represent `J` densely as well, so the
//! bijection is a permutation of `0..n` with typed endpoints: item
//! `x` becomes [`AnonItemId`] `mapping.anonymize(x)`.

use andi_data::{AnonItemId, Database, ItemId};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{Error, Result};

/// A bijection `I -> J` plus its inverse.
///
/// # Examples
///
/// ```
/// use andi_core::AnonymizationMapping;
/// use andi_data::{bigmart, ItemId};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let db = bigmart();
/// let mut rng = StdRng::seed_from_u64(7);
/// let mapping = AnonymizationMapping::random(db.n_items(), &mut rng);
/// let released = mapping.anonymize_database(&db).unwrap();
///
/// // Frequencies travel with the items...
/// let x = ItemId(2);
/// let xp = mapping.anonymize(x);
/// assert_eq!(db.supports()[x.index()], released.supports()[xp.index()]);
/// // ...and the inverse recovers the original exactly.
/// let back = mapping.deanonymize_database(&released).unwrap();
/// assert_eq!(back.supports(), db.supports());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnonymizationMapping {
    /// `forward[x]` is the anonymized id of original item `x`.
    forward: Vec<u32>,
    /// `backward[x']` is the original id of anonymized item `x'`.
    backward: Vec<u32>,
}

impl AnonymizationMapping {
    /// Builds a mapping from an explicit permutation
    /// (`forward[x] = x'`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Data`] if `forward` is not a permutation of
    /// `0..n`.
    pub fn from_permutation(forward: Vec<u32>) -> Result<Self> {
        let n = forward.len();
        let mut backward = vec![u32::MAX; n];
        for (x, &xp) in forward.iter().enumerate() {
            let xp = xp as usize;
            if xp >= n || backward[xp] != u32::MAX {
                return Err(Error::Data(
                    "anonymization mapping is not a permutation".into(),
                ));
            }
            backward[xp] = x as u32;
        }
        Ok(AnonymizationMapping { forward, backward })
    }

    /// Draws a uniformly random anonymization of an `n`-item domain.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut forward: Vec<u32> = (0..n as u32).collect();
        forward.shuffle(rng);
        // andi::allow(lib-unwrap) — shuffling 0..n is a permutation by construction
        Self::from_permutation(forward).expect("a shuffle is a permutation")
    }

    /// The identity mapping (useful for aligned analyses and tests).
    pub fn identity(n: usize) -> Self {
        AnonymizationMapping {
            forward: (0..n as u32).collect(),
            backward: (0..n as u32).collect(),
        }
    }

    /// Domain size.
    pub fn n_items(&self) -> usize {
        self.forward.len()
    }

    /// The anonymized id of original item `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn anonymize(&self, x: ItemId) -> AnonItemId {
        AnonItemId(self.forward[x.index()])
    }

    /// The original id behind anonymized item `xp` (the secret the
    /// hacker is after).
    ///
    /// # Panics
    ///
    /// Panics if `xp` is out of range.
    pub fn deanonymize(&self, xp: AnonItemId) -> ItemId {
        ItemId(self.backward[xp.index()])
    }

    /// The raw forward permutation.
    pub fn forward(&self) -> &[u32] {
        &self.forward
    }

    /// The raw backward permutation.
    pub fn backward(&self) -> &[u32] {
        &self.backward
    }

    /// Applies the mapping to every transaction of `db`, producing
    /// the anonymized database the owner would release.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DomainMismatch`] if sizes disagree.
    pub fn anonymize_database(&self, db: &Database) -> Result<Database> {
        if db.n_items() != self.n_items() {
            return Err(Error::DomainMismatch {
                expected: self.n_items(),
                got: db.n_items(),
            });
        }
        db.relabel(&self.forward).map_err(Error::Data)
    }

    /// Inverts an anonymized database back to original ids.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DomainMismatch`] if sizes disagree.
    pub fn deanonymize_database(&self, db: &Database) -> Result<Database> {
        if db.n_items() != self.n_items() {
            return Err(Error::DomainMismatch {
                expected: self.n_items(),
                got: db.n_items(),
            });
        }
        db.relabel(&self.backward).map_err(Error::Data)
    }

    /// How many items a hacker's crack mapping identifies correctly:
    /// `crack_map[x'] = claimed original id`, compared against the
    /// true inverse. This is the paper's definition of "cracks".
    ///
    /// # Panics
    ///
    /// Panics if `crack_map` has the wrong length.
    pub fn count_cracks(&self, crack_map: &[u32]) -> usize {
        assert_eq!(crack_map.len(), self.n_items(), "crack map size mismatch");
        crack_map
            .iter()
            .zip(self.backward.iter())
            .filter(|(claimed, truth)| claimed == truth)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::bigmart;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_roundtrip() {
        let m = AnonymizationMapping::identity(4);
        assert_eq!(m.anonymize(ItemId(2)), AnonItemId(2));
        assert_eq!(m.deanonymize(AnonItemId(3)), ItemId(3));
        assert_eq!(m.n_items(), 4);
    }

    #[test]
    fn explicit_permutation() {
        let m = AnonymizationMapping::from_permutation(vec![2, 0, 1]).unwrap();
        assert_eq!(m.anonymize(ItemId(0)), AnonItemId(2));
        assert_eq!(m.deanonymize(AnonItemId(2)), ItemId(0));
        assert_eq!(m.deanonymize(AnonItemId(0)), ItemId(1));
    }

    #[test]
    fn rejects_non_permutations() {
        assert!(AnonymizationMapping::from_permutation(vec![0, 0]).is_err());
        assert!(AnonymizationMapping::from_permutation(vec![0, 5]).is_err());
    }

    #[test]
    fn random_is_a_bijection() {
        let mut rng = StdRng::seed_from_u64(71);
        let m = AnonymizationMapping::random(100, &mut rng);
        for x in 0..100u32 {
            assert_eq!(m.deanonymize(m.anonymize(ItemId(x))), ItemId(x));
        }
    }

    #[test]
    fn database_anonymization_preserves_frequency_profile() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(72);
        let m = AnonymizationMapping::random(db.n_items(), &mut rng);
        let anon = m.anonymize_database(&db).unwrap();
        // Frequencies travel with the items: support of x' equals
        // support of x.
        let s = db.supports();
        let sa = anon.supports();
        for (x, &sx) in s.iter().enumerate() {
            let xp = m.anonymize(ItemId(x as u32));
            assert_eq!(sx, sa[xp.index()], "item {x}");
        }
        // And the multiset of supports is untouched (anonymization
        // does not perturb data characteristics).
        let mut a = s.clone();
        let mut b = sa.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn deanonymize_database_is_inverse() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(73);
        let m = AnonymizationMapping::random(db.n_items(), &mut rng);
        let anon = m.anonymize_database(&db).unwrap();
        let back = m.deanonymize_database(&anon).unwrap();
        assert_eq!(back.supports(), db.supports());
        for (a, b) in back.transactions().iter().zip(db.transactions()) {
            assert_eq!(a.items(), b.items());
        }
    }

    #[test]
    fn size_mismatch_is_reported() {
        let db = bigmart(); // 6 items
        let m = AnonymizationMapping::identity(4);
        assert!(matches!(
            m.anonymize_database(&db),
            Err(Error::DomainMismatch {
                expected: 4,
                got: 6
            })
        ));
    }

    #[test]
    fn count_cracks_compares_against_truth() {
        let m = AnonymizationMapping::from_permutation(vec![1, 2, 0]).unwrap();
        // backward = [2, 0, 1]: x'=0 is item 2, x'=1 is item 0, ...
        assert_eq!(m.count_cracks(&[2, 0, 1]), 3);
        assert_eq!(m.count_cracks(&[2, 1, 0]), 1);
        assert_eq!(m.count_cracks(&[0, 1, 2]), 0);
    }
}

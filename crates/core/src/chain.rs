//! Chain interval belief functions (Section 4.2, Lemmas 5–6) and
//! their O-estimates (Section 5.2).
//!
//! A compliant interval belief function *forms a chain* when every
//! belief group (items with identical candidate sets) maps to either
//! exactly one frequency group (*exclusive*, sizes `e_1..e_k`) or two
//! successive ones (*shared*, sizes `s_1..s_{k-1}`). For chains the
//! expected number of cracks has a closed form (Lemma 6); comparing
//! it against the chain O-estimate reproduces the paper's Δ table.
//!
//! Derivation of the shared split: let `u_i` (`v_i`) be the items of
//! shared group `S_i` whose anonymized counterpart lives in frequency
//! group `i` (`i+1`). Then `u_i = n_i - e_i - v_{i-1}` and
//! `v_i = s_i - u_i`, which telescopes to the paper's
//! `u_i = Σ_{j<=i} (n_j - e_j - s_{j-1})` and
//! `v_i = Σ_{j<=i} (s_j + e_j - n_j)`.

use andi_graph::GroupedBigraph;

use crate::belief::BeliefFunction;
use crate::error::{Error, Result};

/// A chain of length `k`: frequency-group sizes `n`, exclusive belief
/// group sizes `e` (one per frequency group) and shared belief group
/// sizes `s` (one per adjacent pair).
///
/// # Examples
///
/// The Section 4.2 worked example — expected cracks 74/45, chain
/// O-estimate 197/120:
///
/// ```
/// use andi_core::ChainSpec;
///
/// let chain = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap();
/// assert!((chain.expected_cracks() - 74.0 / 45.0).abs() < 1e-12);
/// assert!((chain.oestimate() - 197.0 / 120.0).abs() < 1e-12);
/// assert!(chain.delta() > 0.0, "the O-estimate underestimates");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainSpec {
    n: Vec<usize>,
    e: Vec<usize>,
    s: Vec<usize>,
    /// `u[i]`: shared-group-`i` items truly in frequency group `i`.
    u: Vec<usize>,
    /// `v[i]`: shared-group-`i` items truly in frequency group `i+1`.
    v: Vec<usize>,
}

impl ChainSpec {
    /// Builds and validates a chain.
    ///
    /// # Errors
    ///
    /// Requires `|e| = |n| = k >= 1`, `|s| = k - 1`, item
    /// conservation `Σn = Σe + Σs`, and a consistent non-negative
    /// shared split (`0 <= u_i <= s_i` at every link, with the last
    /// link closing exactly).
    pub fn new(n: Vec<usize>, e: Vec<usize>, s: Vec<usize>) -> Result<Self> {
        let k = n.len();
        if k == 0 {
            return Err(Error::InvalidParameter(
                "chain needs at least one group".into(),
            ));
        }
        if e.len() != k || s.len() != k - 1 {
            return Err(Error::InvalidParameter(format!(
                "chain of length {k} needs {k} exclusive and {} shared sizes",
                k - 1
            )));
        }
        if n.contains(&0) {
            return Err(Error::InvalidParameter(
                "frequency groups must be non-empty".into(),
            ));
        }
        let total_n: usize = n.iter().sum();
        let total_es: usize = e.iter().sum::<usize>() + s.iter().sum::<usize>();
        if total_n != total_es {
            return Err(Error::InvalidParameter(format!(
                "item conservation violated: Σn = {total_n} but Σe + Σs = {total_es}"
            )));
        }
        // Propagate the split u_i = n_i - e_i - v_{i-1}; v_i = s_i - u_i.
        let mut u = vec![0usize; k.saturating_sub(1)];
        let mut v = vec![0usize; k.saturating_sub(1)];
        let mut v_prev = 0usize;
        for i in 0..k {
            let inflow = e[i] + v_prev;
            if inflow > n[i] {
                return Err(Error::InvalidParameter(format!(
                    "group {i}: exclusive + shared inflow {inflow} exceeds size {}",
                    n[i]
                )));
            }
            let u_i = n[i] - inflow;
            if i == k - 1 {
                if u_i != 0 {
                    return Err(Error::InvalidParameter(format!(
                        "group {i}: {u_i} items unaccounted for at the chain end"
                    )));
                }
                break;
            }
            if u_i > s[i] {
                return Err(Error::InvalidParameter(format!(
                    "shared group {i}: needs {u_i} items but has {}",
                    s[i]
                )));
            }
            u[i] = u_i;
            v[i] = s[i] - u_i;
            v_prev = v[i];
        }
        Ok(ChainSpec { n, e, s, u, v })
    }

    /// Chain length `k` (number of frequency groups).
    pub fn k(&self) -> usize {
        self.n.len()
    }

    /// Total domain size.
    pub fn n_items(&self) -> usize {
        self.n.iter().sum()
    }

    /// Frequency-group sizes.
    pub fn group_sizes(&self) -> &[usize] {
        &self.n
    }

    /// Exclusive belief-group sizes.
    pub fn exclusive_sizes(&self) -> &[usize] {
        &self.e
    }

    /// Shared belief-group sizes.
    pub fn shared_sizes(&self) -> &[usize] {
        &self.s
    }

    /// The shared split `(u, v)`: `u[i]` items of `S_i` truly belong
    /// to group `i`, `v[i]` to group `i+1`.
    pub fn shared_split(&self) -> (&[usize], &[usize]) {
        (&self.u, &self.v)
    }

    /// Lemma 6 (Lemma 5 when `k = 2`): the exact expected number of
    /// cracks.
    ///
    /// ```text
    /// E[X] = Σ_j e_j/n_j
    ///      + Σ_i u_i²/(s_i·n_i) + Σ_i v_i²/(s_i·n_{i+1})
    /// ```
    pub fn expected_cracks(&self) -> f64 {
        let k = self.k();
        let mut total = 0.0;
        for j in 0..k {
            total += self.e[j] as f64 / self.n[j] as f64;
        }
        for i in 0..k - 1 {
            if self.s[i] == 0 {
                continue;
            }
            let s_i = self.s[i] as f64;
            let u = self.u[i] as f64;
            let v = self.v[i] as f64;
            total += u * u / (s_i * self.n[i] as f64);
            total += v * v / (s_i * self.n[i + 1] as f64);
        }
        total
    }

    /// The chain O-estimate of Section 5.2:
    /// `OE = Σ_j e_j/n_j + Σ_j s_j/(n_j + n_{j+1})`.
    pub fn oestimate(&self) -> f64 {
        let k = self.k();
        let mut total = 0.0;
        for j in 0..k {
            total += self.e[j] as f64 / self.n[j] as f64;
        }
        for j in 0..k - 1 {
            if self.s[j] > 0 {
                total += self.s[j] as f64 / (self.n[j] + self.n[j + 1]) as f64;
            }
        }
        total
    }

    /// The signed difference `Δ = E[X] - OE` the paper tabulates.
    pub fn delta(&self) -> f64 {
        self.expected_cracks() - self.oestimate()
    }

    /// `Δ` relative to the exact value, in percent (the paper's
    /// "Percentage error" column).
    pub fn percentage_error(&self) -> f64 {
        100.0 * self.delta() / self.expected_cracks()
    }

    /// Realizes the chain as a concrete support profile plus a
    /// compliant interval belief function over `n_transactions`
    /// transactions, enabling cross-validation against the general
    /// O-estimate, the sampler, and (for small chains) the exact
    /// permanent computation.
    ///
    /// Frequency group `i` receives support `(i + 1) · step` where
    /// `step = m / (k + 1)`. Exclusive items get point intervals;
    /// shared items get the interval spanning their two groups.
    /// Item order: for each group `i`, first the `e_i` exclusive
    /// items, then the `u_i` items of `S_i` (true group `i`), then
    /// the `v_{i-1}` items of `S_{i-1}` (true group `i`).
    ///
    /// # Errors
    ///
    /// `n_transactions` must be at least `(k + 1)` so supports stay
    /// distinct.
    pub fn realize(&self, n_transactions: u64) -> Result<(Vec<u64>, BeliefFunction)> {
        let k = self.k() as u64;
        if n_transactions < k + 1 {
            return Err(Error::InvalidParameter(format!(
                "need at least {} transactions for {k} distinct groups",
                k + 1
            )));
        }
        let step = n_transactions / (k + 1);
        let support_of = |g: usize| (g as u64 + 1) * step;
        let freq_of = |g: usize| support_of(g) as f64 / n_transactions as f64;

        let mut supports = Vec::with_capacity(self.n_items());
        let mut intervals = Vec::with_capacity(self.n_items());
        for g in 0..self.k() {
            let f = freq_of(g);
            for _ in 0..self.e[g] {
                supports.push(support_of(g));
                intervals.push((f, f));
            }
            // Shared group S_g items that truly live in group g.
            if g < self.k() - 1 {
                for _ in 0..self.u[g] {
                    supports.push(support_of(g));
                    intervals.push((f, freq_of(g + 1)));
                }
            }
            // Shared group S_{g-1} items that truly live in group g.
            if g > 0 {
                for _ in 0..self.v[g - 1] {
                    supports.push(support_of(g));
                    intervals.push((freq_of(g - 1), f));
                }
            }
        }
        let belief = BeliefFunction::from_intervals(intervals)?;
        Ok((supports, belief))
    }

    /// Attempts to recognize a chain in the grouped mapping-space
    /// graph of a *compliant* belief function: every item's candidate
    /// range must span one frequency group or two successive ones.
    ///
    /// Returns `None` if the structure is not a chain (some range is
    /// wider, empty, or the belief is non-compliant on some item).
    pub fn detect(graph: &GroupedBigraph) -> Option<ChainSpec> {
        let k = graph.n_groups();
        let mut e = vec![0usize; k];
        let mut s = vec![0usize; k.saturating_sub(1)];
        for x in 0..graph.n() {
            let (lo, hi) = graph.right_range_of(x)?;
            let own = graph.left_group_of(x);
            if own < lo || own > hi {
                return None; // non-compliant
            }
            match hi - lo {
                0 => e[lo] += 1,
                1 => s[lo] += 1,
                _ => return None,
            }
        }
        let n: Vec<usize> = graph.group_sizes().to_vec();
        ChainSpec::new(n, e, s).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Section 4.2 example: k = 2, n = (5, 3), e = (3, 2),
    /// s = (3).
    fn paper_example() -> ChainSpec {
        ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).unwrap()
    }

    #[test]
    fn lemma_5_gives_74_over_45() {
        let c = paper_example();
        let e = c.expected_cracks();
        assert!(
            (e - 74.0 / 45.0).abs() < 1e-12,
            "expected 74/45 = 1.6444..., got {e}"
        );
    }

    #[test]
    fn chain_oestimate_gives_197_over_120() {
        let c = paper_example();
        let oe = c.oestimate();
        assert!(
            (oe - 197.0 / 120.0).abs() < 1e-12,
            "expected 197/120 = 1.64166..., got {oe}"
        );
    }

    #[test]
    fn shared_split_of_paper_example() {
        let c = paper_example();
        let (u, v) = c.shared_split();
        assert_eq!(u, &[2]);
        assert_eq!(v, &[1]);
    }

    #[test]
    fn delta_table_row_1() {
        // n = (20, 30, 20), e = (10, 10, 10), s = (20, 20) -> 1.54 %.
        let c = ChainSpec::new(vec![20, 30, 20], vec![10, 10, 10], vec![20, 20]).unwrap();
        let pct = c.percentage_error();
        assert!((pct - 1.54).abs() < 0.01, "row 1: got {pct:.3}%");
    }

    #[test]
    fn validation_rejects_bad_chains() {
        // Wrong arity.
        assert!(ChainSpec::new(vec![5, 3], vec![3], vec![3]).is_err());
        assert!(ChainSpec::new(vec![5, 3], vec![3, 2], vec![]).is_err());
        // Conservation violated.
        assert!(ChainSpec::new(vec![5, 3], vec![3, 3], vec![3]).is_err());
        // Inflow exceeds a group.
        assert!(ChainSpec::new(vec![2, 6], vec![3, 2], vec![3]).is_err());
        // Empty group.
        assert!(ChainSpec::new(vec![0, 8], vec![3, 2], vec![3]).is_err());
        // Empty chain.
        assert!(ChainSpec::new(vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn single_group_chain_reduces_to_lemma_1() {
        let c = ChainSpec::new(vec![7], vec![7], vec![]).unwrap();
        assert_eq!(c.expected_cracks(), 1.0);
        assert_eq!(c.oestimate(), 1.0);
        assert_eq!(c.delta(), 0.0);
    }

    #[test]
    fn all_exclusive_chain_matches_lemma_3_per_group() {
        // No shared groups: E = Σ e_i/n_i = k since e_i = n_i.
        let c = ChainSpec::new(vec![4, 6], vec![4, 6], vec![0]).unwrap();
        assert_eq!(c.expected_cracks(), 2.0);
        assert_eq!(c.oestimate(), 2.0);
    }

    #[test]
    fn realize_produces_matching_general_structures() {
        let c = paper_example();
        let (supports, belief) = c.realize(90).unwrap();
        assert_eq!(supports.len(), 8);
        let graph = belief.build_graph(&supports, 90);
        assert_eq!(graph.n_groups(), 2);
        assert_eq!(graph.group_sizes(), &[5, 3]);
        // The belief is compliant everywhere.
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 90.0).collect();
        assert!((belief.alpha(&freqs) - 1.0).abs() < 1e-12);
        // Detection round-trips.
        let detected = ChainSpec::detect(&graph).expect("realized chain is a chain");
        assert_eq!(detected, c);
    }

    #[test]
    fn realize_rejects_tiny_m() {
        let c = paper_example();
        assert!(c.realize(2).is_err());
    }

    #[test]
    fn detect_rejects_non_chains() {
        // An item spanning three groups breaks chain-ness.
        let supports = vec![2u64, 4, 6, 2, 4, 6];
        let intervals = vec![
            (0.0, 1.0), // spans all three groups
            (0.4, 0.4),
            (0.6, 0.6),
            (0.2, 0.2),
            (0.4, 0.4),
            (0.6, 0.6),
        ];
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        assert_eq!(g.n_groups(), 3);
        assert!(ChainSpec::detect(&g).is_none());
    }

    #[test]
    fn detect_rejects_noncompliant() {
        let supports = vec![2u64, 8];
        // Item 0 believes [0.7, 0.9], but its true frequency is 0.2.
        let intervals = vec![(0.7, 0.9), (0.8, 0.8)];
        let g = GroupedBigraph::new(&supports, 10, &intervals);
        assert!(ChainSpec::detect(&g).is_none());
    }

    #[test]
    fn oe_always_at_most_exact_on_valid_chains() {
        // Monotone sanity across a small grid (the paper's Δ is
        // always positive in its table).
        for e1 in [5usize, 10, 15] {
            for s1 in [10usize, 20] {
                let n1 = 20;
                let n2 = 30;
                // e2 determined by conservation within the 2-chain.
                let total = n1 + n2;
                if e1 + s1 > total {
                    continue;
                }
                let e2 = total - e1 - s1;
                if e2 > n2 || n1 < e1 || (n1 - e1) > s1 {
                    continue;
                }
                if let Ok(c) = ChainSpec::new(vec![n1, n2], vec![e1, e2], vec![s1]) {
                    assert!(
                        c.delta() >= -1e-9,
                        "e1={e1}, s1={s1}: Δ = {} < 0",
                        c.delta()
                    );
                }
            }
        }
    }
}

//! Perturbation baselines: buying camouflage by distorting data.
//!
//! The paper positions plain anonymization against perturbation
//! approaches (Verykios et al.'s association-rule hiding, randomized
//! transactions, k-anonymization) whose common cost is that "the
//! results of data mining the perturbed data" differ from the truth.
//! This module implements the simplest member of that family so the
//! trade-off can be *measured* inside one framework:
//!
//! **Support rounding** coarsens every item's support to a bucket
//! (by randomly deleting or injecting occurrences), forcing items
//! into larger frequency groups. Lemma 3 then caps the point-valued
//! hacker at the (smaller) number of buckets, and interval O-estimates
//! drop accordingly — at the price of distorted supports and mining
//! results. [`utility_loss`] quantifies that price against the
//! original.

use andi_data::{Database, ItemId, Transaction};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::{Error, Result};

/// Outcome of a sanitization pass.
#[derive(Clone, Debug)]
pub struct Sanitized {
    /// The perturbed database (same domain, same transaction count).
    pub database: Database,
    /// Item occurrences deleted.
    pub deletions: u64,
    /// Item occurrences injected.
    pub insertions: u64,
}

impl Sanitized {
    /// Total occurrence edits.
    pub fn edits(&self) -> u64 {
        self.deletions + self.insertions
    }
}

/// Rounds every item's support to the nearest multiple of
/// `bucket` (at least one bucket — supports never round to zero, and
/// never exceed the transaction count).
///
/// Deletions remove the item from randomly chosen containing
/// transactions (never emptying one); insertions add it to randomly
/// chosen non-containing transactions.
///
/// # Errors
///
/// `bucket` must be at least 1 (1 is the identity).
/// # Examples
///
/// ```
/// use andi_core::round_supports;
/// use andi_data::{bigmart, FrequencyGroups};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let db = bigmart();
/// let mut rng = StdRng::seed_from_u64(1);
/// // Bucket 5 merges every support onto the 5-multiple grid:
/// let sanitized = round_supports(&db, 5, &mut rng).unwrap();
/// let groups = FrequencyGroups::of_database(&sanitized.database);
/// assert_eq!(groups.n_groups(), 1); // total camouflage, paid in edits
/// assert!(sanitized.edits() > 0);
/// ```
pub fn round_supports<R: Rng + ?Sized>(
    db: &Database,
    bucket: u64,
    rng: &mut R,
) -> Result<Sanitized> {
    if bucket == 0 {
        return Err(Error::InvalidParameter("bucket must be at least 1".into()));
    }
    let m = db.n_transactions() as u64;
    let supports = db.supports();

    // Target supports: nearest bucket multiple, clamped to
    // [min(bucket, m), m] — a bucket coarser than the whole database
    // degenerates to "every surviving item looks full".
    let floor = bucket.min(m);
    let targets: Vec<u64> = supports
        .iter()
        .map(|&s| {
            if s == 0 {
                return 0;
            }
            let rounded = ((s as f64 / bucket as f64).round() as u64) * bucket;
            rounded.clamp(floor, m)
        })
        .collect();

    // Mutable transaction contents.
    let mut contents: Vec<Vec<ItemId>> = db
        .transactions()
        .iter()
        .map(|t| t.items().to_vec())
        .collect();

    let mut deletions = 0u64;
    let mut insertions = 0u64;
    for x in 0..db.n_items() {
        let item = ItemId(x as u32);
        let current = supports[x];
        let target = targets[x];
        if target < current {
            // Delete from random containing transactions that keep
            // at least one item.
            let mut holders: Vec<usize> = (0..contents.len())
                .filter(|&t| contents[t].len() > 1 && contents[t].contains(&item))
                .collect();
            holders.shuffle(rng);
            let mut need = current - target;
            for t in holders {
                if need == 0 {
                    break;
                }
                contents[t].retain(|&y| y != item);
                need -= 1;
                deletions += 1;
            }
        } else if target > current {
            let mut absent: Vec<usize> = (0..contents.len())
                .filter(|&t| !contents[t].contains(&item))
                .collect();
            absent.shuffle(rng);
            let mut need = target - current;
            for t in absent {
                if need == 0 {
                    break;
                }
                contents[t].push(item);
                need -= 1;
                insertions += 1;
            }
        }
    }

    let transactions: Vec<Transaction> = contents
        .into_iter()
        .map(|mut items| {
            items.sort_unstable();
            Transaction::from_sorted_unique(items)
        })
        .collect();
    let database = Database::new(db.n_items(), transactions).map_err(Error::Data)?;
    Ok(Sanitized {
        database,
        deletions,
        insertions,
    })
}

/// Utility-loss metrics of a sanitized database against the
/// original.
#[derive(Clone, Copy, Debug)]
pub struct UtilityLoss {
    /// Mean absolute per-item frequency error.
    pub mean_frequency_error: f64,
    /// Maximum absolute per-item frequency error.
    pub max_frequency_error: f64,
    /// Fraction of item occurrences edited.
    pub edit_fraction: f64,
}

/// Measures how far the sanitized frequencies drifted.
///
/// # Errors
///
/// Domains must match.
pub fn utility_loss(original: &Database, sanitized: &Sanitized) -> Result<UtilityLoss> {
    if original.n_items() != sanitized.database.n_items() {
        return Err(Error::DomainMismatch {
            expected: original.n_items(),
            got: sanitized.database.n_items(),
        });
    }
    let m = original.n_transactions() as f64;
    let a = original.supports();
    let b = sanitized.database.supports();
    let mut total = 0.0f64;
    let mut max = 0.0f64;
    for (x, (&sa, &sb)) in a.iter().zip(b.iter()).enumerate() {
        let err = ((sa as f64 - sb as f64) / m).abs();
        total += err;
        if err > max {
            max = err;
        }
        let _ = x;
    }
    Ok(UtilityLoss {
        mean_frequency_error: total / a.len() as f64,
        max_frequency_error: max,
        edit_fraction: sanitized.edits() as f64 / original.total_occurrences() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::{bigmart, FrequencyGroups};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_bucket_changes_nothing() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(1);
        let s = round_supports(&db, 1, &mut rng).unwrap();
        assert_eq!(s.edits(), 0);
        assert_eq!(s.database.supports(), db.supports());
    }

    #[test]
    fn rounding_merges_frequency_groups() {
        // BigMart supports 5,4,5,5,3,5; bucket 5 rounds 4 -> 5 and
        // 3 -> 5: one group of six.
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(2);
        let s = round_supports(&db, 5, &mut rng).unwrap();
        assert_eq!(s.database.supports(), vec![5, 5, 5, 5, 5, 5]);
        let fg = FrequencyGroups::of_database(&s.database);
        assert_eq!(fg.n_groups(), 1);
        // Risk collapse: Lemma 3 estimate falls from 3 to 1.
        assert!(s.insertions > 0);
    }

    #[test]
    fn transaction_count_is_preserved_and_nonempty() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(3);
        let s = round_supports(&db, 3, &mut rng).unwrap();
        assert_eq!(s.database.n_transactions(), db.n_transactions());
        assert!(s.database.transactions().iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn supports_are_multiples_of_bucket_when_feasible() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(4);
        let s = round_supports(&db, 2, &mut rng).unwrap();
        for (x, &sup) in s.database.supports().iter().enumerate() {
            assert!(
                sup % 2 == 0 || sup == db.n_transactions() as u64,
                "item {x}: support {sup} not on a bucket boundary"
            );
        }
    }

    #[test]
    fn utility_loss_tracks_edits() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(5);
        let clean = round_supports(&db, 1, &mut rng).unwrap();
        let loss0 = utility_loss(&db, &clean).unwrap();
        assert_eq!(loss0.mean_frequency_error, 0.0);
        assert_eq!(loss0.edit_fraction, 0.0);

        let rough = round_supports(&db, 5, &mut rng).unwrap();
        let loss = utility_loss(&db, &rough).unwrap();
        assert!(loss.mean_frequency_error > 0.0);
        assert!(loss.max_frequency_error >= loss.mean_frequency_error);
        assert!(loss.edit_fraction > 0.0);
    }

    #[test]
    fn risk_utility_tradeoff() {
        // Coarser buckets -> fewer groups (less point-valued risk);
        // any non-trivial bucket costs utility. (Frequency error is
        // only statistically monotone in the bucket, so we assert
        // the guaranteed directions.)
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(6);
        let fine = round_supports(&db, 2, &mut rng).unwrap();
        let coarse = round_supports(&db, 5, &mut rng).unwrap();
        let g_fine = FrequencyGroups::of_database(&fine.database).n_groups();
        let g_coarse = FrequencyGroups::of_database(&coarse.database).n_groups();
        assert!(g_coarse <= g_fine);
        let l_fine = utility_loss(&db, &fine).unwrap();
        let l_coarse = utility_loss(&db, &coarse).unwrap();
        assert!(l_fine.mean_frequency_error > 0.0);
        assert!(l_coarse.mean_frequency_error > 0.0);
    }

    #[test]
    fn zero_bucket_is_rejected() {
        let db = bigmart();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(round_supports(&db, 0, &mut rng).is_err());
    }
}

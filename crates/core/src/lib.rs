//! # andi-core — disclosure-risk analysis of anonymized data
//!
//! Reproduction of *"To Do or Not To Do: The Dilemma of Disclosing
//! Anonymized Data"* (Lakshmanan, Ng & Ramesh, SIGMOD 2005).
//!
//! A data owner anonymizes a transaction database before releasing it
//! for mining. A hacker holding partial knowledge — a
//! [`BeliefFunction`] mapping each item to a believed frequency
//! interval — restricts the possible de-anonymizations to *consistent
//! crack mappings* and picks one at random. This crate computes the
//! resulting disclosure risk, the expected number of **cracks**:
//!
//! * exact closed forms for the ignorant and compliant point-valued
//!   extremes ([`formulas`], Lemmas 1–4) and for chain interval
//!   belief functions ([`chain`], Lemmas 5–6);
//! * the **O-estimate** heuristic for arbitrary interval belief
//!   functions ([`mod@oestimate`], Figure 5 + the Figure 7 propagation);
//! * the MCMC **simulation** protocol used as experimental ground
//!   truth ([`simulate`], Section 7.1);
//! * the owner-facing **Assess-Risk recipe** with α-compliancy
//!   binary search ([`recipe`], Figure 8) and
//!   **Similarity-by-Sampling** ([`similarity`], Figure 13);
//! * the Section 8 generalizations: relational/attribute knowledge
//!   ([`relational`]) and itemset-level identification
//!   ([`itemsets`]).
//!
//! ## Quick taste
//!
//! ```
//! use andi_core::{assess_risk, RecipeConfig};
//! use andi_data::bigmart;
//!
//! let db = bigmart(); // the paper's Figure 1 example
//! let assessment = assess_risk(
//!     &db.supports(),
//!     db.n_transactions() as u64,
//!     &RecipeConfig { tolerance: 0.6, ..RecipeConfig::default() },
//! ).unwrap();
//! assert!(assessment.discloses());
//! ```

#![forbid(unsafe_code)]

/// The deterministic work-stealing execution layer (re-exported from
/// [`andi_graph::par`]): [`parallel::map_indexed`] with its
/// bit-identity contract, [`parallel::chunk_ranges`], the
/// `ANDI_THREADS` resolution in [`parallel::available_threads`], and
/// the budget layer ([`parallel::Budget`], [`parallel::CancelToken`],
/// [`parallel::try_map_indexed`]) behind [`assess_risk_budgeted`].
/// The recipe, permanent and sampler hot paths all fan out through
/// it.
pub mod parallel {
    pub use andi_graph::par::*;
}

pub mod advisor;
pub mod anonymize;
pub mod belief;
pub mod chain;
pub mod error;
pub mod estimate;
pub mod formulas;
pub mod incremental;
pub mod interest;
pub mod itemsets;
pub mod oestimate;
pub mod powerset;
pub mod recipe;
pub mod relational;
pub mod report;
pub mod sanitize;
pub mod similarity;
pub mod simulate;

pub use advisor::{suppression_plan, SuppressionPlan};
pub use anonymize::AnonymizationMapping;
pub use belief::BeliefFunction;
pub use chain::ChainSpec;
pub use error::{AndiError, Error, Result};
pub use estimate::{
    best_expected_cracks, cached_profile, graph_fingerprint, invalidate_profile, CrackEstimate,
    EstimateMethod,
};
pub use incremental::{
    apply_edits_to_summary, summary_fingerprint, DeltaAssessment, DeltaBatch, DeltaProvenance,
    Edit, IncrementalEngine,
};

pub use formulas::{
    ignorant_expected_cracks, ignorant_expected_cracks_of_subset, point_valued_expected_cracks,
    point_valued_expected_cracks_of_subset,
};
pub use interest::{
    assess_interest_risk, weighted_expected_damage, InterestConfig, InterestRisk, InterestSpec,
};
pub use itemsets::{identify_sets, IdentifiedBlock, SetIdentification};
pub use oestimate::{oestimate, oestimate_for, oestimate_propagated, ItemStatus, OutdegreeProfile};
pub use powerset::{assess_powerset_risk, ItemsetBelief, PowersetBelief, PowersetRisk};
pub use recipe::{
    assess_risk, assess_risk_budgeted, assess_risk_budgeted_with_threads, compliancy_curve,
    compliancy_curve_decoy, compliancy_curve_decoy_with_threads, compliancy_curve_probs,
    compliancy_curve_probs_with_threads, compliant_count, ladder_crack_probabilities,
    BudgetedAssessment, CompliancyPoint, RecipeConfig, RiskAssessment, RiskDecision,
};
pub use relational::{
    assess_relational_risk, AnonymizedRelation, AttrValue, Constraint, Knowledge, RelationalRisk,
};
pub use report::{Provenance, Rung};
pub use sanitize::{round_supports, utility_loss, Sanitized, UtilityLoss};
pub use similarity::{
    sample_release_curve, sampled_belief, similarity_by_sampling, GapPolicy, SampleReleasePoint,
    SampledBelief, SimilarityConfig, SimilarityPoint,
};
pub use simulate::{
    simulate_crack_samples, simulate_expected_cracks, SeedMode, SimulationConfig, SimulationResult,
};

//! Belief functions (Section 2.2).
//!
//! A belief function `β` captures the hacker's prior knowledge: it
//! maps each item `x ∈ I` to an interval `[l, r] ⊆ [0, 1]` believed
//! to contain `x`'s frequency. Special cases:
//!
//! * the **ignorant** belief function maps everything to `[0, 1]`;
//! * a **point-valued** belief function maps every item to a single
//!   value;
//! * an **interval** belief function has at least one true range;
//! * `β` is **compliant** (on an item) when the interval contains the
//!   item's true frequency, and **α-compliant** when a fraction `α`
//!   of items are compliant.

use andi_data::Database;
use andi_graph::GroupedBigraph;
use rand::Rng;

use crate::error::{Error, Result};

/// A hacker's belief function: one frequency interval per item.
///
/// # Examples
///
/// The four Figure 2 archetypes:
///
/// ```
/// use andi_core::BeliefFunction;
///
/// let truth = [0.5, 0.4, 0.3];
/// let ignorant = BeliefFunction::ignorant(3);
/// let exact = BeliefFunction::point_valued(&truth).unwrap();
/// let ballpark = BeliefFunction::widened(&truth, 0.05).unwrap();
///
/// assert!(ignorant.is_ignorant());
/// assert!(exact.is_point_valued());
/// assert!(ballpark.is_interval());
/// // All three contain the truth: fully compliant.
/// assert_eq!(ballpark.alpha(&truth), 1.0);
/// // Refinement (Definition 7): tighter knowledge refines looser.
/// assert!(exact.refines(&ballpark));
/// assert!(ballpark.refines(&ignorant));
/// ```
// andi::declassify(Debug renders belief intervals for test diagnostics and oracle counterexamples; adversary-visible outputs go through Provenance)
#[derive(Clone, Debug, PartialEq)]
pub struct BeliefFunction {
    // andi::sensitive — the adversary's per-item belief intervals [l, u]
    intervals: Vec<(f64, f64)>,
}

impl BeliefFunction {
    /// The ignorant belief function on `n` items: every interval is
    /// `[0, 1]`.
    pub fn ignorant(n: usize) -> Self {
        BeliefFunction {
            intervals: vec![(0.0, 1.0); n],
        }
    }

    /// The compliant point-valued belief function for the given true
    /// frequencies: `β(x) = [f_x, f_x]`.
    ///
    /// # Errors
    ///
    /// Rejects frequencies outside `[0, 1]`.
    pub fn point_valued(freqs: &[f64]) -> Result<Self> {
        Self::from_intervals(freqs.iter().map(|&f| (f, f)).collect())
    }

    /// The recipe's compliant interval belief function:
    /// `β(x) = [f_x - δ, f_x + δ]`, clamped to `[0, 1]`
    /// (Section 6.1, step 5 of Figure 8).
    ///
    /// # Errors
    ///
    /// Rejects negative `δ` or frequencies outside `[0, 1]`.
    pub fn widened(freqs: &[f64], delta: f64) -> Result<Self> {
        if delta.is_nan() || delta < 0.0 {
            return Err(Error::InvalidParameter(format!(
                "interval half-width must be non-negative, got {delta}"
            )));
        }
        let intervals = freqs
            .iter()
            .map(|&f| ((f - delta).max(0.0), (f + delta).min(1.0)))
            .collect();
        // from_intervals re-validates the original frequencies
        // indirectly: a frequency outside [0,1] yields an inverted or
        // out-of-range interval only when delta is small, so check
        // freqs explicitly.
        for (x, &f) in freqs.iter().enumerate() {
            if !(0.0..=1.0).contains(&f) {
                return Err(Error::InvalidInterval {
                    item: x,
                    low: f,
                    high: f,
                });
            }
        }
        Self::from_intervals(intervals)
    }

    /// Builds from explicit intervals.
    ///
    /// # Errors
    ///
    /// Every interval must satisfy `0 <= l <= r <= 1`.
    pub fn from_intervals(intervals: Vec<(f64, f64)>) -> Result<Self> {
        for (x, &(l, r)) in intervals.iter().enumerate() {
            if !(0.0 <= l && l <= r && r <= 1.0) {
                return Err(Error::InvalidInterval {
                    item: x,
                    low: l,
                    high: r,
                });
            }
        }
        Ok(BeliefFunction { intervals })
    }

    /// Domain size.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.intervals.len()
    }

    /// The belief interval of item `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    #[inline]
    pub fn interval(&self, x: usize) -> (f64, f64) {
        self.intervals[x]
    }

    /// All intervals.
    #[inline]
    pub fn intervals(&self) -> &[(f64, f64)] {
        &self.intervals
    }

    /// Whether every interval is `[0, 1]`.
    pub fn is_ignorant(&self) -> bool {
        self.intervals.iter().all(|&(l, r)| l == 0.0 && r == 1.0)
    }

    /// Whether every interval is a single point.
    pub fn is_point_valued(&self) -> bool {
        self.intervals.iter().all(|&(l, r)| l == r)
    }

    /// Whether at least one interval is a true range (`l < r`) — the
    /// paper's definition of an *interval* belief function.
    pub fn is_interval(&self) -> bool {
        self.intervals.iter().any(|&(l, r)| l < r)
    }

    /// Whether `β` is compliant on item `x` given its true frequency.
    #[inline]
    pub fn compliant_on(&self, x: usize, true_freq: f64) -> bool {
        let (l, r) = self.intervals[x];
        l <= true_freq && true_freq <= r
    }

    /// Per-item compliance against the true frequencies.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn compliance_mask(&self, true_freqs: &[f64]) -> Vec<bool> {
        assert_eq!(
            true_freqs.len(),
            self.n_items(),
            "frequency vector size mismatch"
        );
        true_freqs
            .iter()
            .enumerate()
            .map(|(x, &f)| self.compliant_on(x, f))
            .collect()
    }

    /// The degree of compliancy `α`: the fraction of items whose
    /// interval contains the true frequency.
    pub fn alpha(&self, true_freqs: &[f64]) -> f64 {
        if self.n_items() == 0 {
            return 1.0;
        }
        let c = self
            .compliance_mask(true_freqs)
            .iter()
            .filter(|&&b| b)
            .count();
        c as f64 / self.n_items() as f64
    }

    /// The paper's refinement order (Definition 7): `self ⊑ other`
    /// iff every interval of `self` is contained in the corresponding
    /// interval of `other`. Lemma 8 then gives
    /// `OE(self) >= OE(other)`.
    pub fn refines(&self, other: &BeliefFunction) -> bool {
        self.n_items() == other.n_items()
            && self
                .intervals
                .iter()
                .zip(other.intervals.iter())
                .all(|(&(l1, r1), &(l2, r2))| l1 >= l2 && r1 <= r2)
    }

    /// Returns a copy where the selected items' intervals are moved
    /// off their true frequency (made *non-compliant*) while keeping
    /// their width. Used by the recipe's α-compliant anchoring
    /// (Section 6.2): the chosen items keep plausible-looking but
    /// wrong ranges.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an out-of-range item index.
    pub fn with_noncompliant_items<R: Rng + ?Sized>(
        &self,
        true_freqs: &[f64],
        items: &[usize],
        rng: &mut R,
    ) -> BeliefFunction {
        assert_eq!(true_freqs.len(), self.n_items());
        let mut intervals = self.intervals.clone();
        for &x in items {
            let f = true_freqs[x];
            let (l, r) = intervals[x];
            let width = r - l;
            intervals[x] = wrong_interval(f, width, rng);
        }
        BeliefFunction { intervals }
    }

    /// Builds the consistent-mapping-space graph for this belief
    /// function against an observed support profile (aligned
    /// indexing: anonymized item `i` is original item `i`).
    ///
    /// # Panics
    ///
    /// Panics if the profile's size disagrees with the domain.
    pub fn build_graph(&self, supports: &[u64], n_transactions: u64) -> GroupedBigraph {
        assert_eq!(
            supports.len(),
            self.n_items(),
            "support profile size mismatch"
        );
        GroupedBigraph::new(supports, n_transactions, &self.intervals)
    }

    /// Convenience: build the graph straight from a database.
    pub fn build_graph_for(&self, db: &Database) -> GroupedBigraph {
        self.build_graph(&db.supports(), db.n_transactions() as u64)
    }
}

/// Draws an interval of the given width inside `[0, 1]` that does
/// *not* contain `f`. Falls back to a zero-width wrong point when the
/// width leaves no room (e.g. width close to 1).
fn wrong_interval<R: Rng + ?Sized>(f: f64, width: f64, rng: &mut R) -> (f64, f64) {
    for _ in 0..64 {
        let l = rng.gen::<f64>() * (1.0 - width);
        let r = l + width;
        if f < l || f > r {
            return (l, r.min(1.0));
        }
    }
    // Width too large for a same-width miss: use a wrong point value.
    let mut p = rng.gen::<f64>();
    if (p - f).abs() < 1e-9 {
        p = if f < 0.5 { (f + 0.5).min(1.0) } else { f - 0.5 };
    }
    (p, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const BIGMART_FREQS: [f64; 6] = [0.5, 0.4, 0.5, 0.5, 0.3, 0.5];

    /// The belief function `h` of Figure 2 (0-based item ids).
    fn belief_h() -> BeliefFunction {
        BeliefFunction::from_intervals(vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ])
        .unwrap()
    }

    /// The 0.5-compliant belief function `k` of Figure 2: wrong on
    /// the first three items.
    fn belief_k() -> BeliefFunction {
        BeliefFunction::from_intervals(vec![
            (0.6, 1.0),
            (0.1, 0.25),
            (0.0, 0.4),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ])
        .unwrap()
    }

    #[test]
    fn classification_of_figure_2_functions() {
        let f = BeliefFunction::point_valued(&BIGMART_FREQS).unwrap();
        assert!(f.is_point_valued());
        assert!(!f.is_interval());
        assert!(!f.is_ignorant());

        let g = BeliefFunction::ignorant(6);
        assert!(g.is_ignorant());
        assert!(g.is_interval());
        assert!(!g.is_point_valued());

        let h = belief_h();
        assert!(h.is_interval());
        assert!(!h.is_ignorant());
        assert!(!h.is_point_valued());
    }

    #[test]
    fn compliance_of_figure_2_functions() {
        let f = BeliefFunction::point_valued(&BIGMART_FREQS).unwrap();
        assert!((f.alpha(&BIGMART_FREQS) - 1.0).abs() < 1e-12);

        let g = BeliefFunction::ignorant(6);
        assert!((g.alpha(&BIGMART_FREQS) - 1.0).abs() < 1e-12);

        let h = belief_h();
        assert!((h.alpha(&BIGMART_FREQS) - 1.0).abs() < 1e-12);

        // k guesses wrong on the first three items: 0.5-compliant.
        let k = belief_k();
        assert!((k.alpha(&BIGMART_FREQS) - 0.5).abs() < 1e-12);
        let mask = k.compliance_mask(&BIGMART_FREQS);
        assert_eq!(mask, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn widened_clamps_to_unit_interval() {
        let b = BeliefFunction::widened(&[0.05, 0.5, 0.98], 0.1).unwrap();
        assert_eq!(b.interval(0), (0.0, 0.15000000000000002));
        let (l, r) = b.interval(2);
        assert!((l - 0.88).abs() < 1e-12);
        assert_eq!(r, 1.0);
        // Widened beliefs are compliant by construction.
        assert!((b.alpha(&[0.05, 0.5, 0.98]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(BeliefFunction::from_intervals(vec![(0.5, 0.4)]).is_err());
        assert!(BeliefFunction::from_intervals(vec![(-0.1, 0.5)]).is_err());
        assert!(BeliefFunction::from_intervals(vec![(0.2, 1.2)]).is_err());
        assert!(BeliefFunction::point_valued(&[1.5]).is_err());
        assert!(BeliefFunction::widened(&[0.5], -0.1).is_err());
        assert!(BeliefFunction::widened(&[2.0], 0.1).is_err());
    }

    #[test]
    fn refinement_order() {
        let point = BeliefFunction::point_valued(&BIGMART_FREQS).unwrap();
        let wide = BeliefFunction::widened(&BIGMART_FREQS, 0.05).unwrap();
        let ignorant = BeliefFunction::ignorant(6);
        assert!(point.refines(&wide));
        assert!(wide.refines(&ignorant));
        assert!(point.refines(&ignorant));
        assert!(point.refines(&point), "refinement is reflexive");
        assert!(!ignorant.refines(&point));
        assert!(!wide.refines(&point));
        // Mismatched domains never refine.
        assert!(!point.refines(&BeliefFunction::ignorant(5)));
    }

    #[test]
    fn noncompliant_rewrite_misses_the_truth() {
        let mut rng = StdRng::seed_from_u64(81);
        let b = BeliefFunction::widened(&BIGMART_FREQS, 0.05).unwrap();
        let bad = b.with_noncompliant_items(&BIGMART_FREQS, &[0, 2, 4], &mut rng);
        let mask = bad.compliance_mask(&BIGMART_FREQS);
        assert_eq!(mask, vec![false, true, false, true, false, true]);
        assert!((bad.alpha(&BIGMART_FREQS) - 0.5).abs() < 1e-12);
        // Untouched intervals are identical.
        assert_eq!(bad.interval(1), b.interval(1));
        assert_eq!(bad.interval(3), b.interval(3));
    }

    #[test]
    fn wrong_interval_handles_wide_widths() {
        let mut rng = StdRng::seed_from_u64(82);
        for _ in 0..200 {
            let (l, r) = wrong_interval(0.5, 0.95, &mut rng);
            assert!(!(l <= 0.5 && 0.5 <= r), "[{l},{r}] must miss 0.5");
            assert!((0.0..=1.0).contains(&l) && l <= r && r <= 1.0);
        }
    }

    #[test]
    fn build_graph_matches_figure_3() {
        let supports = vec![5u64, 4, 5, 5, 3, 5];
        let g = belief_h().build_graph(&supports, 10);
        assert_eq!(g.outdegrees(), vec![6, 5, 4, 5, 2, 4]);
    }

    #[test]
    fn empty_domain_alpha_is_one() {
        let b = BeliefFunction::ignorant(0);
        assert_eq!(b.alpha(&[]), 1.0);
    }
}

//! The disclosure advisor: from "withhold" to "withhold *what*".
//!
//! When Assess-Risk (Figure 8) comes back uncomfortable, the owner's
//! real question is what minimal change makes the release safe. This
//! module proposes **suppression plans**: withhold the most exposed
//! items (those with the highest estimated crack probability) until
//! the O-estimate over the remaining release fits the tolerance.
//! Greedy highest-probability-first is optimal for this objective,
//! because removing an item removes exactly its own summand from the
//! O-estimate while no other item's outdegree shrinks — outdegrees
//! count *anonymized* items, which stay in the release. (Removing
//! anonymized items as well could only lower other outdegrees and
//! raise risk, so the plan keeps them conservative.)

use crate::error::{Error, Result};
use crate::oestimate::OutdegreeProfile;

/// A suppression recommendation.
#[derive(Clone, Debug)]
pub struct SuppressionPlan {
    /// Items to withhold, most exposed first.
    pub suppress: Vec<usize>,
    /// Estimated crack probability of each suppressed item (parallel
    /// to `suppress`).
    pub exposure: Vec<f64>,
    /// O-estimate over the remaining items after suppression.
    pub residual_oestimate: f64,
    /// The budget (`tolerance · n`) the plan was built against.
    pub budget: f64,
    /// Whether the budget is achievable at all (it always is — the
    /// empty release has estimate 0 — but the flag records whether
    /// suppression stopped early because the budget was already
    /// met).
    pub within_budget: bool,
}

impl SuppressionPlan {
    /// Number of items withheld.
    pub fn n_suppressed(&self) -> usize {
        self.suppress.len()
    }
}

/// Builds a suppression plan for a crack-probability profile.
///
/// `tolerance` is the acceptable expected fraction of cracked items,
/// measured against the *original* domain size (suppressing items
/// should not loosen the budget).
///
/// # Errors
///
/// Rejects a tolerance outside `(0, 1]` or an empty profile.
/// # Examples
///
/// ```
/// use andi_core::{suppression_plan, BeliefFunction, OutdegreeProfile};
///
/// let supports = [5u64, 4, 5, 5, 3, 5]; // BigMart
/// let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 10.0).collect();
/// let belief = BeliefFunction::point_valued(&freqs).unwrap();
/// let profile = OutdegreeProfile::plain(&belief.build_graph(&supports, 10));
/// let plan = suppression_plan(&profile, 0.2).unwrap();
/// // The two singleton-group items are the whole exposure.
/// assert_eq!(plan.n_suppressed(), 2);
/// assert!(plan.within_budget);
/// ```
pub fn suppression_plan(profile: &OutdegreeProfile, tolerance: f64) -> Result<SuppressionPlan> {
    if !(tolerance > 0.0 && tolerance <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "tolerance must be in (0, 1], got {tolerance}"
        )));
    }
    let n = profile.n_items();
    if n == 0 {
        return Err(Error::InvalidParameter("empty profile".into()));
    }
    let budget = tolerance * n as f64;
    let mut order: Vec<usize> = (0..n).collect();
    // Most exposed first; ties by item id for determinism.
    order.sort_by(|&a, &b| {
        profile
            .crack_probability(b)
            .total_cmp(&profile.crack_probability(a))
            .then(a.cmp(&b))
    });

    let mut remaining: f64 = profile.oestimate();
    let mut suppress = Vec::new();
    let mut exposure = Vec::new();
    for &x in &order {
        if remaining <= budget {
            break;
        }
        let p = profile.crack_probability(x);
        if p <= 0.0 {
            break; // only zero-probability items left; budget met anyway
        }
        suppress.push(x);
        exposure.push(p);
        remaining -= p;
    }
    Ok(SuppressionPlan {
        suppress,
        exposure,
        residual_oestimate: remaining.max(0.0),
        budget,
        within_budget: remaining <= budget + 1e-12,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::BeliefFunction;

    const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];

    fn profile() -> OutdegreeProfile {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let b = BeliefFunction::point_valued(&freqs).unwrap();
        OutdegreeProfile::plain(&b.build_graph(&BIGMART_SUPPORTS, 10))
    }

    #[test]
    fn suppresses_singletons_first() {
        // Point-valued BigMart: items 1 and 4 (their own groups) have
        // probability 1; the rest 1/4. OE = 3, budget at tau 0.2 is
        // 1.2: suppressing the two singletons leaves OE = 1.0.
        let plan = suppression_plan(&profile(), 0.2).unwrap();
        assert_eq!(plan.n_suppressed(), 2);
        assert!(plan.suppress.contains(&1));
        assert!(plan.suppress.contains(&4));
        assert!((plan.residual_oestimate - 1.0).abs() < 1e-12);
        assert!(plan.within_budget);
        assert!(plan.exposure.iter().all(|&p| (p - 1.0).abs() < 1e-12));
    }

    #[test]
    fn generous_budget_needs_no_suppression() {
        let plan = suppression_plan(&profile(), 0.6).unwrap();
        assert_eq!(plan.n_suppressed(), 0);
        assert!((plan.residual_oestimate - 3.0).abs() < 1e-12);
        assert!(plan.within_budget);
    }

    #[test]
    fn tight_budget_suppresses_more() {
        let loose = suppression_plan(&profile(), 0.3).unwrap();
        let tight = suppression_plan(&profile(), 0.05).unwrap();
        assert!(tight.n_suppressed() >= loose.n_suppressed());
        assert!(tight.residual_oestimate <= tight.budget + 1e-12);
    }

    #[test]
    fn exposures_are_sorted_descending() {
        let plan = suppression_plan(&profile(), 0.01).unwrap();
        for w in plan.exposure.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn validation() {
        assert!(suppression_plan(&profile(), 0.0).is_err());
        assert!(suppression_plan(&profile(), 1.5).is_err());
    }
}

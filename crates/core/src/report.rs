//! Plain-text table rendering for the benchmark harness, and the
//! provenance record budgeted Assess-Risk runs attach to their
//! answers.
//!
//! The `andi-bench` binaries print each paper table/figure as an
//! aligned text table with a paper-vs-measured layout; this tiny
//! renderer keeps them free of formatting noise.

use crate::error::Error;

/// The estimator rung that produced a risk figure, from most to
/// least precise (the degradation ladder of the budgeted recipe).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Exact crack probabilities via Ryser permanents.
    Exact,
    /// The swap-walk matching sampler's empirical frequencies.
    Sampler,
    /// The closed-form O-estimate (always answers; coarsest).
    OEstimate,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Exact => write!(f, "exact-permanent"),
            Rung::Sampler => write!(f, "matching-sampler"),
            Rung::OEstimate => write!(f, "o-estimate"),
        }
    }
}

/// Where a budgeted assessment's numbers came from: the rung that
/// answered, every rung that tripped on the way down (with the error
/// that tripped it), and how much of the budget was spent.
#[derive(Clone, Debug, PartialEq)]
pub struct Provenance {
    /// The rung whose numbers the assessment reports.
    pub rung: Rung,
    /// Whether the answer is degraded (a rung below [`Rung::Exact`]
    /// answered).
    pub degraded: bool,
    /// The rungs that failed before the answering one, in descent
    /// order, each with its structured trip reason.
    pub trips: Vec<(Rung, Error)>,
    /// The configured wall-clock budget, when one was set.
    pub budget_ms: Option<u64>,
    /// Wall-clock time spent by the whole assessment, in ms.
    pub spent_ms: u128,
}

impl Provenance {
    /// Renders the record as the `provenance:`-prefixed report lines
    /// the CLI prints under a budgeted assessment.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "provenance: answered by {} ({})\n",
            self.rung,
            if self.degraded { "degraded" } else { "exact" }
        ));
        for (rung, err) in &self.trips {
            out.push_str(&format!("provenance: {rung} tripped: {err}\n"));
        }
        match self.budget_ms {
            Some(ms) => out.push_str(&format!(
                "provenance: budget {} ms, spent {} ms\n",
                ms, self.spent_ms
            )),
            None => out.push_str(&format!(
                "provenance: no deadline, spent {} ms\n",
                self.spent_ms
            )),
        }
        out
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A simple right-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the header.
    pub fn add_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) -> &mut Self {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells for {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as GitHub-flavored Markdown (first column
    /// left-aligned, the rest right-aligned).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let row = |cells: &[String], out: &mut String| {
            out.push('|');
            for cell in cells {
                out.push(' ');
                out.push_str(&cell.replace('|', "\\|"));
                out.push_str(" |");
            }
            out.push('\n');
        };
        row(&self.headers, &mut out);
        out.push('|');
        for c in 0..self.headers.len() {
            out.push_str(if c == 0 { ":---|" } else { "---:|" });
        }
        out.push('\n');
        for r in &self.rows {
            row(r, &mut out);
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas, quotes or newlines).
    pub fn render_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let row = |cells: &[String], out: &mut String| {
            out.push_str(&cells.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        };
        row(&self.headers, &mut out);
        for r in &self.rows {
            row(r, &mut out);
        }
        out
    }

    /// Renders the table with a separator under the header. The
    /// first column is left-aligned (labels), the rest right-aligned
    /// (numbers).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                if c == 0 {
                    out.push_str(&format!("{:<w$}", cell, w = widths[c]));
                } else {
                    out.push_str(&format!("{:>w$}", cell, w = widths[c]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for the
/// bench binaries).
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Dataset", "n", "OE"]);
        t.add_row(["CONNECT", "130", "25.95"]);
        t.add_row(["RETAIL", "16470", "210.01"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned: widths equal across rows.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].contains("16470"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.add_row(["only one"]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(0.5, 4), "0.5000");
    }

    #[test]
    fn markdown_rendering() {
        let mut t = TextTable::new(["name", "value"]);
        t.add_row(["a|b", "1"]);
        let md = t.render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| name | value |");
        assert_eq!(lines[1], "|:---|---:|");
        assert!(
            lines[2].contains("a\\|b"),
            "pipes are escaped: {}",
            lines[2]
        );
    }

    #[test]
    fn provenance_renders_rung_trips_and_budget() {
        let p = Provenance {
            rung: Rung::OEstimate,
            degraded: true,
            trips: vec![
                (Rung::Exact, Error::BudgetExceeded { budget_ms: 50 }),
                (Rung::Sampler, Error::BudgetExceeded { budget_ms: 50 }),
            ],
            budget_ms: Some(50),
            spent_ms: 51,
        };
        let s = p.render();
        assert!(s.contains("answered by o-estimate (degraded)"), "{s}");
        assert!(s.contains("exact-permanent tripped"), "{s}");
        assert!(s.contains("matching-sampler tripped"), "{s}");
        assert!(s.contains("budget 50 ms"), "{s}");

        let exact = Provenance {
            rung: Rung::Exact,
            degraded: false,
            trips: Vec::new(),
            budget_ms: None,
            spent_ms: 2,
        };
        assert!(exact
            .render()
            .contains("answered by exact-permanent (exact)"));
        assert!(exact.render().contains("no deadline"));
    }

    #[test]
    fn csv_rendering_quotes_when_needed() {
        let mut t = TextTable::new(["name", "note"]);
        t.add_row(["plain", "a,b"]);
        t.add_row(["q\"x", "fine"]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,note");
        assert_eq!(lines[1], "plain,\"a,b\"");
        assert_eq!(lines[2], "\"q\"\"x\",fine");
    }
}

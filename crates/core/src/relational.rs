//! Relational / attribute-knowledge attacks (Section 8.1).
//!
//! The bipartite-graph analysis level is independent of frequent
//! sets: "as long as the bipartite graph is set up by some means",
//! every lemma carries over. The paper's example: an anonymized
//! relation with attributes (age, ethnicity, car-model) over
//! individuals; the hacker knows that John is Chinese and owns a
//! Toyota, that Mary's age is 30–35, and nothing about Bob. Each
//! piece of partial knowledge contributes edges from the matching
//! anonymized records to the known individual.
//!
//! This module builds that graph and feeds it to the standard
//! O-estimate machinery.

use andi_graph::DenseBigraph;

use crate::error::{Error, Result};
use crate::oestimate::OutdegreeProfile;

/// A single attribute value of a record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AttrValue {
    /// Categorical value (ethnicity, car model, ...), encoded as an
    /// id.
    Cat(u32),
    /// Numeric value (age, salary, ...).
    Num(f64),
}

/// One piece of hacker knowledge about an individual's attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum Constraint {
    /// The attribute equals a categorical value.
    Equals { attr: usize, value: u32 },
    /// The attribute is one of several categorical values (e.g. a
    /// generalization-hierarchy node: "some European car brand").
    OneOf { attr: usize, values: Vec<u32> },
    /// The attribute is known *not* to be a categorical value.
    NotEquals { attr: usize, value: u32 },
    /// The attribute lies in an inclusive numeric range.
    InRange { attr: usize, low: f64, high: f64 },
}

impl Constraint {
    /// Whether a record satisfies this constraint. Type mismatches
    /// (range constraint on a categorical attribute and vice versa)
    /// never match — except [`Constraint::NotEquals`], which a
    /// numeric attribute satisfies vacuously.
    fn satisfied_by(&self, record: &[AttrValue]) -> bool {
        match self {
            Constraint::Equals { attr, value } => {
                matches!(record.get(*attr), Some(AttrValue::Cat(v)) if v == value)
            }
            Constraint::OneOf { attr, values } => {
                matches!(record.get(*attr), Some(AttrValue::Cat(v)) if values.contains(v))
            }
            Constraint::NotEquals { attr, value } => {
                !matches!(record.get(*attr), Some(AttrValue::Cat(v)) if v == value)
            }
            Constraint::InRange { attr, low, high } => {
                matches!(record.get(*attr), Some(AttrValue::Num(v)) if *low <= *v && *v <= *high)
            }
        }
    }
}

/// An anonymized relation in *aligned* indexing: anonymized record
/// `i` truly belongs to individual `i`. (The alignment is private to
/// the analysis; a hacker only sees the records.)
#[derive(Clone, Debug)]
pub struct AnonymizedRelation {
    n_attrs: usize,
    records: Vec<Vec<AttrValue>>,
}

impl AnonymizedRelation {
    /// Builds a relation; every record must have the same arity.
    ///
    /// # Errors
    ///
    /// Rejects an empty relation or ragged records.
    pub fn new(records: Vec<Vec<AttrValue>>) -> Result<Self> {
        let n_attrs = records
            .first()
            .map(|r| r.len())
            .ok_or_else(|| Error::InvalidParameter("empty relation".into()))?;
        for (i, r) in records.iter().enumerate() {
            if r.len() != n_attrs {
                return Err(Error::InvalidParameter(format!(
                    "record {i} has {} attributes, expected {n_attrs}",
                    r.len()
                )));
            }
        }
        Ok(AnonymizedRelation { n_attrs, records })
    }

    /// Number of individuals / records.
    pub fn n_individuals(&self) -> usize {
        self.records.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    /// The record of anonymized individual `i`.
    pub fn record(&self, i: usize) -> &[AttrValue] {
        &self.records[i]
    }
}

/// The hacker's knowledge: a conjunction of constraints per
/// individual (an empty conjunction = knows nothing, like Bob).
#[derive(Clone, Debug, Default)]
pub struct Knowledge {
    constraints: Vec<Vec<Constraint>>,
}

impl Knowledge {
    /// Knowledge about `n` individuals, initially empty (everyone is
    /// a Bob).
    pub fn ignorant(n: usize) -> Self {
        Knowledge {
            constraints: vec![Vec::new(); n],
        }
    }

    /// Adds one constraint about individual `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is out of range.
    pub fn add(&mut self, y: usize, constraint: Constraint) -> &mut Self {
        self.constraints[y].push(constraint);
        self
    }

    /// The constraints about individual `y`.
    pub fn about(&self, y: usize) -> &[Constraint] {
        &self.constraints[y]
    }

    /// Number of individuals covered.
    pub fn n_individuals(&self) -> usize {
        self.constraints.len()
    }
}

/// Builds the mapping-space graph: edge `(i, y)` iff record `i`
/// satisfies everything the hacker knows about individual `y`.
///
/// # Errors
///
/// Relation and knowledge must cover the same set of individuals.
pub fn build_graph(relation: &AnonymizedRelation, knowledge: &Knowledge) -> Result<DenseBigraph> {
    let n = relation.n_individuals();
    if knowledge.n_individuals() != n {
        return Err(Error::DomainMismatch {
            expected: n,
            got: knowledge.n_individuals(),
        });
    }
    let mut g = DenseBigraph::new(n);
    for y in 0..n {
        let cs = knowledge.about(y);
        for i in 0..n {
            if cs.iter().all(|c| c.satisfied_by(relation.record(i))) {
                g.add_edge(i, y);
            }
        }
    }
    Ok(g)
}

/// Full relational risk report: the O-estimate (with propagation)
/// over the attribute-knowledge graph.
#[derive(Clone, Debug)]
pub struct RelationalRisk {
    /// Per-individual crack-probability profile.
    pub profile: OutdegreeProfile,
    /// The O-estimate (expected number of re-identified
    /// individuals).
    pub oestimate: f64,
    /// Individuals identified with certainty by propagation.
    pub certain: usize,
}

/// Assesses re-identification risk of releasing `relation` against
/// `knowledge`.
///
/// # Errors
///
/// See [`build_graph`]; also fails when the knowledge is mutually
/// inconsistent (no consistent assignment exists).
/// # Examples
///
/// ```
/// use andi_core::relational::{assess_relational_risk, AnonymizedRelation, AttrValue, Constraint, Knowledge};
///
/// // Two people; the hacker knows one is over 40.
/// let relation = AnonymizedRelation::new(vec![
///     vec![AttrValue::Num(45.0)],
///     vec![AttrValue::Num(30.0)],
/// ]).unwrap();
/// let mut knowledge = Knowledge::ignorant(2);
/// knowledge.add(0, Constraint::InRange { attr: 0, low: 40.0, high: 99.0 });
/// let risk = assess_relational_risk(&relation, &knowledge).unwrap();
/// // Pinning one individual pins the other too.
/// assert_eq!(risk.certain, 2);
/// assert!((risk.oestimate - 2.0).abs() < 1e-12);
/// ```
pub fn assess_relational_risk(
    relation: &AnonymizedRelation,
    knowledge: &Knowledge,
) -> Result<RelationalRisk> {
    let graph = build_graph(relation, knowledge)?;
    let profile = OutdegreeProfile::propagated_dense(graph)?;
    Ok(RelationalRisk {
        oestimate: profile.oestimate(),
        certain: profile.forced_cracks(),
        profile,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const AGE: usize = 0;
    const ETHNICITY: usize = 1;
    const CAR: usize = 2;
    const CHINESE: u32 = 0;
    const DUTCH: u32 = 1;
    const TOYOTA: u32 = 10;
    const VOLVO: u32 = 11;

    /// The paper's example cast: John (Chinese, Toyota), Mary
    /// (age 32), Bob (unknown), plus a decoy sharing John's profile.
    fn relation() -> AnonymizedRelation {
        AnonymizedRelation::new(vec![
            // 0 = John
            vec![
                AttrValue::Num(41.0),
                AttrValue::Cat(CHINESE),
                AttrValue::Cat(TOYOTA),
            ],
            // 1 = Mary
            vec![
                AttrValue::Num(32.0),
                AttrValue::Cat(DUTCH),
                AttrValue::Cat(VOLVO),
            ],
            // 2 = Bob
            vec![
                AttrValue::Num(58.0),
                AttrValue::Cat(DUTCH),
                AttrValue::Cat(TOYOTA),
            ],
            // 3 = decoy with John's ethnicity and car
            vec![
                AttrValue::Num(29.0),
                AttrValue::Cat(CHINESE),
                AttrValue::Cat(TOYOTA),
            ],
        ])
        .unwrap()
    }

    fn paper_knowledge() -> Knowledge {
        let mut k = Knowledge::ignorant(4);
        k.add(
            0,
            Constraint::Equals {
                attr: ETHNICITY,
                value: CHINESE,
            },
        )
        .add(
            0,
            Constraint::Equals {
                attr: CAR,
                value: TOYOTA,
            },
        )
        .add(
            1,
            Constraint::InRange {
                attr: AGE,
                low: 30.0,
                high: 35.0,
            },
        );
        k
    }

    #[test]
    fn graph_edges_follow_knowledge() {
        let g = build_graph(&relation(), &paper_knowledge()).unwrap();
        // John's column: records 0 and 3 are Chinese Toyota owners.
        assert!(g.has_edge(0, 0));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(2, 0));
        // Mary's column: only record 1 is aged 30-35.
        assert_eq!(g.right_degree(1), 1);
        assert!(g.has_edge(1, 1));
        // Bob's column: no constraints, everyone qualifies.
        assert_eq!(g.right_degree(2), 4);
    }

    #[test]
    fn risk_report_identifies_mary_with_certainty() {
        let risk = assess_relational_risk(&relation(), &paper_knowledge()).unwrap();
        assert!(risk.certain >= 1, "Mary is pinned by the age range");
        // John is one of two candidates: probability 1/2; plus Mary
        // certain. Expected >= 1.5.
        assert!(risk.oestimate >= 1.5 - 1e-9, "OE = {}", risk.oestimate);
        assert!(risk.oestimate <= 4.0);
    }

    #[test]
    fn ignorant_knowledge_gives_one_expected_crack() {
        let risk = assess_relational_risk(&relation(), &Knowledge::ignorant(4)).unwrap();
        assert!((risk.oestimate - 1.0).abs() < 1e-12, "Lemma 1 carries over");
        assert_eq!(risk.certain, 0);
    }

    #[test]
    fn inconsistent_knowledge_is_reported() {
        let mut k = Knowledge::ignorant(4);
        // Two different people both pinned to the unique record 1.
        k.add(
            0,
            Constraint::InRange {
                attr: AGE,
                low: 31.0,
                high: 33.0,
            },
        );
        k.add(
            1,
            Constraint::InRange {
                attr: AGE,
                low: 31.0,
                high: 33.0,
            },
        );
        let err = assess_relational_risk(&relation(), &k).unwrap_err();
        assert_eq!(err, Error::EmptyMappingSpace);
    }

    #[test]
    fn type_mismatched_constraints_never_match() {
        let r = relation();
        let c = Constraint::Equals {
            attr: AGE,
            value: 41,
        }; // AGE is numeric
        assert!(!c.satisfied_by(r.record(0)));
        let c = Constraint::InRange {
            attr: CAR,
            low: 0.0,
            high: 100.0,
        };
        assert!(!c.satisfied_by(r.record(0)));
        let c = Constraint::Equals { attr: 99, value: 0 }; // out of range
        assert!(!c.satisfied_by(r.record(0)));
    }

    #[test]
    fn one_of_acts_as_generalization() {
        // "Mary drives some European brand" = {VOLVO}; record 1 only.
        let mut k = Knowledge::ignorant(4);
        k.add(
            1,
            Constraint::OneOf {
                attr: CAR,
                values: vec![VOLVO],
            },
        );
        let g = build_graph(&relation(), &k).unwrap();
        assert_eq!(g.right_degree(1), 1);
        // A broader node keeps more candidates.
        let mut k = Knowledge::ignorant(4);
        k.add(
            1,
            Constraint::OneOf {
                attr: CAR,
                values: vec![VOLVO, TOYOTA],
            },
        );
        let g = build_graph(&relation(), &k).unwrap();
        assert_eq!(g.right_degree(1), 4);
    }

    #[test]
    fn not_equals_excludes() {
        // "John does not drive a Volvo" removes only record 1.
        let mut k = Knowledge::ignorant(4);
        k.add(
            0,
            Constraint::NotEquals {
                attr: CAR,
                value: VOLVO,
            },
        );
        let g = build_graph(&relation(), &k).unwrap();
        assert_eq!(g.right_degree(0), 3);
        assert!(!g.has_edge(1, 0));
        // NotEquals on a numeric attribute is vacuous.
        let mut k = Knowledge::ignorant(4);
        k.add(
            0,
            Constraint::NotEquals {
                attr: AGE,
                value: 41,
            },
        );
        let g = build_graph(&relation(), &k).unwrap();
        assert_eq!(g.right_degree(0), 4);
    }

    #[test]
    fn relation_validation() {
        assert!(AnonymizedRelation::new(vec![]).is_err());
        assert!(AnonymizedRelation::new(vec![
            vec![AttrValue::Num(1.0)],
            vec![AttrValue::Num(1.0), AttrValue::Cat(0)],
        ])
        .is_err());
        let ok = relation();
        assert_eq!(ok.n_individuals(), 4);
        assert_eq!(ok.n_attrs(), 3);
    }

    #[test]
    fn knowledge_size_mismatch_is_reported() {
        let k = Knowledge::ignorant(3);
        assert!(matches!(
            build_graph(&relation(), &k),
            Err(Error::DomainMismatch {
                expected: 4,
                got: 3
            })
        ));
    }
}

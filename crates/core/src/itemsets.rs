//! Itemset-level identification (the Section 8.2 extension).
//!
//! Even when individual items are protected by their frequency
//! groups, *sets* of items can be identified with certainty: in the
//! Figure 6(b) graph there is no way to tell `1'` from `2'`, yet the
//! itemset `{1', 2'}` indisputably maps onto `{1, 2}` — a perfect
//! matching has to use both of them there. The paper leaves this as
//! ongoing work; we implement the interval-graph case.
//!
//! For grouped (interval) mapping spaces the identified sets are the
//! *blocks* of the prefix-tight decomposition: scanning frequency
//! groups in order, a cut after group `j` is tight when the number of
//! original items whose candidate range ends by `j` equals the number
//! of anonymized items observed in groups `0..=j`. Items whose range
//! ends by a tight cut can only be matched inside the prefix, and the
//! counts leave no room for anything else — so the anonymized items
//! of each block map onto exactly the block's original items.

use andi_graph::GroupedBigraph;

/// One identified block: a set of anonymized items that provably maps
/// onto a known set of original items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdentifiedBlock {
    /// Inclusive frequency-group range the block spans.
    pub group_range: (usize, usize),
    /// Anonymized (left) item indices of the block.
    pub anonymized_items: Vec<usize>,
    /// Original (right) item indices the set maps onto.
    pub original_items: Vec<usize>,
}

impl IdentifiedBlock {
    /// Block size (items per side).
    pub fn len(&self) -> usize {
        self.anonymized_items.len()
    }

    /// Whether the block is empty (never produced by the
    /// decomposition; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.anonymized_items.is_empty()
    }

    /// A singleton block is an outright crack.
    pub fn is_crack(&self) -> bool {
        self.len() == 1
    }
}

/// The set-identification report for a mapping space.
#[derive(Clone, Debug)]
pub struct SetIdentification {
    /// Identified blocks in increasing frequency order. A single
    /// block covering the whole domain means no set-level leak.
    pub blocks: Vec<IdentifiedBlock>,
    /// Items whose candidate range is empty (unmatchable; excluded
    /// from every block).
    pub unmatchable: Vec<usize>,
}

impl SetIdentification {
    /// Blocks that leak information: proper subsets of the domain.
    pub fn leaking_blocks(&self) -> impl Iterator<Item = &IdentifiedBlock> {
        let n_total: usize = self.blocks.iter().map(|b| b.len()).sum();
        self.blocks.iter().filter(move |b| b.len() < n_total)
    }

    /// Number of items identified outright (singleton blocks).
    pub fn certain_cracks(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.is_crack() && b.anonymized_items == b.original_items)
            .count()
    }

    /// The finest provable partition sizes, smallest first — a
    /// compact leak summary for reports.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.blocks.iter().map(|b| b.len()).collect();
        sizes.sort_unstable();
        sizes
    }
}

/// Computes the prefix-tight block decomposition of a grouped mapping
/// space.
///
/// # Examples
///
/// The paper's Figure 6(b): no single item is identifiable, but the
/// *pair* `{1', 2'}` indisputably maps onto `{1, 2}`:
///
/// ```
/// use andi_core::{identify_sets, BeliefFunction};
///
/// let supports = [2u64, 4, 6, 8];
/// let f = |s: u64| s as f64 / 10.0;
/// let belief = BeliefFunction::from_intervals(vec![
///     (f(2), f(4)), (f(2), f(4)), (f(4), f(8)), (f(6), f(8)),
/// ]).unwrap();
/// let id = identify_sets(&belief.build_graph(&supports, 10));
/// assert_eq!(id.blocks.len(), 2);
/// assert_eq!(id.blocks[0].original_items, vec![0, 1]);
/// ```
///
/// Original items with an empty candidate range are reported as
/// `unmatchable` and take no part in the counting (no perfect
/// matching can involve them; with α-compliant beliefs the space may
/// still hold maximum matchings, which is what the blocks then
/// describe on the matchable part).
pub fn identify_sets(graph: &GroupedBigraph) -> SetIdentification {
    let k = graph.n_groups();
    let n = graph.n();

    // Bucket right items by the upper end of their range.
    let mut ends: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut unmatchable = Vec::new();
    for y in 0..n {
        match graph.right_range_of(y) {
            Some((_, hi)) => ends[hi].push(y),
            None => unmatchable.push(y),
        }
    }

    let mut blocks = Vec::new();
    let mut block_start = 0usize; // first group of the open block
    let mut lefts_in_block = 0usize;
    let mut rights_in_block: Vec<usize> = Vec::new();
    for (j, end_bucket) in ends.iter().enumerate() {
        lefts_in_block += graph.group_sizes()[j];
        rights_in_block.extend_from_slice(end_bucket);
        if rights_in_block.len() == lefts_in_block {
            // Tight cut: close the block.
            let mut anonymized = Vec::with_capacity(lefts_in_block);
            for g in block_start..=j {
                anonymized.extend_from_slice(graph.group_members(g));
            }
            let mut original = std::mem::take(&mut rights_in_block);
            original.sort_unstable();
            blocks.push(IdentifiedBlock {
                group_range: (block_start, j),
                anonymized_items: anonymized,
                original_items: original,
            });
            block_start = j + 1;
            lefts_in_block = 0;
        }
    }
    // A trailing non-tight region (possible only when some items are
    // unmatchable or ranges overflow) is reported as one last block
    // covering it, without the tightness guarantee only if counts
    // mismatch; we include it solely when it balances.
    if lefts_in_block > 0 && rights_in_block.len() == lefts_in_block {
        let mut anonymized = Vec::with_capacity(lefts_in_block);
        for g in block_start..k {
            anonymized.extend_from_slice(graph.group_members(g));
        }
        rights_in_block.sort_unstable();
        blocks.push(IdentifiedBlock {
            group_range: (block_start, k - 1),
            anonymized_items: anonymized,
            original_items: rights_in_block,
        });
    }
    SetIdentification {
        blocks,
        unmatchable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::BeliefFunction;

    /// A grouped rendition of Figure 6(b): four singleton frequency
    /// groups; 1,2 believe the first two groups, 4 believes the last
    /// two, 3 spans groups 2-4.
    fn figure_6b() -> GroupedBigraph {
        let supports = vec![2u64, 4, 6, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![
            (f(2), f(4)), // item 0 ("1"): groups {0,1}
            (f(2), f(4)), // item 1 ("2"): groups {0,1}
            (f(4), f(8)), // item 2 ("3"): groups {1,2,3}
            (f(6), f(8)), // item 3 ("4"): groups {2,3}
        ];
        GroupedBigraph::new(&supports, 10, &intervals)
    }

    #[test]
    fn figure_6b_splits_into_two_pairs() {
        let id = identify_sets(&figure_6b());
        assert_eq!(id.blocks.len(), 2);
        assert_eq!(id.blocks[0].anonymized_items, vec![0, 1]);
        assert_eq!(id.blocks[0].original_items, vec![0, 1]);
        assert_eq!(id.blocks[1].anonymized_items, vec![2, 3]);
        assert_eq!(id.blocks[1].original_items, vec![2, 3]);
        assert_eq!(id.block_sizes(), vec![2, 2]);
        assert_eq!(id.certain_cracks(), 0);
        assert!(id.unmatchable.is_empty());
        // Both blocks are proper subsets: set-level leaks.
        assert_eq!(id.leaking_blocks().count(), 2);
    }

    #[test]
    fn ignorant_belief_is_one_big_block() {
        let b = BeliefFunction::ignorant(5);
        let graph = b.build_graph(&[1, 2, 3, 4, 5], 10);
        let id = identify_sets(&graph);
        assert_eq!(id.blocks.len(), 1);
        assert_eq!(id.blocks[0].len(), 5);
        assert_eq!(id.leaking_blocks().count(), 0, "nothing leaks");
    }

    #[test]
    fn point_valued_belief_identifies_every_group() {
        // BigMart point-valued: blocks = the three frequency groups.
        let supports = vec![5u64, 4, 5, 5, 3, 5];
        let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 10.0).collect();
        let b = BeliefFunction::point_valued(&freqs).unwrap();
        let graph = b.build_graph(&supports, 10);
        let id = identify_sets(&graph);
        assert_eq!(id.block_sizes(), vec![1, 1, 4]);
        // The two singleton groups are outright cracks.
        assert_eq!(id.certain_cracks(), 2);
    }

    #[test]
    fn staircase_identifies_singletons() {
        // Figure 6(a) as intervals: item i believes groups 0..=i, so
        // every prefix is tight and each item is its own block.
        let supports = vec![2u64, 4, 6, 8];
        let f = |s: u64| s as f64 / 10.0;
        let intervals = vec![(f(2), f(2)), (f(2), f(4)), (f(2), f(6)), (f(2), f(8))];
        let graph = GroupedBigraph::new(&supports, 10, &intervals);
        let id = identify_sets(&graph);
        assert_eq!(id.block_sizes(), vec![1, 1, 1, 1]);
        assert_eq!(id.certain_cracks(), 4);
    }

    #[test]
    fn unmatchable_items_are_reported() {
        let supports = vec![5u64, 4, 3];
        let intervals = vec![(0.9, 1.0), (0.0, 1.0), (0.0, 1.0)];
        let graph = GroupedBigraph::new(&supports, 10, &intervals);
        let id = identify_sets(&graph);
        assert_eq!(id.unmatchable, vec![0]);
        // Counts never balance (3 lefts, 2 matchable rights), so no
        // tight block closes.
        assert!(id.blocks.is_empty());
    }

    #[test]
    fn empty_block_helpers() {
        let b = IdentifiedBlock {
            group_range: (0, 0),
            anonymized_items: vec![],
            original_items: vec![],
        };
        assert!(b.is_empty());
        assert!(!b.is_crack());
    }
}

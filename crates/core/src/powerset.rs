//! Powerset belief functions (the Section 8.2 research direction,
//! realized).
//!
//! The paper closes with: "we extend belief functions defined over
//! the domain of items to those defined over the powerset" — a
//! hacker may hold educated guesses about the frequencies of
//! *itemsets*, not just items ("bread+butter sells in 10–12% of
//! baskets"). Itemset knowledge is strictly stronger than item
//! knowledge: two items indistinguishable by frequency may co-occur
//! very differently with a third, known item.
//!
//! We realize the extension as *constraint propagation* on the
//! item-level mapping space: an edge `(x', a)` survives only if the
//! claimed identity can be completed — for every believed itemset `S`
//! containing `a`, there must exist distinct candidate anonymized
//! items for the rest of `S` whose observed co-occurrence frequency
//! (together with `x'`) lies in the believed interval. Pruning runs
//! to fixpoint (like Figure 7, one level up), after which all the
//! item-level machinery — O-estimates, propagation, exact permanents,
//! the sampler — applies to the *pruned* graph.

use std::collections::BTreeMap;

use andi_data::{Database, ItemId};
use andi_graph::DenseBigraph;

use crate::belief::BeliefFunction;
use crate::error::{Error, Result};
use crate::oestimate::OutdegreeProfile;

/// A belief about one original itemset's frequency.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemsetBelief {
    /// The original items of the set (deduplicated, sorted on
    /// construction).
    items: Vec<usize>,
    /// Believed frequency interval of the set.
    interval: (f64, f64),
}

impl ItemsetBelief {
    /// Creates a belief about `items` (at least two — single items
    /// belong in the [`BeliefFunction`]).
    ///
    /// # Errors
    ///
    /// Rejects sets smaller than 2 and invalid intervals.
    pub fn new(items: Vec<usize>, interval: (f64, f64)) -> Result<Self> {
        let mut items = items;
        items.sort_unstable();
        items.dedup();
        if items.len() < 2 {
            return Err(Error::InvalidParameter(
                "itemset beliefs need at least two items".into(),
            ));
        }
        let (l, r) = interval;
        if !(0.0 <= l && l <= r && r <= 1.0) {
            return Err(Error::InvalidInterval {
                item: items[0],
                low: l,
                high: r,
            });
        }
        Ok(ItemsetBelief { items, interval })
    }

    /// The believed items.
    pub fn items(&self) -> &[usize] {
        &self.items
    }

    /// The believed interval.
    pub fn interval(&self) -> (f64, f64) {
        self.interval
    }
}

/// A hacker's combined knowledge: item-level intervals plus itemset
/// frequencies.
#[derive(Clone, Debug)]
pub struct PowersetBelief {
    /// The item-level belief function.
    pub items: BeliefFunction,
    /// Additional itemset beliefs.
    pub sets: Vec<ItemsetBelief>,
}

impl PowersetBelief {
    /// A powerset belief with no set-level knowledge (reduces to the
    /// item analysis).
    pub fn item_only(items: BeliefFunction) -> Self {
        PowersetBelief {
            items,
            sets: Vec::new(),
        }
    }

    /// Adds a set belief.
    ///
    /// # Errors
    ///
    /// The set must fit the domain.
    pub fn with_set(mut self, set: ItemsetBelief) -> Result<Self> {
        if let Some(&max) = set.items.iter().max() {
            if max >= self.items.n_items() {
                return Err(Error::DomainMismatch {
                    expected: self.items.n_items(),
                    got: max + 1,
                });
            }
        }
        self.sets.push(set);
        Ok(self)
    }
}

/// Memoizing observed-support oracle over anonymized itemsets
/// (aligned indexing: anonymized item `i` is original item `i`, so
/// observed set supports equal original ones — anonymization does
/// not perturb co-occurrence).
struct SupportOracle<'a> {
    db: &'a Database,
    cache: BTreeMap<Vec<u32>, u64>,
}

impl<'a> SupportOracle<'a> {
    fn new(db: &'a Database) -> Self {
        SupportOracle {
            db,
            cache: BTreeMap::new(),
        }
    }

    /// Observed frequency of an anonymized itemset.
    fn frequency(&mut self, items: &mut Vec<u32>) -> f64 {
        items.sort_unstable();
        let support = match self.cache.get(items.as_slice()) {
            Some(&s) => s,
            None => {
                let sorted: Vec<ItemId> = items.iter().map(|&i| ItemId(i)).collect();
                let s = self.db.itemset_support(&sorted);
                self.cache.insert(items.clone(), s);
                s
            }
        };
        support as f64 / self.db.n_transactions() as f64
    }
}

/// Result of powerset-constraint pruning.
#[derive(Clone, Debug)]
pub struct PowersetRisk {
    /// The pruned mapping-space graph.
    pub graph: DenseBigraph,
    /// Edges removed by set-level constraints (beyond item-level
    /// consistency).
    pub pruned_edges: usize,
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Crack-probability profile of the pruned graph (after Figure 7
    /// propagation).
    pub profile: OutdegreeProfile,
}

impl PowersetRisk {
    /// The O-estimate on the pruned space.
    pub fn oestimate(&self) -> f64 {
        self.profile.oestimate()
    }

    /// Items identified with certainty once set knowledge is used.
    pub fn certain_cracks(&self) -> usize {
        self.profile.forced_cracks()
    }
}

/// Cap on believed-set size: completion search is exponential in the
/// set size, and beliefs about very large sets are unrealistic.
pub const MAX_SET_SIZE: usize = 5;

/// Analyzes the disclosure risk of releasing (the anonymization of)
/// `db` against a hacker holding `belief`.
///
/// # Errors
///
/// Rejects domain mismatches, oversized set beliefs, and a pruned
/// space with no consistent matching.
/// # Examples
///
/// ```
/// use andi_core::{assess_powerset_risk, BeliefFunction, ItemsetBelief, PowersetBelief};
/// use andi_data::{bigmart, ItemId};
///
/// let db = bigmart();
/// let items = BeliefFunction::point_valued(&db.frequencies()).unwrap();
/// // Knowing how often products 1 and 2 co-sell breaks the
/// // frequency-group camouflage (Lemma 3 alone gives 3.0).
/// let pair = db.itemset_support(&[ItemId(0), ItemId(1)]) as f64 / 10.0;
/// let belief = PowersetBelief::item_only(items)
///     .with_set(ItemsetBelief::new(vec![0, 1], (pair, pair)).unwrap())
///     .unwrap();
/// let risk = assess_powerset_risk(&db, &belief).unwrap();
/// assert!(risk.oestimate() > 3.0);
/// ```
pub fn assess_powerset_risk(db: &Database, belief: &PowersetBelief) -> Result<PowersetRisk> {
    let n = db.n_items();
    if belief.items.n_items() != n {
        return Err(Error::DomainMismatch {
            expected: n,
            got: belief.items.n_items(),
        });
    }
    for set in &belief.sets {
        if set.items.len() > MAX_SET_SIZE {
            return Err(Error::InvalidParameter(format!(
                "set belief over {} items exceeds the supported maximum of {MAX_SET_SIZE}",
                set.items.len()
            )));
        }
    }

    // Level 1: the item-level graph.
    let supports = db.supports();
    let grouped = belief
        .items
        .build_graph(&supports, db.n_transactions() as u64);
    let mut graph = grouped.to_dense();
    let mut oracle = SupportOracle::new(db);

    // Level 2: arc-consistency against every set belief, to fixpoint.
    let mut pruned_edges = 0usize;
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for set in &belief.sets {
            for &a in &set.items {
                let candidates: Vec<usize> = (0..n).filter(|&x| graph.has_edge(x, a)).collect();
                for xp in candidates {
                    if !has_completion(&graph, &mut oracle, set, a, xp) {
                        graph.remove_edge(xp, a);
                        pruned_edges += 1;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let profile = OutdegreeProfile::propagated_dense(graph.clone())?;
    Ok(PowersetRisk {
        graph,
        pruned_edges,
        rounds,
        profile,
    })
}

/// Whether the claim "anonymized `xp` is original `a`" can be
/// completed for the believed set: distinct anonymized candidates
/// for the other members such that the joint observed frequency lies
/// in the believed interval.
fn has_completion(
    graph: &DenseBigraph,
    oracle: &mut SupportOracle<'_>,
    set: &ItemsetBelief,
    a: usize,
    xp: usize,
) -> bool {
    let rest: Vec<usize> = set.items.iter().copied().filter(|&b| b != a).collect();
    let mut chosen: Vec<u32> = vec![xp as u32];
    complete(graph, oracle, set.interval, &rest, 0, &mut chosen)
}

fn complete(
    graph: &DenseBigraph,
    oracle: &mut SupportOracle<'_>,
    interval: (f64, f64),
    rest: &[usize],
    depth: usize,
    chosen: &mut Vec<u32>,
) -> bool {
    if depth == rest.len() {
        let mut items = chosen.clone();
        let f = oracle.frequency(&mut items);
        let (l, r) = interval;
        return l <= f && f <= r;
    }
    let b = rest[depth];
    for yp in 0..graph.n() {
        let yp32 = yp as u32;
        if chosen.contains(&yp32) || !graph.has_edge(yp, b) {
            continue;
        }
        // Monotone prune: adding items to a set can only lower its
        // frequency, so if the partial set is already below `l`,
        // no completion can succeed.
        let mut partial = chosen.clone();
        partial.push(yp32);
        let pf = oracle.frequency(&mut partial);
        if pf < interval.0 {
            continue;
        }
        chosen.push(yp32);
        if complete(graph, oracle, interval, rest, depth + 1, chosen) {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::bigmart;

    fn point_belief(db: &Database) -> BeliefFunction {
        BeliefFunction::point_valued(&db.frequencies()).unwrap()
    }

    #[test]
    fn itemset_belief_validation() {
        assert!(ItemsetBelief::new(vec![1], (0.0, 1.0)).is_err());
        assert!(
            ItemsetBelief::new(vec![1, 1], (0.0, 1.0)).is_err(),
            "dedup to 1"
        );
        assert!(ItemsetBelief::new(vec![1, 2], (0.5, 0.4)).is_err());
        assert!(ItemsetBelief::new(vec![1, 2], (-0.1, 0.4)).is_err());
        let b = ItemsetBelief::new(vec![2, 1], (0.1, 0.2)).unwrap();
        assert_eq!(b.items(), &[1, 2]);
        assert_eq!(b.interval(), (0.1, 0.2));
    }

    #[test]
    fn no_set_beliefs_reduces_to_item_analysis() {
        let db = bigmart();
        let belief = PowersetBelief::item_only(point_belief(&db));
        let risk = assess_powerset_risk(&db, &belief).unwrap();
        assert_eq!(risk.pruned_edges, 0);
        // Item-level point-valued OE = g = 3 (Lemma 3).
        assert!((risk.oestimate() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn pair_knowledge_breaks_group_camouflage() {
        // BigMart: items 0,2,3,5 share frequency 0.5 and are
        // item-indistinguishable. Pair supports differ though:
        // {0,1} co-occur in 4 transactions while {2,1}, {3,1}, {5,1}
        // co-occur in 2, 1, 0. A hacker believing pair {0,1} has
        // frequency exactly 0.4 can eliminate 2, 3, 5 as identities
        // for 0'.
        let db = bigmart();
        assert_eq!(db.itemset_support(&[ItemId(0), ItemId(1)]), 4);
        let belief = PowersetBelief::item_only(point_belief(&db))
            .with_set(ItemsetBelief::new(vec![0, 1], (0.4, 0.4)).unwrap())
            .unwrap();
        let risk = assess_powerset_risk(&db, &belief).unwrap();
        assert!(risk.pruned_edges > 0, "pair knowledge must prune");
        // Item 0 is now uniquely identified (item 1 is a singleton
        // group, so x' = 1' is pinned; the pair then pins 0').
        assert!(
            risk.certain_cracks() >= 2,
            "certain = {}",
            risk.certain_cracks()
        );
        assert!(risk.oestimate() > 3.0, "risk rises above the item-level g");
    }

    #[test]
    fn wrong_pair_beliefs_can_empty_the_space() {
        // A pair belief no candidate pair satisfies kills every
        // completion.
        let db = bigmart();
        let belief = PowersetBelief::item_only(point_belief(&db))
            .with_set(ItemsetBelief::new(vec![0, 1], (0.99, 1.0)).unwrap())
            .unwrap();
        let err = assess_powerset_risk(&db, &belief).unwrap_err();
        assert_eq!(err, Error::EmptyMappingSpace);
    }

    #[test]
    fn triple_beliefs_are_supported() {
        let db = bigmart();
        // {0,1,2} co-occur in t2, t3: frequency 0.2.
        assert_eq!(db.itemset_support(&[ItemId(0), ItemId(1), ItemId(2)]), 2);
        let belief = PowersetBelief::item_only(point_belief(&db))
            .with_set(ItemsetBelief::new(vec![0, 1, 2], (0.2, 0.2)).unwrap())
            .unwrap();
        let risk = assess_powerset_risk(&db, &belief).unwrap();
        // The triple distinguishes 2' from 3'/5' (which have
        // different co-occurrence with {0,1}).
        assert!(risk.oestimate() >= 3.0 - 1e-9);
    }

    #[test]
    fn oversized_sets_are_rejected() {
        let db = bigmart();
        let belief = PowersetBelief::item_only(point_belief(&db))
            .with_set(ItemsetBelief::new(vec![0, 1, 2, 3, 4, 5], (0.0, 1.0)).unwrap())
            .unwrap();
        let err = assess_powerset_risk(&db, &belief).unwrap_err();
        assert!(matches!(err, Error::InvalidParameter(_)));
    }

    #[test]
    fn out_of_domain_sets_are_rejected() {
        let db = bigmart();
        let res = PowersetBelief::item_only(point_belief(&db))
            .with_set(ItemsetBelief::new(vec![0, 99], (0.0, 1.0)).unwrap());
        assert!(matches!(res, Err(Error::DomainMismatch { .. })));
    }

    #[test]
    fn vacuous_set_beliefs_prune_nothing() {
        let db = bigmart();
        let belief = PowersetBelief::item_only(point_belief(&db))
            .with_set(ItemsetBelief::new(vec![0, 1], (0.0, 1.0)).unwrap())
            .unwrap();
        let risk = assess_powerset_risk(&db, &belief).unwrap();
        assert_eq!(risk.pruned_edges, 0, "the [0,1] interval excludes nothing");
        assert!((risk.oestimate() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn set_knowledge_composes_with_interval_items() {
        // Even with loose item intervals, one sharp pair belief
        // raises the estimate.
        let db = bigmart();
        let items = BeliefFunction::widened(&db.frequencies(), 0.1).unwrap();
        let base = assess_powerset_risk(&db, &PowersetBelief::item_only(items.clone()))
            .unwrap()
            .oestimate();
        let sharp = assess_powerset_risk(
            &db,
            &PowersetBelief::item_only(items)
                .with_set(ItemsetBelief::new(vec![0, 1], (0.35, 0.45)).unwrap())
                .unwrap(),
        )
        .unwrap()
        .oestimate();
        assert!(
            sharp >= base - 1e-9,
            "set knowledge cannot lower the risk: {sharp} < {base}"
        );
    }
}

//! Best-effort crack-expectation estimation.
//!
//! The library has three estimators with different domains of
//! applicability:
//!
//! 1. **Convex exact** ([`andi_graph::convex`]) — polynomial for
//!    narrow candidate windows; exact.
//! 2. **Ryser exact** ([`andi_graph::exact`]) — any graph, but
//!    `O(2^n)`; exact.
//! 3. **O-estimate** ([`mod@crate::oestimate`]) — always fast; a close
//!    under-estimate (the paper's Δ analysis).
//!
//! [`best_expected_cracks`] tries them in that order and reports
//! which one answered, so callers (and reports) know whether a
//! number is exact or heuristic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use andi_graph::convex::{expected_cracks_convex, ConvexError};
use andi_graph::exact::{try_expected_cracks, ExactError};
use andi_graph::GroupedBigraph;

use crate::error::{Error, Result};
use crate::oestimate::OutdegreeProfile;

/// Which estimator produced the value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EstimateMethod {
    /// Exact, via the convex-bipartite dynamic program.
    ConvexExact {
        /// The candidate-window width the DP ran with.
        window: usize,
    },
    /// Exact, via Ryser permanents (tiny domains).
    RyserExact,
    /// The O-estimate heuristic (with Figure 7 propagation).
    OEstimate,
}

impl EstimateMethod {
    /// Whether the value is exact rather than heuristic.
    pub fn is_exact(self) -> bool {
        !matches!(self, EstimateMethod::OEstimate)
    }
}

/// An expected-crack value plus its provenance.
#[derive(Clone, Copy, Debug)]
pub struct CrackEstimate {
    /// Expected number of cracks.
    pub value: f64,
    /// Which estimator produced it.
    pub method: EstimateMethod,
}

/// Domain-size ceiling for the Ryser fallback.
const RYSER_LIMIT: usize = 18;

/// Computes the expected number of cracks of a grouped mapping
/// space, exactly when affordable.
///
/// `state_budget` bounds the convex DP (use
/// [`andi_graph::convex::DEFAULT_STATE_BUDGET`] unless memory is
/// tight).
///
/// # Errors
///
/// Returns [`Error::EmptyMappingSpace`] when no consistent perfect
/// matching exists (all three methods agree on detecting this).
/// # Examples
///
/// ```
/// use andi_core::{best_expected_cracks, BeliefFunction};
/// use andi_graph::convex::DEFAULT_STATE_BUDGET;
///
/// let supports = [5u64, 4, 5, 5, 3, 5];
/// let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / 10.0).collect();
/// let belief = BeliefFunction::point_valued(&freqs).unwrap();
/// let graph = belief.build_graph(&supports, 10);
/// let estimate = best_expected_cracks(&graph, DEFAULT_STATE_BUDGET).unwrap();
/// assert!(estimate.method.is_exact());
/// assert!((estimate.value - 3.0).abs() < 1e-9); // Lemma 3, exactly
/// ```
pub fn best_expected_cracks(graph: &GroupedBigraph, state_budget: usize) -> Result<CrackEstimate> {
    // 1. Convex exact.
    match expected_cracks_convex(graph, state_budget) {
        Ok(exact) => {
            return Ok(CrackEstimate {
                value: exact.expected_cracks,
                method: EstimateMethod::ConvexExact {
                    window: exact.window,
                },
            })
        }
        Err(ConvexError::NoPerfectMatching) => return Err(Error::EmptyMappingSpace),
        // Unmatchable items also mean no perfect matching; but the
        // O-estimate semantics still assign the remaining items
        // probabilities, so fall through like BudgetExceeded.
        Err(ConvexError::UnmatchableItem { .. }) | Err(ConvexError::BudgetExceeded { .. }) => {}
    }

    // 2. Ryser exact on tiny domains. Overflow and an empty mapping
    // space are distinct outcomes here: `try_expected_cracks` keeps
    // them apart where the raw `Option` permanents conflated them.
    if graph.n() <= RYSER_LIMIT {
        return match try_expected_cracks(&graph.to_dense()) {
            Ok(value) => Ok(CrackEstimate {
                value,
                method: EstimateMethod::RyserExact,
            }),
            Err(ExactError::EmptyMappingSpace) => Err(Error::EmptyMappingSpace),
            Err(ExactError::Overflow) => {
                Err(Error::Overflow("Ryser permanent overflowed i128".into()))
            }
            Err(ExactError::Interrupted(e)) => Err(e.into()),
        };
    }

    // 3. O-estimate with propagation.
    let profile = cached_profile(graph, true)?;
    Ok(CrackEstimate {
        value: profile.oestimate(),
        method: EstimateMethod::OEstimate,
    })
}

/// Entry cap on the profile memo. Eviction is per-entry LRU (not a
/// wholesale clear): a long-running server sweeping many distinct
/// beliefs keeps its hot working set while cold entries age out.
const PROFILE_CACHE_CAP: usize = 256;

/// A bounded, deterministic least-recently-used memo.
///
/// Recency is a logical tick counter bumped on every hit and insert —
/// no wall clock — so eviction order is a pure function of the access
/// sequence. When full, the entry with the smallest tick is evicted;
/// ties are impossible (ticks are unique) and the scan walks the
/// `BTreeMap` in key order, so the behavior is identical across runs
/// and thread counts for a fixed access sequence.
struct ProfileLru {
    tick: u64,
    entries: BTreeMap<(u64, bool), (u64, Arc<OutdegreeProfile>)>,
}

impl ProfileLru {
    const fn new() -> Self {
        ProfileLru {
            tick: 0,
            entries: BTreeMap::new(),
        }
    }

    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, key: &(u64, bool)) -> Option<Arc<OutdegreeProfile>> {
        let tick = self.touch();
        let (last_used, profile) = self.entries.get_mut(key)?;
        *last_used = tick;
        Some(Arc::clone(profile))
    }

    fn insert(&mut self, key: (u64, bool), profile: Arc<OutdegreeProfile>) {
        let tick = self.touch();
        if !self.entries.contains_key(&key) && self.entries.len() >= PROFILE_CACHE_CAP {
            if let Some(coldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&coldest);
            }
        }
        self.entries.insert(key, (tick, profile));
    }
}

type ProfileCache = Mutex<ProfileLru>;

fn profile_cache() -> &'static ProfileCache {
    static CACHE: OnceLock<ProfileCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(ProfileLru::new()))
}

/// Locks the cache, tolerating poisoning: the guarded map is a pure
/// memo, so a panic mid-update can at worst leave a stale or missing
/// entry — never an inconsistent one worth propagating a panic for.
fn lock_cache() -> std::sync::MutexGuard<'static, ProfileLru> {
    profile_cache()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Structural fingerprint of a grouped mapping space: FNV-1a over the
/// domain size, transaction count, group supports/sizes, each item's
/// frequency group and each item's candidate group range. Two graphs
/// share a fingerprint iff they were built from the same (supports,
/// n_transactions, belief intervals) modulo hash collisions — the
/// belief only enters `GroupedBigraph` through exactly these fields.
pub fn graph_fingerprint(graph: &GroupedBigraph) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(graph.n() as u64);
    mix(graph.n_transactions());
    for &s in graph.group_supports() {
        mix(s);
    }
    for &s in graph.group_sizes() {
        mix(s as u64);
    }
    for i in 0..graph.n() {
        mix(graph.left_group_of(i) as u64);
        match graph.right_range_of(i) {
            Some((lo, hi)) => {
                mix(lo as u64 + 1);
                mix(hi as u64 + 1);
            }
            None => mix(0),
        }
    }
    h
}

/// Memoized [`OutdegreeProfile`] lookup keyed by the graph's
/// structural fingerprint (which encodes the belief and supports) and
/// the propagation flag. Repeated α/τ sweeps over the same release —
/// the recipe's common shape — rebuild the profile once instead of
/// per call; the `Arc` is shared, never cloned deep.
///
/// # Errors
///
/// Propagates [`OutdegreeProfile::propagated`]'s empty-mapping-space
/// error (never cached).
pub fn cached_profile(graph: &GroupedBigraph, propagated: bool) -> Result<Arc<OutdegreeProfile>> {
    let key = (graph_fingerprint(graph), propagated);
    if let Some(hit) = lock_cache().get(&key) {
        return Ok(hit);
    }
    let profile = Arc::new(if propagated {
        OutdegreeProfile::propagated(graph)?
    } else {
        OutdegreeProfile::plain(graph)
    });
    lock_cache().insert(key, Arc::clone(&profile));
    Ok(profile)
}

/// Explicitly drops every memoized profile for a graph fingerprint
/// (both the plain and the propagated variant) and returns how many
/// entries were removed. This is the delta-update invalidation path:
/// after a database edit, callers that re-key on the *old* graph —
/// or hold a stale fingerprint — must be unable to observe the
/// pre-edit profile, and the regression test below pins that a stale
/// entry can never be served after invalidation.
pub fn invalidate_profile(fingerprint: u64) -> usize {
    let mut cache = lock_cache();
    let mut removed = 0usize;
    for flag in [false, true] {
        if cache.entries.remove(&(fingerprint, flag)).is_some() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::BeliefFunction;

    const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];

    fn freqs() -> Vec<f64> {
        BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect()
    }

    #[test]
    fn point_valued_goes_convex() {
        let b = BeliefFunction::point_valued(&freqs()).unwrap();
        let g = b.build_graph(&BIGMART_SUPPORTS, 10);
        let e = best_expected_cracks(&g, 1_000_000).unwrap();
        assert_eq!(e.method, EstimateMethod::ConvexExact { window: 1 });
        assert!(e.method.is_exact());
        assert!((e.value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn belief_h_is_exact_too() {
        // h's widest interval spans all three groups: window 3, still
        // affordable; must equal the Ryser value 1.8125.
        let h = BeliefFunction::from_intervals(vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ])
        .unwrap();
        let g = h.build_graph(&BIGMART_SUPPORTS, 10);
        let e = best_expected_cracks(&g, 1_000_000).unwrap();
        assert!(e.method.is_exact());
        assert!((e.value - 1.8125).abs() < 1e-9, "got {}", e.value);
    }

    #[test]
    fn tiny_budget_falls_back_to_ryser_then_oe() {
        let h = BeliefFunction::widened(&freqs(), 0.1).unwrap();
        let g = h.build_graph(&BIGMART_SUPPORTS, 10);
        // Budget 0 kills the convex DP; n = 6 <= Ryser limit.
        let e = best_expected_cracks(&g, 0).unwrap();
        assert_eq!(e.method, EstimateMethod::RyserExact);
    }

    #[test]
    fn large_noncompliant_domains_use_oe() {
        // 30 items, one unmatchable: convex refuses, Ryser is out of
        // range, OE answers.
        let supports: Vec<u64> = (1..=30).collect();
        let mut intervals: Vec<(f64, f64)> = supports
            .iter()
            .map(|&s| {
                let f = s as f64 / 30.0;
                ((f - 0.05).max(0.0), (f + 0.05).min(1.0))
            })
            .collect();
        intervals[0] = (0.99, 1.0); // unmatchable
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let g = b.build_graph(&supports, 30);
        let e = best_expected_cracks(&g, 0).unwrap();
        assert_eq!(e.method, EstimateMethod::OEstimate);
        assert!(!e.method.is_exact());
    }

    #[test]
    fn profile_cache_shares_and_discriminates() {
        let b = BeliefFunction::widened(&freqs(), 0.1).unwrap();
        let g = b.build_graph(&BIGMART_SUPPORTS, 10);
        let p1 = cached_profile(&g, false).unwrap();
        let p2 = cached_profile(&g, false).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "second lookup must hit the cache");

        // A structurally identical rebuild (fresh allocation) still
        // hits: the key is the fingerprint, not the address.
        let g_again = b.build_graph(&BIGMART_SUPPORTS, 10);
        let p3 = cached_profile(&g_again, false).unwrap();
        assert!(Arc::ptr_eq(&p1, &p3));

        // The propagation flag and a different belief both miss.
        let p_prop = cached_profile(&g, true).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p_prop));
        let wider = BeliefFunction::widened(&freqs(), 0.2).unwrap();
        let g_wide = wider.build_graph(&BIGMART_SUPPORTS, 10);
        let p_wide = cached_profile(&g_wide, false).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p_wide));
        assert_ne!(
            graph_fingerprint(&g),
            graph_fingerprint(&g_wide),
            "wider belief must change the fingerprint"
        );

        // Cached values agree with direct construction.
        let direct = OutdegreeProfile::plain(&g);
        assert_eq!(p1.probabilities(), direct.probabilities());
    }

    #[test]
    fn lru_keeps_hot_entry_and_hits_stay_bit_identical() {
        let b = BeliefFunction::widened(&freqs(), 0.15).unwrap();
        let g = b.build_graph(&BIGMART_SUPPORTS, 10);
        let hot = cached_profile(&g, true).unwrap();

        // Flood the memo with more distinct entries than the cap,
        // re-touching the hot entry after every insert so it is never
        // the least-recently-used — it must survive the whole sweep.
        for i in 0..(PROFILE_CACHE_CAP as u64 + 16) {
            let supports = [i + 1, i + 2];
            let filler = BeliefFunction::from_intervals(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
            let fg = filler.build_graph(&supports, 1_000);
            cached_profile(&fg, false).unwrap();
            let again = cached_profile(&g, true).unwrap();
            assert!(
                Arc::ptr_eq(&hot, &again),
                "hot entry evicted after filler {i}"
            );
        }

        // The earliest filler entries were the coldest and must be
        // gone: a re-lookup rebuilds (fresh Arc)...
        let filler0 = BeliefFunction::from_intervals(vec![(0.0, 1.0), (0.0, 1.0)]).unwrap();
        let fg0 = filler0.build_graph(&[1u64, 2], 1_000);
        let key0 = (graph_fingerprint(&fg0), false);
        let cached0 = lock_cache().get(&key0);
        assert!(cached0.is_none(), "coldest filler should have been evicted");

        // ...and a cache hit is bit-identical to cold-path
        // construction, for both profile flavors.
        let rebuilt = cached_profile(&fg0, false).unwrap();
        assert_eq!(
            rebuilt.probabilities(),
            OutdegreeProfile::plain(&fg0).probabilities()
        );
        assert_eq!(
            hot.probabilities(),
            OutdegreeProfile::propagated(&g).unwrap().probabilities()
        );
    }

    #[test]
    fn invalidate_profile_prevents_serving_stale_entries() {
        // A distinctive graph unlikely to collide with other tests'
        // cache entries.
        let b = BeliefFunction::from_intervals(vec![(0.0, 1.0), (0.25, 0.75), (0.5, 0.5)]).unwrap();
        let g = b.build_graph(&[9u64, 5, 13], 26);
        let fp = graph_fingerprint(&g);

        let plain = cached_profile(&g, false).unwrap();
        let prop = cached_profile(&g, true).unwrap();
        // Both flavors are cached: a second lookup shares the Arc.
        assert!(Arc::ptr_eq(&plain, &cached_profile(&g, false).unwrap()));
        assert!(Arc::ptr_eq(&prop, &cached_profile(&g, true).unwrap()));

        // Invalidation removes both variants...
        assert_eq!(invalidate_profile(fp), 2);
        assert!(lock_cache().get(&(fp, false)).is_none());
        assert!(lock_cache().get(&(fp, true)).is_none());
        // ...and is idempotent.
        assert_eq!(invalidate_profile(fp), 0);

        // The stale Arcs can never be served again: the next lookup
        // rebuilds fresh allocations that still agree with direct
        // construction bit-for-bit.
        let fresh = cached_profile(&g, false).unwrap();
        assert!(
            !Arc::ptr_eq(&plain, &fresh),
            "stale entry served after invalidation"
        );
        assert_eq!(
            fresh.probabilities(),
            OutdegreeProfile::plain(&g).probabilities()
        );
    }

    #[test]
    fn empty_space_is_reported() {
        let supports = [4u64, 8];
        let intervals = vec![(0.4, 0.4), (0.4, 0.4)];
        let b = BeliefFunction::from_intervals(intervals).unwrap();
        let g = b.build_graph(&supports, 10);
        let err = best_expected_cracks(&g, 1_000_000).unwrap_err();
        assert_eq!(err, Error::EmptyMappingSpace);
    }
}

//! Closed-form crack expectations for the two extremes (Section 3).
//!
//! * Lemma 1 — ignorant belief function (complete bipartite graph):
//!   `E[X] = 1`.
//! * Lemma 2 — ignorant, restricted to a subset of interest `I₁`:
//!   `E[X] = n₁ / n`.
//! * Lemma 3 — compliant point-valued belief function: `E[X] = g`,
//!   the number of distinct observed frequencies.
//! * Lemma 4 — compliant point-valued restricted to `I₁`:
//!   `E[X] = Σᵢ cᵢ / nᵢ` over frequency groups.

use andi_data::FrequencyGroups;

use crate::error::{Error, Result};

/// Lemma 1: expected cracks under the ignorant belief function.
///
/// The mapping space is the complete bipartite graph; each of the `n`
/// anonymized items is cracked with probability `1/n`, so `E[X] = 1`
/// for any non-empty domain.
pub fn ignorant_expected_cracks(n_items: usize) -> f64 {
    if n_items == 0 {
        0.0
    } else {
        1.0
    }
}

/// Lemma 2: expected cracks of the items of interest `I₁ ⊆ I` under
/// the ignorant belief function: `n₁ / n`.
///
/// # Errors
///
/// `n₁` must not exceed `n`, and `n` must be positive.
pub fn ignorant_expected_cracks_of_subset(n_items: usize, n_interest: usize) -> Result<f64> {
    if n_items == 0 {
        return Err(Error::InvalidParameter("empty domain".into()));
    }
    if n_interest > n_items {
        return Err(Error::InvalidParameter(format!(
            "subset of interest ({n_interest}) larger than the domain ({n_items})"
        )));
    }
    Ok(n_interest as f64 / n_items as f64)
}

/// Lemma 3: expected cracks under the compliant point-valued belief
/// function equal the number of frequency groups `g`.
///
/// Items sharing a frequency camouflage each other: within each group
/// the graph is complete, contributing exactly one expected crack
/// (Lemma 1), and groups are independent.
pub fn point_valued_expected_cracks(groups: &FrequencyGroups) -> f64 {
    groups.n_groups() as f64
}

/// Lemma 4: expected cracks of the items of interest under the
/// compliant point-valued belief function: `Σᵢ cᵢ / nᵢ`, where group
/// `i` holds `nᵢ` items of which `cᵢ` are interesting.
///
/// `interest[x]` flags original item `x` as interesting.
///
/// # Errors
///
/// The mask must cover the whole domain.
pub fn point_valued_expected_cracks_of_subset(
    groups: &FrequencyGroups,
    interest: &[bool],
) -> Result<f64> {
    if interest.len() != groups.n_items() {
        return Err(Error::DomainMismatch {
            expected: groups.n_items(),
            got: interest.len(),
        });
    }
    let mut e = 0.0;
    for g in &groups.groups {
        let n_i = g.items.len();
        let c_i = g.items.iter().filter(|x| interest[x.index()]).count();
        if c_i > 0 {
            e += c_i as f64 / n_i as f64;
        }
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::{bigmart, FrequencyGroups};

    #[test]
    fn lemma_1_is_one_crack() {
        assert_eq!(ignorant_expected_cracks(1), 1.0);
        assert_eq!(ignorant_expected_cracks(16_470), 1.0);
        assert_eq!(ignorant_expected_cracks(0), 0.0);
    }

    #[test]
    fn lemma_2_scales_with_subset() {
        assert_eq!(ignorant_expected_cracks_of_subset(10, 5).unwrap(), 0.5);
        assert_eq!(ignorant_expected_cracks_of_subset(4, 4).unwrap(), 1.0);
        assert_eq!(ignorant_expected_cracks_of_subset(4, 0).unwrap(), 0.0);
        assert!(ignorant_expected_cracks_of_subset(4, 5).is_err());
        assert!(ignorant_expected_cracks_of_subset(0, 0).is_err());
    }

    #[test]
    fn lemma_3_on_bigmart() {
        // BigMart has three frequency groups (0.3, 0.4, 0.5).
        let fg = FrequencyGroups::of_database(&bigmart());
        assert_eq!(point_valued_expected_cracks(&fg), 3.0);
    }

    #[test]
    fn lemma_3_equals_domain_size_when_all_distinct() {
        let fg = FrequencyGroups::from_supports(&[1, 2, 3, 4], 10);
        assert_eq!(point_valued_expected_cracks(&fg), 4.0);
    }

    #[test]
    fn lemma_4_on_bigmart() {
        let fg = FrequencyGroups::of_database(&bigmart());
        // Interested in items 1 (freq .4, its own group) and 0
        // (freq .5, group of four): E = 1/1 + 1/4.
        let mut interest = vec![false; 6];
        interest[1] = true;
        interest[0] = true;
        let e = point_valued_expected_cracks_of_subset(&fg, &interest).unwrap();
        assert!((e - 1.25).abs() < 1e-12);
    }

    #[test]
    fn lemma_4_full_interest_reduces_to_lemma_3() {
        let fg = FrequencyGroups::of_database(&bigmart());
        let interest = vec![true; 6];
        let e = point_valued_expected_cracks_of_subset(&fg, &interest).unwrap();
        assert!((e - point_valued_expected_cracks(&fg)).abs() < 1e-12);
    }

    #[test]
    fn lemma_4_empty_interest_is_zero() {
        let fg = FrequencyGroups::of_database(&bigmart());
        let e = point_valued_expected_cracks_of_subset(&fg, &[false; 6]).unwrap();
        assert_eq!(e, 0.0);
    }

    #[test]
    fn lemma_4_rejects_bad_mask() {
        let fg = FrequencyGroups::of_database(&bigmart());
        assert!(point_valued_expected_cracks_of_subset(&fg, &[true; 3]).is_err());
    }
}

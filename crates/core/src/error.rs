//! Error types for the core analysis crate.

use std::fmt;

/// Errors raised by the core analysis APIs.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// Two structures that must cover the same domain disagree in
    /// size.
    DomainMismatch { expected: usize, got: usize },
    /// A frequency or interval endpoint fell outside `[0, 1]` or the
    /// interval was inverted.
    InvalidInterval { item: usize, low: f64, high: f64 },
    /// A parameter outside its documented range.
    InvalidParameter(String),
    /// The mapping space admits no consistent matching to analyze.
    EmptyMappingSpace,
    /// The underlying matching sampler failed.
    Sampler(String),
    /// A database-layer failure (construction, relabeling).
    Data(String),
    /// A worker task panicked; the pool was drained cleanly and the
    /// payload captured instead of aborting the process.
    WorkerPanic { task: usize, payload: String },
    /// The wall-clock budget of a budgeted run was exceeded.
    BudgetExceeded { budget_ms: u64 },
    /// A [`crate::parallel::CancelToken`] fired mid-run.
    Cancelled,
    /// An exact computation overflowed its accumulator.
    Overflow(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DomainMismatch { expected, got } => {
                write!(f, "domain size mismatch: expected {expected}, got {got}")
            }
            Error::InvalidInterval { item, low, high } => {
                // The endpoints are belief masses derived from the
                // owner's data; rendering them would leak through
                // error channels. Name the failure shape, not the
                // values (the oracle's structured JSON path carries
                // them where a machine consumer is sanctioned).
                let shape = if low > high {
                    "inverted"
                } else {
                    "endpoint outside [0, 1]"
                };
                write!(f, "item {item}: invalid belief interval ({shape})")
            }
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::EmptyMappingSpace => {
                write!(f, "the space of consistent crack mappings is empty")
            }
            Error::Sampler(msg) => write!(f, "sampler failure: {msg}"),
            Error::Data(msg) => write!(f, "data error: {msg}"),
            Error::WorkerPanic { task, payload } => {
                write!(f, "worker task {task} panicked: {payload}")
            }
            Error::BudgetExceeded { budget_ms } => {
                write!(f, "wall-clock budget of {budget_ms} ms exceeded")
            }
            Error::Cancelled => write!(f, "computation cancelled"),
            Error::Overflow(msg) => write!(f, "arithmetic overflow: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<andi_graph::par::ExecError> for Error {
    fn from(e: andi_graph::par::ExecError) -> Self {
        match e {
            andi_graph::par::ExecError::Cancelled => Error::Cancelled,
            andi_graph::par::ExecError::BudgetExceeded { budget_ms } => {
                Error::BudgetExceeded { budget_ms }
            }
            andi_graph::par::ExecError::WorkerPanic { task, payload } => {
                Error::WorkerPanic { task, payload }
            }
        }
    }
}

/// Convenient result alias for the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Workspace-conventional name for the core error type; downstream
/// crates and docs refer to fallible analysis APIs as returning
/// `AndiError` results.
pub type AndiError = Error;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::DomainMismatch {
            expected: 5,
            got: 3,
        };
        assert!(e.to_string().contains("expected 5"));
        let e = Error::InvalidInterval {
            item: 2,
            low: 0.7,
            high: 0.3,
        };
        assert!(e.to_string().contains("item 2"));
        assert!(e.to_string().contains("inverted"));
        assert!(Error::EmptyMappingSpace.to_string().contains("empty"));
        assert!(Error::InvalidParameter("tau".into())
            .to_string()
            .contains("tau"));
        assert!(Error::Sampler("x".into()).to_string().contains("x"));
        assert!(Error::Data("y".into()).to_string().contains("y"));
        let e = Error::WorkerPanic {
            task: 7,
            payload: "boom".into(),
        };
        assert!(e.to_string().contains("task 7") && e.to_string().contains("boom"));
        assert!(Error::BudgetExceeded { budget_ms: 250 }
            .to_string()
            .contains("250 ms"));
        assert!(Error::Cancelled.to_string().contains("cancelled"));
        assert!(Error::Overflow("i128".into()).to_string().contains("i128"));
    }

    #[test]
    fn invalid_interval_display_never_echoes_endpoints() {
        // Regression pin for the leak-in-error fix: belief-interval
        // endpoints are derived from the owner's data and must not
        // surface in the human-readable error channel.
        let e = Error::InvalidInterval {
            item: 4,
            low: 0.7,
            high: 0.3,
        };
        assert_eq!(e.to_string(), "item 4: invalid belief interval (inverted)");
        let e = Error::InvalidInterval {
            item: 1,
            low: -0.25,
            high: 1.5,
        };
        assert_eq!(
            e.to_string(),
            "item 1: invalid belief interval (endpoint outside [0, 1])"
        );
        assert!(!e.to_string().contains("0.25") && !e.to_string().contains("1.5"));
    }

    #[test]
    fn exec_errors_convert_structurally() {
        use andi_graph::par::ExecError;
        assert_eq!(Error::from(ExecError::Cancelled), Error::Cancelled);
        assert_eq!(
            Error::from(ExecError::BudgetExceeded { budget_ms: 9 }),
            Error::BudgetExceeded { budget_ms: 9 }
        );
        assert_eq!(
            Error::from(ExecError::WorkerPanic {
                task: 3,
                payload: "p".into()
            }),
            Error::WorkerPanic {
                task: 3,
                payload: "p".into()
            }
        );
    }
}

//! The Assess-Risk recipe (Section 6, Figure 8).
//!
//! The data owner's decision procedure:
//!
//! 1. compute `g`, the Lemma 3 expected cracks under the compliant
//!    point-valued belief function; disclose if `g <= τ·n`;
//! 2. otherwise widen to the compliant interval belief function with
//!    half-width `δ_med` (the median frequency-group gap) and
//!    disclose if its O-estimate is within tolerance;
//! 3. otherwise binary-search the largest degree of compliancy
//!    `α_max` whose (mask-averaged) O-estimate stays within
//!    tolerance — the owner then judges whether a hacker could
//!    plausibly guess that fraction of intervals correctly.
//!
//! The α anchoring follows Section 6.2: each averaging run fixes a
//! random item order, and the compliant subset for any `α` is a
//! prefix of it. Prefixes are nested, so Lemma 10's monotonicity
//! holds *exactly* within a run and the binary search is sound; the
//! search itself runs on integer compliant-item counts, avoiding
//! floating-point fixpoints.

use andi_data::FrequencyGroups;
use andi_graph::exact::ExactError;
use andi_graph::par;
use andi_graph::par::{Budget, ExecError};
use andi_graph::sampler::SamplerConfig;
use andi_graph::{Matching, SamplerError, MAX_PERMANENT_N};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::belief::BeliefFunction;
use crate::error::{Error, Result};
use crate::oestimate::OutdegreeProfile;
use crate::report::{Provenance, Rung};

/// Number of compliant items for a degree of compliancy `alpha` over
/// a domain of `n` items: `round(alpha·n)`, clamped to `[0, n]`.
///
/// This is *the* α→count quantization used everywhere the recipe
/// anchors a fractional degree of compliancy to a concrete compliant
/// subset (the binary search works on these integer counts directly,
/// so the two directions agree). Round-half-up at the midpoints:
/// `compliant_count(0.25, 6) = 2` (1.5 rounds away from zero).
///
/// Negative or NaN `alpha` clamps to 0; `alpha > 1` clamps to `n`.
pub fn compliant_count(alpha: f64, n: usize) -> usize {
    let scaled = (alpha * n as f64).round();
    if scaled.is_nan() || scaled <= 0.0 {
        0
    } else {
        (scaled as usize).min(n)
    }
}

/// Tuning knobs for [`assess_risk`].
#[derive(Clone, Copy, Debug)]
pub struct RecipeConfig {
    /// The owner's degree of tolerance `τ`: the acceptable expected
    /// fraction of cracked items.
    pub tolerance: f64,
    /// Averaging runs for the α anchoring (the paper uses 5).
    pub n_mask_runs: usize,
    /// Whether to apply Figure 7 propagation before reading
    /// outdegrees (the paper's default; costs a dense
    /// materialization).
    pub use_propagation: bool,
    /// Try the convex-exact crack marginals first (see
    /// [`andi_graph::convex`]); falls back to the O-estimate when
    /// the DP exceeds its state budget. Exact at `α = 1`; below it,
    /// the masked sum interpolates over exact marginals.
    pub use_exact: bool,
    /// State budget for the exact DP (only read when `use_exact`).
    pub exact_state_budget: usize,
    /// RNG seed for the mask permutations.
    pub seed: u64,
    /// Swap-walk schedule for the matching-sampler rung of the
    /// budgeted degradation ladder (only read by
    /// [`assess_risk_budgeted`]).
    pub sampler_schedule: SamplerConfig,
}

impl Default for RecipeConfig {
    fn default() -> Self {
        RecipeConfig {
            tolerance: 0.1,
            n_mask_runs: 5,
            use_propagation: true,
            use_exact: false,
            exact_state_budget: andi_graph::convex::DEFAULT_STATE_BUDGET,
            seed: 0xA55E55,
            sampler_schedule: SamplerConfig::quick(),
        }
    }
}

/// The recipe's verdict.
#[derive(Clone, Debug, PartialEq)]
pub enum RiskDecision {
    /// Step 2: even a point-valued-compliant hacker cracks at most
    /// `τ·n` items in expectation — disclose.
    DiscloseAtPointValued,
    /// Step 7: the δ_med interval O-estimate is within tolerance —
    /// disclose.
    DiscloseAtFullCompliance,
    /// Steps 8–10: full compliance exceeds tolerance; the owner must
    /// judge whether `α_max` is comfortably high.
    AlphaMax {
        /// Largest degree of compliancy within tolerance.
        alpha_max: f64,
        /// The mask-averaged O-estimate at `α_max` (in items).
        oestimate_at_alpha: f64,
    },
}

/// Full transcript of a recipe run.
#[derive(Clone, Debug)]
pub struct RiskAssessment {
    /// Domain size `n`.
    pub n_items: usize,
    /// The tolerance used.
    pub tolerance: f64,
    /// Lemma 3 `g`: expected cracks under point-valued compliance.
    pub point_valued_cracks: f64,
    /// The interval half-width `δ_med` (median group gap; 0 when the
    /// data has a single frequency group).
    pub delta_med: f64,
    /// O-estimate of the `δ_med`-widened compliant belief function.
    pub full_compliance_oe: f64,
    /// The verdict.
    pub decision: RiskDecision,
}

impl RiskAssessment {
    /// Whether the recipe recommends disclosure outright (steps 2/7).
    pub fn discloses(&self) -> bool {
        matches!(
            self.decision,
            RiskDecision::DiscloseAtPointValued | RiskDecision::DiscloseAtFullCompliance
        )
    }

    /// `α_max` if the recipe reached the binary search.
    pub fn alpha_max(&self) -> Option<f64> {
        match self.decision {
            RiskDecision::AlphaMax { alpha_max, .. } => Some(alpha_max),
            _ => None,
        }
    }
}

impl std::fmt::Display for RiskAssessment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "domain size n           : {}", self.n_items)?;
        writeln!(f, "tolerance tau           : {}", self.tolerance)?;
        writeln!(
            f,
            "budget tau*n            : {:.2}",
            self.tolerance * self.n_items as f64
        )?;
        writeln!(
            f,
            "point-valued cracks (g) : {:.0}",
            self.point_valued_cracks
        )?;
        writeln!(f, "delta_med               : {:.6}", self.delta_med)?;
        writeln!(
            f,
            "full-compliance OE      : {:.2}",
            self.full_compliance_oe
        )?;
        match &self.decision {
            RiskDecision::DiscloseAtPointValued => write!(
                f,
                "verdict                 : disclose (safe even against exact frequencies)"
            ),
            RiskDecision::DiscloseAtFullCompliance => write!(
                f,
                "verdict                 : disclose (interval knowledge within tolerance)"
            ),
            RiskDecision::AlphaMax {
                alpha_max,
                oestimate_at_alpha,
            } => write!(
                f,
                "verdict                 : judgement call — alpha_max = {alpha_max:.3} \
                 (OE there {oestimate_at_alpha:.2})"
            ),
        }
    }
}

/// Runs Assess-Risk (Figure 8) on an observed support profile.
///
/// # Examples
///
/// ```
/// use andi_core::{assess_risk, RecipeConfig, RiskDecision};
///
/// let supports = [5u64, 4, 5, 5, 3, 5]; // BigMart, m = 10
///
/// // Generous tolerance: g = 3 <= 0.6 * 6, disclose right away.
/// let relaxed = assess_risk(&supports, 10, &RecipeConfig {
///     tolerance: 0.6, ..RecipeConfig::default()
/// }).unwrap();
/// assert_eq!(relaxed.decision, RiskDecision::DiscloseAtPointValued);
///
/// // Tight tolerance: the recipe reports how much the hacker would
/// // need to know.
/// let strict = assess_risk(&supports, 10, &RecipeConfig {
///     tolerance: 0.1, ..RecipeConfig::default()
/// }).unwrap();
/// assert!(strict.alpha_max().is_some());
/// ```
///
/// # Errors
///
/// Rejects `τ` outside `(0, 1]`, an empty profile, or an empty
/// mapping space after propagation.
pub fn assess_risk(
    supports: &[u64],
    n_transactions: u64,
    config: &RecipeConfig,
) -> Result<RiskAssessment> {
    if !(config.tolerance > 0.0 && config.tolerance <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "tolerance must be in (0, 1], got {}",
            config.tolerance
        )));
    }
    if supports.is_empty() {
        return Err(Error::InvalidParameter("empty support profile".into()));
    }
    if config.n_mask_runs == 0 {
        return Err(Error::InvalidParameter("need at least one mask run".into()));
    }
    let n = supports.len();
    let budget = config.tolerance * n as f64;

    // Steps 1-2: Lemma 3.
    let groups = FrequencyGroups::from_supports(supports, n_transactions);
    let g = groups.n_groups() as f64;

    // Steps 3-5: δ_med-widened compliant interval belief function.
    let delta_med = groups.median_gap().unwrap_or(0.0);
    let m = n_transactions as f64;
    let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / m).collect();
    let belief = BeliefFunction::widened(&freqs, delta_med)?;

    // Step 6: crack probabilities — exact convex marginals when
    // requested and affordable, otherwise the O-estimate (with the
    // Figure 7 refinement when configured).
    let graph = belief.build_graph(supports, n_transactions);
    let probs: Vec<f64> = if config.use_exact {
        match andi_graph::convex::crack_probabilities_convex(&graph, config.exact_state_budget) {
            Ok(p) => p,
            Err(andi_graph::convex::ConvexError::NoPerfectMatching) => {
                return Err(Error::EmptyMappingSpace)
            }
            Err(_) => oe_probabilities(&graph, config)?,
        }
    } else {
        oe_probabilities(&graph, config)?
    };
    let full_oe: f64 = probs.iter().sum();

    if g <= budget {
        return Ok(RiskAssessment {
            n_items: n,
            tolerance: config.tolerance,
            point_valued_cracks: g,
            delta_med,
            full_compliance_oe: full_oe,
            decision: RiskDecision::DiscloseAtPointValued,
        });
    }

    // Step 7.
    if full_oe <= budget {
        return Ok(RiskAssessment {
            n_items: n,
            tolerance: config.tolerance,
            point_valued_cracks: g,
            delta_med,
            full_compliance_oe: full_oe,
            decision: RiskDecision::DiscloseAtFullCompliance,
        });
    }

    // Steps 8-9: binary search the largest compliant-item count whose
    // mask-averaged OE fits the budget. Per-run nested prefixes give
    // exact monotonicity; per-run prefix sums make each probe O(1).
    let prefix_sums = mask_prefix_sums(
        &probs,
        config.n_mask_runs,
        config.seed,
        par::available_threads(),
    );
    let avg_oe_at = |c: usize| -> f64 {
        prefix_sums.iter().map(|ps| ps[c]).sum::<f64>() / prefix_sums.len() as f64
    };

    // avg_oe_at(0) = 0 <= budget; avg_oe_at(n) = full_oe > budget.
    let (mut lo, mut hi) = (0usize, n);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if avg_oe_at(mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    Ok(RiskAssessment {
        n_items: n,
        tolerance: config.tolerance,
        point_valued_cracks: g,
        delta_med,
        full_compliance_oe: full_oe,
        decision: RiskDecision::AlphaMax {
            alpha_max: lo as f64 / n as f64,
            oestimate_at_alpha: avg_oe_at(lo),
        },
    })
}

/// A budgeted assessment: the ordinary transcript plus the
/// provenance of the crack-probability estimate behind it — which
/// rung of the degradation ladder answered, every rung that tripped
/// on the way down, and the budget spent.
#[derive(Clone, Debug)]
pub struct BudgetedAssessment {
    /// The Assess-Risk transcript, same shape as [`assess_risk`]'s.
    pub assessment: RiskAssessment,
    /// Where the numbers came from.
    pub provenance: Provenance,
}

impl BudgetedAssessment {
    /// Whether a rung below exact-permanent answered.
    pub fn is_degraded(&self) -> bool {
        self.provenance.degraded
    }
}

/// [`assess_risk`] under a wall-clock [`Budget`] and cancel token,
/// with [`par::available_threads`] workers.
///
/// See [`assess_risk_budgeted_with_threads`].
pub fn assess_risk_budgeted(
    supports: &[u64],
    n_transactions: u64,
    config: &RecipeConfig,
    budget: &Budget,
) -> Result<BudgetedAssessment> {
    assess_risk_budgeted_with_threads(
        supports,
        n_transactions,
        config,
        budget,
        par::available_threads(),
    )
}

/// The budgeted Assess-Risk recipe: the same Figure 8 pipeline as
/// [`assess_risk`], but the crack probabilities come from a
/// graceful-degradation ladder that descends one rung each time the
/// budget trips:
///
/// 1. **exact-permanent** — Ryser crack probabilities (skipped
///    outright above [`MAX_PERMANENT_N`] items);
/// 2. **matching-sampler** — the swap-walk's empirical crack
///    frequencies under `config.sampler_schedule`;
/// 3. **o-estimate** — the closed-form estimate; probe-free and
///    unconditional, so the ladder always lands.
///
/// A rung descends on a deadline trip, an isolated worker panic, or
/// (for the exact rung) permanent overflow; the returned
/// [`Provenance`] records the answering rung and every trip. The α
/// mask runs after the ladder keep polling the cancel token (the
/// deadline no longer applies — a degraded answer is still an
/// answer, so the tail runs to completion unless cancelled).
///
/// # Errors
///
/// Parameter validation as in [`assess_risk`];
/// [`Error::EmptyMappingSpace`] when the exact rung proves there is
/// no consistent matching; [`Error::Cancelled`] as soon as the
/// [`andi_graph::CancelToken`] fires — cancellation aborts the whole
/// run rather than degrading it.
pub fn assess_risk_budgeted_with_threads(
    supports: &[u64],
    n_transactions: u64,
    config: &RecipeConfig,
    budget: &Budget,
    threads: usize,
) -> Result<BudgetedAssessment> {
    if !(config.tolerance > 0.0 && config.tolerance <= 1.0) {
        return Err(Error::InvalidParameter(format!(
            "tolerance must be in (0, 1], got {}",
            config.tolerance
        )));
    }
    if supports.is_empty() {
        return Err(Error::InvalidParameter("empty support profile".into()));
    }
    if config.n_mask_runs == 0 {
        return Err(Error::InvalidParameter("need at least one mask run".into()));
    }
    let n = supports.len();
    let tol_budget = config.tolerance * n as f64;

    // Steps 1-5, exactly as in `assess_risk`.
    let groups = FrequencyGroups::from_supports(supports, n_transactions);
    let g = groups.n_groups() as f64;
    let delta_med = groups.median_gap().unwrap_or(0.0);
    let m = n_transactions as f64;
    let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / m).collect();
    let belief = BeliefFunction::widened(&freqs, delta_med)?;
    let graph = belief.build_graph(supports, n_transactions);

    // Step 6: descend the ladder for the crack probabilities.
    let mut trips: Vec<(Rung, Error)> = Vec::new();
    let (rung, probs) = ladder_probabilities(&graph, config, threads, budget, &mut trips)?;
    let full_oe: f64 = probs.iter().sum();

    let decision = if g <= tol_budget {
        RiskDecision::DiscloseAtPointValued
    } else if full_oe <= tol_budget {
        RiskDecision::DiscloseAtFullCompliance
    } else {
        // Steps 8-9 under the cancel token only: a degraded answer is
        // still an answer, so the deadline no longer cuts the tail
        // short — but cancellation must.
        let prefix_sums = try_mask_prefix_sums(
            &probs,
            config.n_mask_runs,
            config.seed,
            threads,
            &budget.cancel_only(),
        )
        .map_err(Error::from)?;
        let avg_oe_at = |c: usize| -> f64 {
            prefix_sums.iter().map(|ps| ps[c]).sum::<f64>() / prefix_sums.len() as f64
        };
        let (mut lo, mut hi) = (0usize, n);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if avg_oe_at(mid) <= tol_budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        RiskDecision::AlphaMax {
            alpha_max: lo as f64 / n as f64,
            oestimate_at_alpha: avg_oe_at(lo),
        }
    };

    Ok(BudgetedAssessment {
        assessment: RiskAssessment {
            n_items: n,
            tolerance: config.tolerance,
            point_valued_cracks: g,
            delta_med,
            full_compliance_oe: full_oe,
            decision,
        },
        provenance: Provenance {
            rung,
            degraded: rung != Rung::Exact,
            trips,
            budget_ms: budget.limit_ms(),
            spent_ms: budget.spent().as_millis(),
        },
    })
}

/// Runs the degradation ladder directly on a caller-supplied belief
/// graph, returning the answering rung's per-item crack
/// probabilities together with the full [`Provenance`] record.
///
/// This is the ladder of [`assess_risk_budgeted`] detached from the
/// Figure 8 pipeline: the caller keeps control of the belief (it
/// need not be the `δ_med`-widened compliant one), which makes every
/// rung — including the [`Error::EmptyMappingSpace`] abort — directly
/// reachable. The conformance oracle and the `andi assess --belief`
/// CLI path drive it this way.
///
/// # Errors
///
/// [`Error::EmptyMappingSpace`] when the exact rung proves there is
/// no consistent matching; [`Error::Cancelled`] when the budget's
/// cancel token fires.
pub fn ladder_crack_probabilities(
    graph: &andi_graph::GroupedBigraph,
    config: &RecipeConfig,
    threads: usize,
    budget: &Budget,
) -> Result<(Provenance, Vec<f64>)> {
    let mut trips: Vec<(Rung, Error)> = Vec::new();
    let (rung, probs) = ladder_probabilities(graph, config, threads, budget, &mut trips)?;
    Ok((
        Provenance {
            rung,
            degraded: rung != Rung::Exact,
            trips,
            budget_ms: budget.limit_ms(),
            spent_ms: budget.spent().as_millis(),
        },
        probs,
    ))
}

/// Walks the degradation ladder top-down and returns the first rung
/// that produced per-item crack probabilities, recording every trip.
///
/// Cancellation and a provably empty mapping space abort instead of
/// degrading (the lower rungs could not answer either meaningfully).
fn ladder_probabilities(
    graph: &andi_graph::GroupedBigraph,
    config: &RecipeConfig,
    threads: usize,
    budget: &Budget,
    trips: &mut Vec<(Rung, Error)>,
) -> Result<(Rung, Vec<f64>)> {
    let n = graph.n();

    // Rung 1: exact crack probabilities from Ryser permanents.
    if n <= MAX_PERMANENT_N {
        match andi_graph::exact::crack_probabilities_budgeted(&graph.to_dense(), threads, budget) {
            Ok(p) => return Ok((Rung::Exact, p)),
            Err(ExactError::EmptyMappingSpace) => return Err(Error::EmptyMappingSpace),
            Err(ExactError::Interrupted(ExecError::Cancelled)) => return Err(Error::Cancelled),
            Err(ExactError::Overflow) => trips.push((
                Rung::Exact,
                Error::Overflow("permanent overflowed i128".into()),
            )),
            Err(ExactError::Interrupted(e)) => trips.push((Rung::Exact, e.into())),
        }
    } else {
        trips.push((
            Rung::Exact,
            Error::InvalidParameter(format!(
                "domain size {n} exceeds the exact-permanent cap {MAX_PERMANENT_N}"
            )),
        ));
    }

    // Rung 2: the swap-walk sampler's empirical crack frequencies.
    // Seed with the identity when it is consistent (every item can be
    // its own crack), otherwise with a maximum matching.
    let seed_matching = if (0..n).all(|i| graph.has_edge(i, i)) {
        Matching::identity(n)
    } else {
        andi_graph::hopcroft_karp(&graph.to_dense())
    };
    match andi_graph::sample_crack_probabilities_budgeted(
        graph,
        &seed_matching,
        &config.sampler_schedule,
        config.seed,
        threads,
        budget,
    ) {
        Ok(p) => return Ok((Rung::Sampler, p)),
        Err(SamplerError::Interrupted(ExecError::Cancelled)) => return Err(Error::Cancelled),
        Err(SamplerError::Interrupted(e)) => trips.push((Rung::Sampler, e.into())),
        Err(e) => trips.push((Rung::Sampler, Error::Sampler(e.to_string()))),
    }

    // Rung 3: the O-estimate floor — probe-free and unconditional.
    Ok((Rung::OEstimate, oe_probabilities(graph, config)?))
}

/// One point of the Figure 11 compliancy curve.
#[derive(Clone, Copy, Debug)]
pub struct CompliancyPoint {
    /// Degree of compliancy probed.
    pub alpha: f64,
    /// Mask-averaged O-estimate, in items.
    pub oestimate: f64,
    /// The same as a fraction of the domain (Figure 11's y-axis).
    pub fraction: f64,
}

/// Sweeps the α grid of Figure 11 for a precomputed outdegree
/// profile, averaging the masked O-estimate over `n_mask_runs`
/// nested random compliant subsets.
pub fn compliancy_curve(
    profile: &OutdegreeProfile,
    alphas: &[f64],
    n_mask_runs: usize,
    seed: u64,
) -> Vec<CompliancyPoint> {
    compliancy_curve_probs(&profile.probabilities(), alphas, n_mask_runs, seed)
}

/// [`compliancy_curve`] over raw per-item crack probabilities (from
/// any estimator, e.g. the convex-exact marginals). The mask runs fan
/// out over [`par::available_threads`] workers.
pub fn compliancy_curve_probs(
    probs: &[f64],
    alphas: &[f64],
    n_mask_runs: usize,
    seed: u64,
) -> Vec<CompliancyPoint> {
    compliancy_curve_probs_with_threads(probs, alphas, n_mask_runs, seed, par::available_threads())
}

/// [`compliancy_curve_probs`] with an explicit worker count. The
/// output is bit-identical for every `threads` value: each mask run
/// is seeded `seed + run_index` and computed whole on one worker, and
/// the per-α averages always reduce the runs in run order.
pub fn compliancy_curve_probs_with_threads(
    probs: &[f64],
    alphas: &[f64],
    n_mask_runs: usize,
    seed: u64,
    threads: usize,
) -> Vec<CompliancyPoint> {
    let n = probs.len();
    let prefix_sums = mask_prefix_sums(probs, n_mask_runs.max(1), seed, threads);
    alphas
        .iter()
        .map(|&alpha| {
            let c = compliant_count(alpha, n);
            let oe = prefix_sums.iter().map(|ps| ps[c]).sum::<f64>() / prefix_sums.len() as f64;
            CompliancyPoint {
                alpha,
                oestimate: oe,
                fraction: oe / n as f64,
            }
        })
        .collect()
}

/// The decoy-corrected compliancy curve.
///
/// The §5.3 masked O-estimate `Σ_{x∈I_C} 1/O_x` is *linear* in α —
/// but simulation shows the true curve is super-linear, exactly as
/// the paper's Figure 11 reports. The mechanism: a non-compliant
/// item's wrong interval still lays claim to whatever anonymized
/// items it happens to cover, so compliant items face *decoy
/// competition* for their own anonymized counterparts. Modeling
/// wrong intervals as uniformly placed with mean width `w̄`, each
/// anonymized item attracts `(1-α)·n·w̄` expected decoy claimants,
/// and the crack probability of a compliant item becomes
/// `1/(O_x + (1-α)·n·w̄)` instead of `1/O_x`. At `α = 1` this
/// reduces to the ordinary O-estimate.
///
/// `mean_width` is the average belief-interval width the hacker is
/// assumed to use (the recipe's `2·δ_med`).
pub fn compliancy_curve_decoy(
    graph: &andi_graph::GroupedBigraph,
    mean_width: f64,
    alphas: &[f64],
    n_mask_runs: usize,
    seed: u64,
) -> Vec<CompliancyPoint> {
    compliancy_curve_decoy_with_threads(
        graph,
        mean_width,
        alphas,
        n_mask_runs,
        seed,
        par::available_threads(),
    )
}

/// [`compliancy_curve_decoy`] with an explicit worker count. Each α
/// is an independent task (the decoy term couples all items of a
/// probe, so per-α — not per-run — is the natural grain here); every
/// α still accumulates its runs in run order and items in order
/// position, so the curve is bit-identical at any `threads`.
pub fn compliancy_curve_decoy_with_threads(
    graph: &andi_graph::GroupedBigraph,
    mean_width: f64,
    alphas: &[f64],
    n_mask_runs: usize,
    seed: u64,
    threads: usize,
) -> Vec<CompliancyPoint> {
    let n = graph.n();
    let outdegrees = graph.outdegrees();
    // Per-run random orders over ALL items (compliant prefix model,
    // as in mask_prefix_sums); run r is seeded `seed + r` regardless
    // of which worker shuffles it.
    let orders = par::map_indexed(threads, n_mask_runs.max(1), |r| {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        order
    });

    par::map_indexed(threads, alphas.len(), |a| {
        let alpha = alphas[a];
        let c = compliant_count(alpha, n);
        let decoys = (1.0 - alpha).max(0.0) * n as f64 * mean_width.clamp(0.0, 1.0);
        let mut total = 0.0;
        for order in &orders {
            for &x in order.iter().take(c) {
                // Only items whose crack edge exists can be
                // cracked; O_x = 0 items are unmatchable anyway.
                if graph.crack_edge_exists(x) && outdegrees[x] > 0 {
                    total += 1.0 / (outdegrees[x] as f64 + decoys);
                }
            }
        }
        let oe = total / orders.len() as f64;
        CompliancyPoint {
            alpha,
            oestimate: oe,
            fraction: oe / n as f64,
        }
    })
}

/// Crack probabilities via the O-estimate path (profiles memoized on
/// the graph fingerprint, see [`crate::estimate::cached_profile`] —
/// τ sweeps over one release hit the cache after the first call).
fn oe_probabilities(graph: &andi_graph::GroupedBigraph, config: &RecipeConfig) -> Result<Vec<f64>> {
    let profile = crate::estimate::cached_profile(graph, config.use_propagation)?;
    Ok(profile.probabilities())
}

/// Per-run prefix sums of crack probabilities along a random item
/// order: `ps[c]` is the masked OE when the first `c` items of the
/// run's permutation are compliant.
///
/// Runs fan out over `threads` workers; run `r` always uses the RNG
/// seed `seed + r` and its prefix sums accumulate serially within the
/// run, so the returned vectors are bit-identical for every thread
/// count.
fn mask_prefix_sums(probs: &[f64], n_runs: usize, seed: u64, threads: usize) -> Vec<Vec<f64>> {
    let n = probs.len();
    par::map_indexed(threads, n_runs, |r| {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut ps = Vec::with_capacity(n + 1);
        ps.push(0.0);
        let mut acc = 0.0;
        for &x in &order {
            acc += probs[x];
            ps.push(acc);
        }
        ps
    })
}

/// Budgeted, fault-isolated [`mask_prefix_sums`]: the same per-run
/// seeding discipline (bit-identical output at every thread count),
/// but each run is a [`par::try_map_indexed`] task carrying the
/// `recipe.run` fault probe and polling `budget` between tasks.
fn try_mask_prefix_sums(
    probs: &[f64],
    n_runs: usize,
    seed: u64,
    threads: usize,
    budget: &Budget,
) -> std::result::Result<Vec<Vec<f64>>, ExecError> {
    let n = probs.len();
    par::try_map_indexed(threads, n_runs, budget, |r| {
        andi_graph::faults::probe("recipe.run", r);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64));
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut ps = Vec::with_capacity(n + 1);
        ps.push(0.0);
        let mut acc = 0.0;
        for &x in &order {
            acc += probs[x];
            ps.push(acc);
        }
        ps
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];

    fn config(tau: f64) -> RecipeConfig {
        RecipeConfig {
            tolerance: tau,
            n_mask_runs: 5,
            use_propagation: true,
            seed: 99,
            ..RecipeConfig::default()
        }
    }

    #[test]
    fn compliant_count_boundaries() {
        // The four α boundaries the recipe actually probes, across a
        // spread of domain sizes (including sizes where alpha*n lands
        // exactly on .5 and where 1/n is not representable exactly).
        for n in [1usize, 2, 3, 6, 7, 10, 97, 1000] {
            let inv = 1.0 / n as f64;
            assert_eq!(compliant_count(0.0, n), 0, "alpha = 0, n = {n}");
            assert_eq!(compliant_count(inv, n), 1, "alpha = 1/n, n = {n}");
            assert_eq!(
                compliant_count(1.0 - inv, n),
                n - 1,
                "alpha = 1 - 1/n, n = {n}"
            );
            assert_eq!(compliant_count(1.0, n), n, "alpha = 1, n = {n}");
        }
        // Rounding, not truncation: 0.25 * 6 = 1.5 rounds up.
        assert_eq!(compliant_count(0.25, 6), 2);
        // Just below a half-step stays down.
        assert_eq!(compliant_count(0.24, 6), 1);
        // Degenerate inputs clamp instead of wrapping or panicking.
        assert_eq!(compliant_count(-0.5, 10), 0);
        assert_eq!(compliant_count(1.5, 10), 10);
        assert_eq!(compliant_count(f64::NAN, 10), 0);
        assert_eq!(compliant_count(0.5, 0), 0);
    }

    #[test]
    fn curves_are_thread_count_invariant() {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.1).unwrap();
        let graph = belief.build_graph(&BIGMART_SUPPORTS, 10);
        let probs = OutdegreeProfile::plain(&graph).probabilities();
        let alphas: Vec<f64> = (0..=20).map(|k| k as f64 / 20.0).collect();
        let base = compliancy_curve_probs_with_threads(&probs, &alphas, 7, 11, 1);
        let base_decoy = compliancy_curve_decoy_with_threads(&graph, 0.2, &alphas, 7, 11, 1);
        for threads in 2..=8 {
            let par_curve = compliancy_curve_probs_with_threads(&probs, &alphas, 7, 11, threads);
            let par_decoy =
                compliancy_curve_decoy_with_threads(&graph, 0.2, &alphas, 7, 11, threads);
            for (a, b) in base.iter().zip(&par_curve) {
                assert_eq!(a.oestimate.to_bits(), b.oestimate.to_bits(), "t={threads}");
            }
            for (a, b) in base_decoy.iter().zip(&par_decoy) {
                assert_eq!(a.oestimate.to_bits(), b.oestimate.to_bits(), "t={threads}");
            }
        }
    }

    #[test]
    fn generous_tolerance_discloses_at_point_valued() {
        // g = 3, n = 6: τ = 0.6 gives budget 3.6 >= 3.
        let a = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.6)).unwrap();
        assert_eq!(a.decision, RiskDecision::DiscloseAtPointValued);
        assert!(a.discloses());
        assert_eq!(a.point_valued_cracks, 3.0);
        assert_eq!(a.alpha_max(), None);
    }

    #[test]
    fn tight_tolerance_reaches_alpha_search() {
        let a = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.1)).unwrap();
        assert!(!a.discloses());
        let alpha = a.alpha_max().expect("must reach the binary search");
        assert!((0.0..1.0).contains(&alpha), "alpha_max = {alpha}");
        match a.decision {
            RiskDecision::AlphaMax {
                oestimate_at_alpha, ..
            } => {
                assert!(oestimate_at_alpha <= 0.1 * 6.0 + 1e-12);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn mid_tolerance_may_disclose_at_full_compliance() {
        // Find a τ between OE/n and g/n: OE with δ_med = .1 on
        // BigMart is below g = 3 by monotonicity.
        let a = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.45)).unwrap();
        // Budget = 2.7 < g = 3; decision depends on OE; whatever it
        // is, the transcript must be internally consistent.
        if a.discloses() {
            assert!(a.full_compliance_oe <= 2.7 + 1e-12);
            assert_eq!(a.decision, RiskDecision::DiscloseAtFullCompliance);
        } else {
            assert!(a.full_compliance_oe > 2.7);
        }
    }

    #[test]
    fn delta_med_is_the_median_gap() {
        let a = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.1)).unwrap();
        assert!((a.delta_med - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(assess_risk(&BIGMART_SUPPORTS, 10, &config(0.0)).is_err());
        assert!(assess_risk(&BIGMART_SUPPORTS, 10, &config(1.5)).is_err());
        assert!(assess_risk(&[], 10, &config(0.1)).is_err());
        let mut c = config(0.1);
        c.n_mask_runs = 0;
        assert!(assess_risk(&BIGMART_SUPPORTS, 10, &c).is_err());
    }

    #[test]
    fn alpha_max_monotone_in_tolerance() {
        let strict = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.05)).unwrap();
        let loose = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.2)).unwrap();
        let a1 = strict.alpha_max().unwrap_or(1.0);
        let a2 = loose.alpha_max().unwrap_or(1.0);
        assert!(a1 <= a2 + 1e-12, "alpha_max must grow with tolerance");
    }

    #[test]
    fn compliancy_curve_is_monotone_and_anchored() {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.1).unwrap();
        let graph = belief.build_graph(&BIGMART_SUPPORTS, 10);
        let profile = OutdegreeProfile::plain(&graph);
        let alphas: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
        let curve = compliancy_curve(&profile, &alphas, 5, 7);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].oestimate, 0.0, "alpha 0 cracks nothing");
        assert!(
            (curve[10].oestimate - profile.oestimate()).abs() < 1e-12,
            "alpha 1 recovers the full OE"
        );
        for w in curve.windows(2) {
            assert!(
                w[0].oestimate <= w[1].oestimate + 1e-12,
                "curve must be non-decreasing"
            );
        }
    }

    #[test]
    fn decoy_curve_is_superlinear_and_anchored() {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.1).unwrap();
        let graph = belief.build_graph(&BIGMART_SUPPORTS, 10);
        let alphas: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();
        let plain = compliancy_curve(
            &crate::oestimate::OutdegreeProfile::plain(&graph),
            &alphas,
            6,
            3,
        );
        let decoy = compliancy_curve_decoy(&graph, 0.2, &alphas, 6, 3);
        // Anchored at both ends: alpha=0 gives 0; alpha=1 equals the
        // plain O-estimate.
        assert_eq!(decoy[0].oestimate, 0.0);
        assert!((decoy[10].oestimate - plain[10].oestimate).abs() < 1e-9);
        // Strictly below the linear curve in the interior (the
        // super-linearity the simulation exhibits).
        for k in 1..10 {
            assert!(
                decoy[k].oestimate < plain[k].oestimate - 1e-9,
                "alpha {}: decoy {} !< plain {}",
                alphas[k],
                decoy[k].oestimate,
                plain[k].oestimate
            );
        }
        // Monotone in alpha.
        for w in decoy.windows(2) {
            assert!(w[0].oestimate <= w[1].oestimate + 1e-12);
        }
    }

    #[test]
    fn decoy_curve_with_zero_width_is_linear() {
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let belief = BeliefFunction::widened(&freqs, 0.1).unwrap();
        let graph = belief.build_graph(&BIGMART_SUPPORTS, 10);
        let alphas = [0.0, 0.5, 1.0];
        let decoy = compliancy_curve_decoy(&graph, 0.0, &alphas, 6, 3);
        let plain = compliancy_curve(
            &crate::oestimate::OutdegreeProfile::plain(&graph),
            &alphas,
            6,
            3,
        );
        for (d, p) in decoy.iter().zip(plain.iter()) {
            assert!((d.oestimate - p.oestimate).abs() < 1e-9);
        }
    }

    #[test]
    fn display_covers_all_verdicts() {
        let relaxed = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.6)).unwrap();
        assert!(relaxed.to_string().contains("disclose"));
        let strict = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.05)).unwrap();
        let text = strict.to_string();
        assert!(text.contains("judgement call"), "got: {text}");
        assert!(text.contains("alpha_max"));
        assert!(text.contains("delta_med"));
    }

    #[test]
    fn exact_recipe_matches_ryser_at_full_compliance() {
        use andi_graph::exact::expected_cracks;
        let mut c = config(0.01); // force the full path
        c.use_exact = true;
        let assessment = assess_risk(&BIGMART_SUPPORTS, 10, &c).unwrap();
        // The exact full-compliance expectation of the delta_med
        // belief, from permanents.
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let belief = crate::belief::BeliefFunction::widened(&freqs, assessment.delta_med).unwrap();
        let dense = belief.build_graph(&BIGMART_SUPPORTS, 10).to_dense();
        let truth = expected_cracks(&dense).unwrap();
        assert!(
            (assessment.full_compliance_oe - truth).abs() < 1e-9,
            "exact recipe {} vs permanent {truth}",
            assessment.full_compliance_oe
        );
        // The exact value dominates the heuristic.
        let heuristic = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.01)).unwrap();
        assert!(assessment.full_compliance_oe >= heuristic.full_compliance_oe - 1e-9);
    }

    #[test]
    fn exact_recipe_falls_back_on_tiny_budget() {
        let mut c = config(0.01);
        c.use_exact = true;
        c.exact_state_budget = 0;
        let fallback = assess_risk(&BIGMART_SUPPORTS, 10, &c).unwrap();
        let plain = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.01)).unwrap();
        assert!((fallback.full_compliance_oe - plain.full_compliance_oe).abs() < 1e-12);
    }

    #[test]
    fn budgeted_unlimited_answers_on_the_exact_rung() {
        let budget = Budget::unlimited();
        let base =
            assess_risk_budgeted_with_threads(&BIGMART_SUPPORTS, 10, &config(0.1), &budget, 1)
                .unwrap();
        assert_eq!(base.provenance.rung, Rung::Exact);
        assert!(!base.is_degraded());
        assert!(base.provenance.trips.is_empty());
        assert_eq!(base.provenance.budget_ms, None);

        // The exact rung's full-compliance expectation is the
        // permanent-based truth, not the O-estimate.
        let a = &base.assessment;
        let freqs: Vec<f64> = BIGMART_SUPPORTS.iter().map(|&s| s as f64 / 10.0).collect();
        let belief = BeliefFunction::widened(&freqs, a.delta_med).unwrap();
        let dense = belief.build_graph(&BIGMART_SUPPORTS, 10).to_dense();
        let truth = andi_graph::exact::expected_cracks(&dense).unwrap();
        assert!(
            (a.full_compliance_oe - truth).abs() < 1e-9,
            "exact rung {} vs permanent {truth}",
            a.full_compliance_oe
        );

        // Same numbers and decision at any worker count.
        for threads in 2..=4 {
            let b = assess_risk_budgeted_with_threads(
                &BIGMART_SUPPORTS,
                10,
                &config(0.1),
                &Budget::unlimited(),
                threads,
            )
            .unwrap();
            assert_eq!(b.provenance.rung, Rung::Exact);
            assert_eq!(
                b.assessment.full_compliance_oe.to_bits(),
                a.full_compliance_oe.to_bits(),
                "t={threads}"
            );
            assert_eq!(b.assessment.decision, a.decision, "t={threads}");
        }
    }

    #[test]
    fn budgeted_zero_budget_degrades_to_the_oestimate_floor() {
        let base = assess_risk_budgeted_with_threads(
            &BIGMART_SUPPORTS,
            10,
            &config(0.1),
            &Budget::with_deadline(std::time::Duration::ZERO),
            1,
        )
        .unwrap();
        assert_eq!(base.provenance.rung, Rung::OEstimate);
        assert!(base.is_degraded());
        assert_eq!(base.provenance.budget_ms, Some(0));
        let trip_rungs: Vec<Rung> = base.provenance.trips.iter().map(|(r, _)| *r).collect();
        assert_eq!(trip_rungs, vec![Rung::Exact, Rung::Sampler]);
        for (_, err) in &base.provenance.trips {
            assert_eq!(*err, Error::BudgetExceeded { budget_ms: 0 });
        }

        // The floor is the plain recipe's O-estimate path: identical
        // transcript numbers.
        let plain = assess_risk(&BIGMART_SUPPORTS, 10, &config(0.1)).unwrap();
        assert_eq!(
            base.assessment.full_compliance_oe.to_bits(),
            plain.full_compliance_oe.to_bits()
        );
        assert_eq!(base.assessment.decision, plain.decision);

        // Identical structured outcome at any worker count.
        for threads in 2..=4 {
            let b = assess_risk_budgeted_with_threads(
                &BIGMART_SUPPORTS,
                10,
                &config(0.1),
                &Budget::with_deadline(std::time::Duration::ZERO),
                threads,
            )
            .unwrap();
            assert_eq!(b.provenance.rung, base.provenance.rung, "t={threads}");
            assert_eq!(b.provenance.trips, base.provenance.trips, "t={threads}");
            assert_eq!(
                b.assessment.full_compliance_oe.to_bits(),
                base.assessment.full_compliance_oe.to_bits(),
                "t={threads}"
            );
        }
    }

    #[test]
    fn budgeted_cancellation_aborts_instead_of_degrading() {
        let token = andi_graph::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_token(token);
        for threads in [1, 4] {
            let err = assess_risk_budgeted_with_threads(
                &BIGMART_SUPPORTS,
                10,
                &config(0.1),
                &budget,
                threads,
            )
            .unwrap_err();
            assert_eq!(err, Error::Cancelled, "t={threads}");
        }
    }

    #[test]
    fn budgeted_rejects_bad_parameters_like_the_plain_recipe() {
        let b = Budget::unlimited();
        assert!(assess_risk_budgeted(&BIGMART_SUPPORTS, 10, &config(0.0), &b).is_err());
        assert!(assess_risk_budgeted(&[], 10, &config(0.1), &b).is_err());
        let mut c = config(0.1);
        c.n_mask_runs = 0;
        assert!(assess_risk_budgeted(&BIGMART_SUPPORTS, 10, &c, &b).is_err());
    }

    #[test]
    fn propagation_toggle_is_respected() {
        let mut c = config(0.1);
        c.use_propagation = false;
        let plain = assess_risk(&BIGMART_SUPPORTS, 10, &c).unwrap();
        c.use_propagation = true;
        let prop = assess_risk(&BIGMART_SUPPORTS, 10, &c).unwrap();
        // Propagation can only sharpen (raise) the estimate.
        assert!(prop.full_compliance_oe >= plain.full_compliance_oe - 1e-12);
    }
}

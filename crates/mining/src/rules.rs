//! Association-rule generation from frequent itemsets.
//!
//! The paper's lineage (\[6\], \[10\], \[26\]) is association-rule mining:
//! rules `A => B` with support and confidence thresholds. Rules are
//! generated from a [`MiningResult`] by splitting each frequent
//! itemset into antecedent/consequent and reading supports off the
//! result — no extra database passes.

use andi_data::ItemId;

use crate::itemset::{Itemset, MiningResult};

/// An association rule `antecedent => consequent` with its measures.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Left-hand side (non-empty).
    pub antecedent: Itemset,
    /// Right-hand side (non-empty, disjoint from the antecedent).
    pub consequent: Itemset,
    /// Support count of the full itemset.
    pub support: u64,
    /// `support(A ∪ B) / support(A)`.
    pub confidence: f64,
    /// `confidence / P(B)` — independence-normalized strength.
    pub lift: f64,
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} => {} (sup {}, conf {:.2}, lift {:.2})",
            self.antecedent, self.consequent, self.support, self.confidence, self.lift
        )
    }
}

/// Generates all rules meeting `min_confidence` from the frequent
/// itemsets of `result`.
///
/// `n_transactions` is needed for lift. Rules whose antecedent or
/// consequent support is missing from the result (possible only if
/// the result was filtered externally) are skipped.
///
/// # Panics
///
/// Panics if `min_confidence` is outside `[0, 1]` or
/// `n_transactions` is zero.
/// # Examples
///
/// ```
/// use andi_data::bigmart;
/// use andi_mining::{apriori, generate_rules};
///
/// let db = bigmart();
/// let frequent = apriori(&db, 4);
/// let rules = generate_rules(&frequent, db.n_transactions() as u64, 0.9);
/// assert!(!rules.is_empty());
/// assert!(rules.iter().all(|r| r.confidence >= 0.9));
/// ```
pub fn generate_rules(
    result: &MiningResult,
    n_transactions: u64,
    min_confidence: f64,
) -> Vec<Rule> {
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "confidence must be in [0, 1]"
    );
    assert!(n_transactions > 0, "need at least one transaction");
    let m = n_transactions as f64;
    let mut rules = Vec::new();
    for (itemset, support) in result.iter() {
        let k = itemset.len();
        if k < 2 {
            continue;
        }
        // Every non-empty proper subset as antecedent.
        let items = itemset.items();
        for mask in 1..((1u64 << k) - 1) {
            let antecedent: Vec<ItemId> = (0..k)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| items[i])
                .collect();
            let consequent: Vec<ItemId> = (0..k)
                .filter(|&i| mask & (1 << i) == 0)
                .map(|i| items[i])
                .collect();
            let a = Itemset::from_sorted_unique(antecedent);
            let c = Itemset::from_sorted_unique(consequent);
            let (Some(sa), Some(sc)) = (result.support(&a), result.support(&c)) else {
                continue;
            };
            let confidence = support as f64 / sa as f64;
            if confidence + 1e-12 < min_confidence {
                continue;
            }
            let lift = confidence / (sc as f64 / m);
            rules.push(Rule {
                antecedent: a,
                consequent: c,
                support,
                confidence,
                lift,
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then_with(|| b.support.cmp(&a.support))
            .then_with(|| a.antecedent.cmp(&b.antecedent))
            .then_with(|| a.consequent.cmp(&b.consequent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use andi_data::bigmart;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().map(|&i| ItemId(i)))
    }

    #[test]
    fn generates_bigmart_rules() {
        let db = bigmart();
        let result = apriori(&db, 4);
        let rules = generate_rules(&result, db.n_transactions() as u64, 0.8);
        // {0,1} has support 4, item 1 support 4 -> rule 1 => 0 has
        // confidence 1.0.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == set(&[1]) && r.consequent == set(&[0]))
            .expect("1 => 0 must qualify");
        assert!((rule.confidence - 1.0).abs() < 1e-12);
        assert_eq!(rule.support, 4);
        // lift = 1.0 / 0.5 = 2.
        assert!((rule.lift - 2.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_threshold_filters() {
        let db = bigmart();
        let result = apriori(&db, 4);
        let all = generate_rules(&result, 10, 0.0);
        let strict = generate_rules(&result, 10, 0.9);
        assert!(strict.len() < all.len());
        assert!(strict.iter().all(|r| r.confidence >= 0.9 - 1e-12));
    }

    #[test]
    fn rules_are_sorted_by_confidence() {
        let db = bigmart();
        let result = apriori(&db, 2);
        let rules = generate_rules(&result, 10, 0.5);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }

    #[test]
    fn antecedent_and_consequent_partition_the_itemset() {
        let db = bigmart();
        let result = apriori(&db, 2);
        for r in generate_rules(&result, 10, 0.0) {
            let union = r.antecedent.union(&r.consequent);
            assert!(result.support(&union).is_some());
            assert!(!r.antecedent.is_empty());
            assert!(!r.consequent.is_empty());
            // Disjoint by construction.
            for x in r.antecedent.items() {
                assert!(!r.consequent.items().contains(x));
            }
        }
    }

    #[test]
    fn no_rules_from_singletons_only() {
        let db = bigmart();
        let result = apriori(&db, 6); // nothing co-occurs 6 times
        assert!(result.of_len(2).is_empty());
        assert!(generate_rules(&result, 10, 0.0).is_empty());
    }

    #[test]
    fn display_is_readable() {
        let db = bigmart();
        let result = apriori(&db, 4);
        let rules = generate_rules(&result, 10, 0.9);
        let text = rules[0].to_string();
        assert!(text.contains("=>"), "{text}");
        assert!(text.contains("conf"), "{text}");
    }
}

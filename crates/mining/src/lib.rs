//! # andi-mining — frequent itemset mining substrate
//!
//! The paper's motivating task is frequent set mining over released
//! (anonymized) baskets, and one of anonymization's selling points is
//! that it "does not perturb data characteristics": mining the
//! anonymized database and mapping patterns back yields *exactly* the
//! original patterns. This crate supplies three independent miners —
//! [`apriori()`], [`fpgrowth()`] and [`eclat()`] — which the examples use
//! to demonstrate that invariance and the test suite uses to
//! cross-validate one another.
//!
//! ```
//! use andi_data::bigmart;
//! use andi_mining::{apriori, fpgrowth, eclat};
//!
//! let db = bigmart();
//! let a = apriori(&db, 4);
//! assert_eq!(a, fpgrowth(&db, 4));
//! assert_eq!(a, eclat(&db, 4));
//! ```

#![forbid(unsafe_code)]

pub mod apriori;
pub mod condense;
pub mod eclat;
pub mod fpgrowth;
pub mod itemset;
pub mod rules;

pub use apriori::apriori;
pub use condense::{closed_itemsets, maximal_itemsets};
pub use eclat::eclat;
pub use fpgrowth::fpgrowth;
pub use itemset::{Itemset, MiningResult};
pub use rules::{generate_rules, Rule};

use andi_data::Database;

/// The available mining algorithms, for callers that select one at
/// runtime (benches, CLI-style examples).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Level-wise candidate generation.
    Apriori,
    /// Pattern growth over an FP-tree.
    FpGrowth,
    /// Vertical tid-list intersection.
    Eclat,
}

impl Algorithm {
    /// All algorithms.
    pub const ALL: [Algorithm; 3] = [Algorithm::Apriori, Algorithm::FpGrowth, Algorithm::Eclat];

    /// Runs the selected miner.
    pub fn mine(self, db: &Database, min_support: u64) -> MiningResult {
        match self {
            Algorithm::Apriori => apriori(db, min_support),
            Algorithm::FpGrowth => fpgrowth(db, min_support),
            Algorithm::Eclat => eclat(db, min_support),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Apriori => f.write_str("apriori"),
            Algorithm::FpGrowth => f.write_str("fp-growth"),
            Algorithm::Eclat => f.write_str("eclat"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::bigmart;

    #[test]
    fn algorithm_dispatch_agrees() {
        let db = bigmart();
        let results: Vec<MiningResult> = Algorithm::ALL.iter().map(|a| a.mine(&db, 3)).collect();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        assert!(!results[0].is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(Algorithm::Apriori.to_string(), "apriori");
        assert_eq!(Algorithm::FpGrowth.to_string(), "fp-growth");
        assert_eq!(Algorithm::Eclat.to_string(), "eclat");
    }
}

//! FP-Growth frequent-set mining.
//!
//! Pattern-growth miner: transactions are compressed into a prefix
//! tree (the FP-tree) with items ordered by descending support, then
//! patterns grow recursively from per-item conditional trees. No
//! candidate generation, two passes over the data per (sub)tree.

use std::collections::BTreeMap;

use andi_data::{Database, ItemId};

use crate::itemset::{Itemset, MiningResult};

/// Mines all itemsets with support count `>= min_support` using
/// FP-Growth. Produces exactly the same result as
/// [`crate::apriori::apriori`].
///
/// # Panics
///
/// Panics if `min_support` is zero.
pub fn fpgrowth(db: &Database, min_support: u64) -> MiningResult {
    assert!(min_support >= 1, "min_support must be at least 1");
    let supports = db.supports();

    // Global item order: descending support, ties by id, restricted
    // to frequent items.
    let mut frequent: Vec<ItemId> = (0..db.n_items() as u32)
        .map(ItemId)
        .filter(|x| supports[x.index()] >= min_support)
        .collect();
    frequent.sort_unstable_by_key(|x| (std::cmp::Reverse(supports[x.index()]), *x));
    let rank: BTreeMap<ItemId, usize> = frequent.iter().enumerate().map(|(r, &x)| (x, r)).collect();

    // Build the initial tree from rank-sorted frequent projections.
    let mut tree = FpTree::new(frequent.len());
    for t in db.transactions() {
        let mut path: Vec<usize> = t.iter().filter_map(|x| rank.get(&x).copied()).collect();
        path.sort_unstable();
        tree.insert(&path, 1);
    }

    let mut out: Vec<(Itemset, u64)> = Vec::new();
    mine_tree(&tree, &[], min_support, &mut out);

    // Translate ranks back to item ids.
    let result = out.into_iter().map(|(ranks_set, c)| {
        let items = ranks_set
            .items()
            .iter()
            .map(|r| frequent[r.index()])
            .collect::<Vec<_>>();
        (Itemset::new(items), c)
    });
    MiningResult::new(result, min_support)
}

/// An FP-tree over rank-encoded items (rank 0 = most frequent).
struct FpTree {
    /// Arena: node 0 is the root.
    nodes: Vec<Node>,
    /// Per-rank chain of node indices holding that rank.
    header: Vec<Vec<usize>>,
    /// Per-rank total count.
    rank_count: Vec<u64>,
}

struct Node {
    rank: usize,
    count: u64,
    parent: usize,
    children: BTreeMap<usize, usize>,
}

impl FpTree {
    fn new(n_ranks: usize) -> Self {
        FpTree {
            nodes: vec![Node {
                rank: usize::MAX,
                count: 0,
                parent: usize::MAX,
                children: BTreeMap::new(),
            }],
            header: vec![Vec::new(); n_ranks],
            rank_count: vec![0; n_ranks],
        }
    }

    /// Inserts a rank-sorted path with multiplicity `count`.
    fn insert(&mut self, path: &[usize], count: u64) {
        let mut cur = 0usize;
        for &r in path {
            self.rank_count[r] += count;
            cur = match self.nodes[cur].children.get(&r) {
                Some(&child) => {
                    self.nodes[child].count += count;
                    child
                }
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        rank: r,
                        count,
                        parent: cur,
                        children: BTreeMap::new(),
                    });
                    self.nodes[cur].children.insert(r, idx);
                    self.header[r].push(idx);
                    idx
                }
            };
        }
    }

    /// The prefix path of a node (ranks above it), root exclusive.
    fn prefix_of(&self, mut idx: usize) -> Vec<usize> {
        let mut path = Vec::new();
        idx = self.nodes[idx].parent;
        while idx != 0 && idx != usize::MAX {
            path.push(self.nodes[idx].rank);
            idx = self.nodes[idx].parent;
        }
        path.reverse();
        path
    }
}

/// Recursively mines `tree`, extending `suffix` (rank-encoded,
/// descending order semantics handled by construction).
fn mine_tree(tree: &FpTree, suffix: &[usize], min_support: u64, out: &mut Vec<(Itemset, u64)>) {
    // Iterate ranks bottom-up (least frequent first) as usual.
    for r in (0..tree.header.len()).rev() {
        let count = tree.rank_count[r];
        if count < min_support || tree.header[r].is_empty() {
            continue;
        }
        let mut pattern: Vec<usize> = suffix.to_vec();
        pattern.push(r);
        out.push((
            Itemset::new(pattern.iter().map(|&x| ItemId(x as u32))),
            count,
        ));

        // Conditional tree on r's prefix paths.
        let mut cond = FpTree::new(tree.header.len());
        for &node in &tree.header[r] {
            let path = tree.prefix_of(node);
            if !path.is_empty() {
                cond.insert(&path, tree.nodes[node].count);
            }
        }
        // Prune infrequent ranks inside the conditional tree by
        // rebuilding with only frequent ranks (simple and correct).
        let keep: Vec<bool> = cond.rank_count.iter().map(|&c| c >= min_support).collect();
        if keep.iter().any(|&k| k) {
            let mut pruned = FpTree::new(tree.header.len());
            for &node in &tree.header[r] {
                let path: Vec<usize> = tree
                    .prefix_of(node)
                    .into_iter()
                    .filter(|&pr| keep[pr])
                    .collect();
                if !path.is_empty() {
                    pruned.insert(&path, tree.nodes[node].count);
                }
            }
            mine_tree(&pruned, &pattern, min_support, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use andi_data::bigmart;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().map(|&i| ItemId(i)))
    }

    #[test]
    fn matches_apriori_on_bigmart() {
        for min_support in [1u64, 2, 3, 4, 5, 6] {
            let a = apriori(&bigmart(), min_support);
            let f = fpgrowth(&bigmart(), min_support);
            assert_eq!(a, f, "divergence at min_support {min_support}");
        }
    }

    #[test]
    fn finds_known_pairs() {
        let r = fpgrowth(&bigmart(), 4);
        assert_eq!(r.support(&set(&[3, 5])), Some(4));
        assert_eq!(r.support(&set(&[0, 1])), Some(4));
        assert_eq!(r.support(&set(&[4])), None);
    }

    #[test]
    fn single_transaction_database() {
        let db = Database::from_raw(4, &[&[0, 2, 3]]).unwrap();
        let r = fpgrowth(&db, 1);
        assert_eq!(r.len(), 7, "all non-empty subsets of a 3-set");
        assert_eq!(r.support(&set(&[0, 2, 3])), Some(1));
    }

    #[test]
    fn empty_result_above_max_support() {
        let r = fpgrowth(&bigmart(), 11);
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_threshold() {
        let _ = fpgrowth(&bigmart(), 0);
    }
}

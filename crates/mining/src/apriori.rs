//! Level-wise Apriori frequent-set mining (Agrawal et al. \[6\], the
//! paper's reference model for frequency).
//!
//! Classic candidate-generation-and-test: level `k+1` candidates are
//! joins of level-`k` frequent sets sharing a `(k-1)`-prefix, pruned
//! by the downward-closure property, then counted in one database
//! pass per level.

use std::collections::{BTreeMap, HashSet};

use andi_data::{Database, ItemId};

use crate::itemset::{Itemset, MiningResult};

/// Mines all itemsets with support count `>= min_support`.
///
/// # Panics
///
/// Panics if `min_support` is zero (every subset of the domain would
/// qualify vacuously).
pub fn apriori(db: &Database, min_support: u64) -> MiningResult {
    assert!(min_support >= 1, "min_support must be at least 1");
    let mut all: BTreeMap<Itemset, u64> = BTreeMap::new();

    // Level 1 from the support profile.
    let supports = db.supports();
    let mut current: Vec<Itemset> = Vec::new();
    for (x, &c) in supports.iter().enumerate() {
        if c >= min_support {
            let s = Itemset::singleton(ItemId(x as u32));
            all.insert(s.clone(), c);
            current.push(s);
        }
    }

    while current.len() > 1 {
        let candidates = generate_candidates(&current);
        if candidates.is_empty() {
            break;
        }
        // One pass: count each candidate.
        let mut counts: Vec<u64> = vec![0; candidates.len()];
        for t in db.transactions() {
            for (ci, c) in candidates.iter().enumerate() {
                if t.contains_all(c.items()) {
                    counts[ci] += 1;
                }
            }
        }
        current = candidates
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= min_support)
            .map(|(s, c)| {
                all.insert(s.clone(), c);
                s
            })
            .collect();
    }

    MiningResult::new(all, min_support)
}

/// Joins frequent `k`-sets sharing a `(k-1)`-prefix and prunes
/// candidates with an infrequent `k`-subset.
fn generate_candidates(frequent: &[Itemset]) -> Vec<Itemset> {
    let freq_index: HashSet<&Itemset> = frequent.iter().collect();
    let mut out = Vec::new();
    for (a_idx, a) in frequent.iter().enumerate() {
        for b in &frequent[a_idx + 1..] {
            let k = a.len();
            // frequent is sorted lexicographically (BTreeMap order
            // upstream is not guaranteed here, so compare prefixes
            // explicitly).
            if a.items()[..k - 1] != b.items()[..k - 1] {
                continue;
            }
            let (lo, hi) = if a.items()[k - 1] < b.items()[k - 1] {
                (a, b)
            } else {
                (b, a)
            };
            // lo/hi were ordered by their last items just above, so
            // the extension is always valid; skip defensively rather
            // than panic if that ever changes.
            let Some(candidate) = lo.extend_with(hi.items()[k - 1]) else {
                continue;
            };
            if all_subsets_frequent(&candidate, &freq_index) {
                out.push(candidate);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Downward-closure prune: every `(k-1)`-subset of `candidate` must
/// be frequent.
fn all_subsets_frequent(candidate: &Itemset, freq_index: &HashSet<&Itemset>) -> bool {
    let items = candidate.items();
    (0..items.len()).all(|skip| {
        let sub = Itemset::from_sorted_unique(
            items
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != skip)
                .map(|(_, &x)| x)
                .collect(),
        );
        freq_index.contains(&sub)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use andi_data::bigmart;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().map(|&i| ItemId(i)))
    }

    #[test]
    fn mines_bigmart_singletons() {
        let r = apriori(&bigmart(), 4);
        // Supports: 5,4,5,5,3,5 -> five singletons at min_support 4.
        assert_eq!(r.of_len(1).len(), 5);
        assert_eq!(r.support(&set(&[0])), Some(5));
        assert_eq!(r.support(&set(&[4])), None);
    }

    #[test]
    fn mines_bigmart_pairs() {
        let r = apriori(&bigmart(), 4);
        // {3,5} co-occur in t5..t8 -> support 4.
        assert_eq!(r.support(&set(&[3, 5])), Some(4));
        // {0,1} co-occur in t0..t3 -> support 4.
        assert_eq!(r.support(&set(&[0, 1])), Some(4));
    }

    #[test]
    fn support_threshold_one_is_everything_cooccurring() {
        let db = Database::from_raw(3, &[&[0, 1, 2], &[0, 1]]).unwrap();
        let r = apriori(&db, 1);
        // All subsets of {0,1,2} except {} plus nothing else: 7.
        assert_eq!(r.len(), 7);
        assert_eq!(r.support(&set(&[0, 1, 2])), Some(1));
        assert_eq!(r.support(&set(&[0, 1])), Some(2));
    }

    #[test]
    fn high_threshold_yields_empty() {
        let r = apriori(&bigmart(), 100);
        assert!(r.is_empty());
    }

    #[test]
    fn supports_are_downward_monotone() {
        let r = apriori(&bigmart(), 2);
        for (s, c) in r.iter() {
            if s.len() >= 2 {
                for skip in 0..s.len() {
                    let sub = Itemset::new(
                        s.items()
                            .iter()
                            .enumerate()
                            .filter(|&(k, _)| k != skip)
                            .map(|(_, &x)| x),
                    );
                    let sub_c = r.support(&sub).expect("subset must be frequent");
                    assert!(sub_c >= c, "{sub} support {sub_c} < {s} support {c}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_threshold() {
        let _ = apriori(&bigmart(), 0);
    }
}

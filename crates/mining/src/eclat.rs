//! Eclat frequent-set mining (vertical tid-list intersection).
//!
//! Each item carries the sorted list of transaction ids containing
//! it; supports of unions come from list intersections, explored
//! depth-first in prefix order. A third independent implementation
//! used to cross-validate Apriori and FP-Growth.

use andi_data::{Database, ItemId};

use crate::itemset::{Itemset, MiningResult};

/// Mines all itemsets with support count `>= min_support` using
/// Eclat.
///
/// # Panics
///
/// Panics if `min_support` is zero.
pub fn eclat(db: &Database, min_support: u64) -> MiningResult {
    assert!(min_support >= 1, "min_support must be at least 1");

    // Vertical representation (sorted tid-lists per item).
    let mut frequent_items: Vec<(ItemId, Vec<u32>)> = db
        .tidlists()
        .into_iter()
        .enumerate()
        .filter(|(_, l)| l.len() as u64 >= min_support)
        .map(|(x, l)| (ItemId(x as u32), l))
        .collect();
    frequent_items.sort_unstable_by_key(|(x, _)| *x);

    let mut out: Vec<(Itemset, u64)> = Vec::new();
    // DFS over prefix extensions.
    let mut prefix: Vec<ItemId> = Vec::new();
    dfs(&frequent_items, &mut prefix, min_support, &mut out);
    MiningResult::new(out, min_support)
}

/// Explores all extensions of `prefix` by the candidate items (each
/// paired with the tid-list of `prefix ∪ {item}`).
fn dfs(
    candidates: &[(ItemId, Vec<u32>)],
    prefix: &mut Vec<ItemId>,
    min_support: u64,
    out: &mut Vec<(Itemset, u64)>,
) {
    for (k, (x, list)) in candidates.iter().enumerate() {
        prefix.push(*x);
        out.push((
            Itemset::from_sorted_unique(prefix.clone()),
            list.len() as u64,
        ));

        // Conditional candidates: items after x intersected with x's
        // tid-list.
        let next: Vec<(ItemId, Vec<u32>)> = candidates[k + 1..]
            .iter()
            .filter_map(|(y, ylist)| {
                let joint = intersect(list, ylist);
                if joint.len() as u64 >= min_support {
                    Some((*y, joint))
                } else {
                    None
                }
            })
            .collect();
        if !next.is_empty() {
            dfs(&next, prefix, min_support, out);
        }
        prefix.pop();
    }
}

/// Intersection of two sorted tid-lists (linear merge).
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use crate::fpgrowth::fpgrowth;
    use andi_data::bigmart;

    #[test]
    fn intersect_merges() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1]), Vec::<u32>::new());
        assert_eq!(intersect(&[2, 4], &[1, 3]), Vec::<u32>::new());
    }

    #[test]
    fn all_three_miners_agree_on_bigmart() {
        for min_support in [1u64, 2, 3, 4, 5, 6, 10] {
            let a = apriori(&bigmart(), min_support);
            let f = fpgrowth(&bigmart(), min_support);
            let e = eclat(&bigmart(), min_support);
            assert_eq!(a, e, "apriori vs eclat at {min_support}");
            assert_eq!(f, e, "fpgrowth vs eclat at {min_support}");
        }
    }

    #[test]
    fn deep_itemsets() {
        let db =
            Database::from_raw(5, &[&[0, 1, 2, 3, 4], &[0, 1, 2, 3, 4], &[0, 1, 2, 3]]).unwrap();
        let r = eclat(&db, 2);
        // All non-empty subsets of {0..4} have support >= 2: 31.
        assert_eq!(r.len(), 31);
        let full = Itemset::new((0..5u32).map(ItemId));
        assert_eq!(r.support(&full), Some(2));
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_threshold() {
        let _ = eclat(&bigmart(), 0);
    }
}

//! Itemsets and mining results.
//!
//! Frequent set mining is the paper's host task (its title scenario:
//! releasing anonymized baskets for mining). An itemset is a sorted,
//! duplicate-free set of items; a mining result is the collection of
//! all itemsets whose support meets a threshold.

use std::collections::BTreeMap;

use andi_data::ItemId;

/// A sorted, duplicate-free itemset.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Itemset {
    items: Box<[ItemId]>,
}

impl Itemset {
    /// Builds an itemset, sorting and deduplicating the input.
    pub fn new<I: IntoIterator<Item = ItemId>>(items: I) -> Self {
        let mut v: Vec<ItemId> = items.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Itemset {
            items: v.into_boxed_slice(),
        }
    }

    /// Builds from items already sorted and unique (debug-asserted).
    pub fn from_sorted_unique(items: Vec<ItemId>) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        Itemset {
            items: items.into_boxed_slice(),
        }
    }

    /// A singleton itemset.
    pub fn singleton(item: ItemId) -> Self {
        Itemset {
            items: vec![item].into_boxed_slice(),
        }
    }

    /// The items in increasing order.
    #[inline]
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Cardinality.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `self ⊆ other` (linear merge; both sorted).
    pub fn is_subset_of(&self, other: &Itemset) -> bool {
        let mut o = other.items.iter();
        'outer: for want in self.items.iter() {
            for have in o.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// The union of two itemsets.
    pub fn union(&self, other: &Itemset) -> Itemset {
        Itemset::new(self.items.iter().chain(other.items.iter()).copied())
    }

    /// Extends the itemset by one item strictly greater than its
    /// maximum (the prefix-growth step); `None` if `item` is not
    /// greater.
    pub fn extend_with(&self, item: ItemId) -> Option<Itemset> {
        match self.items.last() {
            Some(&last) if item <= last => None,
            _ => {
                let mut v = self.items.to_vec();
                v.push(item);
                Some(Itemset {
                    items: v.into_boxed_slice(),
                })
            }
        }
    }

    /// Applies a per-item relabeling; used to map mined patterns
    /// between the original and anonymized domains.
    pub fn relabel(&self, relabel: &[u32]) -> Itemset {
        Itemset::new(self.items.iter().map(|x| ItemId(relabel[x.index()])))
    }
}

impl std::fmt::Display for Itemset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (k, item) in self.items.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

/// The result of a frequent-set mining run: itemsets with their
/// support counts, in a canonical (sorted) order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MiningResult {
    /// `(itemset, support_count)` pairs sorted by itemset.
    patterns: BTreeMap<Itemset, u64>,
    /// The absolute support threshold the run used.
    pub min_support: u64,
}

impl MiningResult {
    /// Creates a result from raw pairs.
    pub fn new(pairs: impl IntoIterator<Item = (Itemset, u64)>, min_support: u64) -> Self {
        MiningResult {
            patterns: pairs.into_iter().collect(),
            min_support,
        }
    }

    /// Number of frequent itemsets found.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether no itemset met the threshold.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Support of a specific itemset, if frequent.
    pub fn support(&self, itemset: &Itemset) -> Option<u64> {
        self.patterns.get(itemset).copied()
    }

    /// Iterates `(itemset, support)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Itemset, u64)> {
        self.patterns.iter().map(|(s, &c)| (s, c))
    }

    /// All frequent itemsets of a given size.
    pub fn of_len(&self, len: usize) -> Vec<&Itemset> {
        self.patterns.keys().filter(|s| s.len() == len).collect()
    }

    /// Relabels every pattern (supports unchanged) — the "map the
    /// mined patterns back through the anonymization" step.
    pub fn relabel(&self, relabel: &[u32]) -> MiningResult {
        MiningResult {
            patterns: self
                .patterns
                .iter()
                .map(|(s, &c)| (s.relabel(relabel), c))
                .collect(),
            min_support: self.min_support,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().map(|&i| ItemId(i)))
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1]);
        assert_eq!(s.items(), &[ItemId(1), ItemId(3), ItemId(5)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(set(&[]).is_empty());
    }

    #[test]
    fn subset_checks() {
        assert!(set(&[1, 3]).is_subset_of(&set(&[1, 2, 3])));
        assert!(set(&[]).is_subset_of(&set(&[1])));
        assert!(!set(&[1, 4]).is_subset_of(&set(&[1, 2, 3])));
        assert!(!set(&[0]).is_subset_of(&set(&[1, 2])));
    }

    #[test]
    fn union_and_extend() {
        assert_eq!(set(&[1, 2]).union(&set(&[2, 5])), set(&[1, 2, 5]));
        assert_eq!(set(&[1, 2]).extend_with(ItemId(4)), Some(set(&[1, 2, 4])));
        assert_eq!(set(&[1, 4]).extend_with(ItemId(3)), None);
        assert_eq!(set(&[1, 4]).extend_with(ItemId(4)), None);
        assert_eq!(set(&[]).extend_with(ItemId(0)), Some(set(&[0])));
    }

    #[test]
    fn display_format() {
        assert_eq!(set(&[2, 0]).to_string(), "{0,2}");
        assert_eq!(set(&[]).to_string(), "{}");
    }

    #[test]
    fn relabel_remaps_and_resorts() {
        // 0 -> 2, 1 -> 0, 2 -> 1.
        let s = set(&[0, 2]).relabel(&[2, 0, 1]);
        assert_eq!(s, set(&[1, 2]));
    }

    #[test]
    fn mining_result_accessors() {
        let r = MiningResult::new(vec![(set(&[0]), 5), (set(&[1]), 4), (set(&[0, 1]), 3)], 3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.support(&set(&[0, 1])), Some(3));
        assert_eq!(r.support(&set(&[2])), None);
        assert_eq!(r.of_len(1).len(), 2);
        assert_eq!(r.of_len(2).len(), 1);
    }

    #[test]
    fn mining_result_relabel_roundtrip() {
        let r = MiningResult::new(vec![(set(&[0, 2]), 7)], 5);
        let fwd = r.relabel(&[1, 2, 0]);
        assert_eq!(fwd.support(&set(&[0, 1])), Some(7));
        // Applying the inverse returns the original.
        let back = fwd.relabel(&[2, 0, 1]);
        assert_eq!(back, r);
    }
}

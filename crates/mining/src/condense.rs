//! Condensed representations: closed and maximal frequent itemsets.
//!
//! A frequent itemset is **closed** when no proper superset has the
//! same support, and **maximal** when no proper superset is frequent
//! at all. Closed sets preserve every support (lossless); maximal
//! sets preserve only the frequent/infrequent border (smallest).
//! Both are standard ways to shrink a mining result before sharing —
//! which is exactly what the paper's data-owner does with mining
//! outputs.

use std::collections::BTreeMap;

use crate::itemset::{Itemset, MiningResult};

/// Extracts the closed itemsets of a mining result.
///
/// An itemset is closed iff none of its single-item frequent
/// extensions has equal support; checking the one-step extensions
/// suffices because support is monotone.
/// # Examples
///
/// ```
/// use andi_data::Database;
/// use andi_mining::{apriori, closed_itemsets, maximal_itemsets};
///
/// // Items 0 and 1 always co-occur: {0} is absorbed by {0,1}.
/// let db = Database::from_raw(3, &[&[0, 1], &[0, 1, 2], &[0, 1]]).unwrap();
/// let all = apriori(&db, 1);
/// let closed = closed_itemsets(&all);
/// let maximal = maximal_itemsets(&all);
/// assert!(maximal.len() <= closed.len());
/// assert!(closed.len() < all.len());
/// ```
pub fn closed_itemsets(result: &MiningResult) -> MiningResult {
    // Index supersets by length for the +1 lookup. BTreeMap keeps
    // any future iteration over the index deterministic.
    let mut by_len: BTreeMap<usize, Vec<(&Itemset, u64)>> = BTreeMap::new();
    for (s, c) in result.iter() {
        by_len.entry(s.len()).or_default().push((s, c));
    }
    let closed = result.iter().filter(|(s, c)| {
        by_len
            .get(&(s.len() + 1))
            .map(|bigger| {
                !bigger
                    .iter()
                    .any(|(sup, sc)| *sc == *c && s.is_subset_of(sup))
            })
            .unwrap_or(true)
    });
    MiningResult::new(closed.map(|(s, c)| (s.clone(), c)), result.min_support)
}

/// Extracts the maximal frequent itemsets.
pub fn maximal_itemsets(result: &MiningResult) -> MiningResult {
    let mut by_len: BTreeMap<usize, Vec<&Itemset>> = BTreeMap::new();
    for (s, _) in result.iter() {
        by_len.entry(s.len()).or_default().push(s);
    }
    let maximal = result.iter().filter(|(s, _)| {
        by_len
            .get(&(s.len() + 1))
            .map(|bigger| !bigger.iter().any(|sup| s.is_subset_of(sup)))
            .unwrap_or(true)
    });
    MiningResult::new(maximal.map(|(s, c)| (s.clone(), c)), result.min_support)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::apriori;
    use andi_data::{bigmart, Database, ItemId};

    fn set(ids: &[u32]) -> Itemset {
        Itemset::new(ids.iter().map(|&i| ItemId(i)))
    }

    #[test]
    fn closed_sets_absorb_equal_support_subsets() {
        // In a database where 0 and 1 always co-occur, {0} is not
        // closed (same support as {0,1}).
        let db = Database::from_raw(3, &[&[0, 1], &[0, 1, 2], &[0, 1]]).unwrap();
        let all = apriori(&db, 1);
        let closed = closed_itemsets(&all);
        assert!(closed.support(&set(&[0])).is_none(), "{{0}} is absorbed");
        assert!(closed.support(&set(&[0, 1])).is_some());
        assert!(closed.support(&set(&[0, 1, 2])).is_some());
        // {2} has support 1 = {0,1,2}: absorbed too.
        assert!(closed.support(&set(&[2])).is_none());
    }

    #[test]
    fn maximal_sets_keep_only_the_border() {
        let db = Database::from_raw(3, &[&[0, 1], &[0, 1, 2], &[0, 1]]).unwrap();
        let all = apriori(&db, 1);
        let maximal = maximal_itemsets(&all);
        assert_eq!(maximal.len(), 1);
        assert!(maximal.support(&set(&[0, 1, 2])).is_some());
    }

    #[test]
    fn maximal_subset_of_closed_subset_of_all() {
        let db = bigmart();
        for min_support in [1u64, 2, 3, 4] {
            let all = apriori(&db, min_support);
            let closed = closed_itemsets(&all);
            let maximal = maximal_itemsets(&all);
            assert!(maximal.len() <= closed.len());
            assert!(closed.len() <= all.len());
            // Every maximal set is closed; every closed set is
            // frequent with its original support.
            for (s, c) in maximal.iter() {
                assert_eq!(closed.support(s), Some(c), "{s}");
            }
            for (s, c) in closed.iter() {
                assert_eq!(all.support(s), Some(c), "{s}");
            }
        }
    }

    #[test]
    fn closed_sets_are_lossless() {
        // Every frequent itemset's support is recoverable as the
        // maximum support of a closed superset.
        let db = bigmart();
        let all = apriori(&db, 2);
        let closed = closed_itemsets(&all);
        for (s, c) in all.iter() {
            let recovered = closed
                .iter()
                .filter(|(sup, _)| s.is_subset_of(sup))
                .map(|(_, sc)| sc)
                .max()
                .expect("some closed superset exists");
            assert_eq!(recovered, c, "support of {s} must be recoverable");
        }
    }

    #[test]
    fn distinct_supports_mean_everything_is_closed() {
        // A chain where every set has a distinct support.
        let db = Database::from_raw(2, &[&[0], &[0, 1], &[0]]).unwrap();
        let all = apriori(&db, 1);
        let closed = closed_itemsets(&all);
        // {0}: 3, {1}: 1, {0,1}: 1 -> {1} absorbed by {0,1}; others
        // closed.
        assert_eq!(closed.len(), 2);
    }
}

//! P-time: O-estimate runtime (the Section 7.2 "only a few seconds"
//! remark, and the Figure 5 `O(|D| + n log n)` claim).
//!
//! Benchmarks the plain prefix-sum O-estimate and the propagated
//! variant across the benchmark analogs, plus graph construction on
//! its own.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use andi_bench::Workload;
use andi_core::OutdegreeProfile;
use andi_data::synth::Analog;

fn bench_plain_oe(c: &mut Criterion) {
    let mut group = c.benchmark_group("oe_plain");
    group.sample_size(20);
    for analog in Analog::ALL {
        let w = Workload::load(analog);
        let belief = w.delta_med_belief();
        group.bench_function(w.name.clone(), |b| {
            b.iter(|| {
                // Full Figure 5 pipeline from the support profile:
                // grouping, graph setup, prefix-sum outdegrees, sum.
                let graph = belief.build_graph(black_box(&w.supports), w.n_transactions);
                OutdegreeProfile::plain(&graph).oestimate()
            })
        });
    }
    group.finish();
}

fn bench_propagated_oe(c: &mut Criterion) {
    let mut group = c.benchmark_group("oe_propagated");
    group.sample_size(10);
    // RETAIL's dense materialization is heavy; bench the other three
    // Figure 10 datasets plus the small ones at full fidelity.
    for analog in [
        Analog::Chess,
        Analog::Mushroom,
        Analog::Connect,
        Analog::Accidents,
        Analog::Pumsb,
    ] {
        let w = Workload::load(analog);
        let belief = w.delta_med_belief();
        let graph = belief.build_graph(&w.supports, w.n_transactions);
        group.bench_function(w.name.clone(), |b| {
            b.iter_batched(
                || graph.clone(),
                |g| {
                    OutdegreeProfile::propagated(&g)
                        .expect("feasible")
                        .oestimate()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(20);
    for analog in [Analog::Connect, Analog::Retail] {
        let w = Workload::load(analog);
        let belief = w.delta_med_belief();
        group.bench_function(w.name.clone(), |b| {
            b.iter(|| belief.build_graph(black_box(&w.supports), w.n_transactions))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_plain_oe,
    bench_propagated_oe,
    bench_graph_construction
);
criterion_main!(benches);

//! P-time: frequent-set miner comparison on correlated baskets.
//!
//! Not a paper table — this exercises the mining substrate the
//! examples use, comparing Apriori, FP-Growth and Eclat at two
//! support thresholds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use andi_data::synth::quest::{generate, QuestConfig};
use andi_mining::Algorithm;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_miners(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1234);
    let db = generate(
        &QuestConfig {
            n_items: 150,
            n_transactions: 4_000,
            n_patterns: 30,
            avg_pattern_len: 4,
            patterns_per_transaction: 2,
            noise_prob: 0.25,
            noise_max: 3,
        },
        &mut rng,
    );

    for min_support_pct in [2u64, 5] {
        let min_support = db.n_transactions() as u64 * min_support_pct / 100;
        let mut group = c.benchmark_group(format!("mining_minsup_{min_support_pct}pct"));
        group.sample_size(10);
        for algo in Algorithm::ALL {
            group.bench_function(algo.to_string(), |b| {
                b.iter(|| algo.mine(black_box(&db), min_support))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);

//! L-time: `andi-lint` whole-tree analysis cost.
//!
//! The linter is a CI merge gate, so its wall-clock budget matters:
//! it must stay cheap enough to run on every push. This bench splits
//! the two-layer pipeline into its phases — lex + item-parse, call
//! graph construction, and the full workspace lint (token rules,
//! semantic rules, pragma hygiene, sort) — over the real workspace
//! tree, so a regression in any one layer is visible in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::Path;

use andi_lint::{build, lint_workspace, parse, scan, tree_files, SourceFile};

/// Loads every lintable file of the real workspace (the same walk
/// `cargo run -p andi-lint -- check` performs).
fn workspace_sources() -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the workspace root");
    tree_files(root)
        .expect("walk workspace tree")
        .into_iter()
        .map(|(rel, abs)| {
            let text = std::fs::read_to_string(&abs)
                .unwrap_or_else(|e| panic!("read {}: {e}", abs.display()));
            (rel, text)
        })
        .collect()
}

fn bench_scan_and_parse(c: &mut Criterion) {
    let sources = workspace_sources();
    let mut group = c.benchmark_group("lint_scan_parse");
    group.sample_size(20);
    group.bench_function("workspace", |b| {
        b.iter(|| {
            let mut tokens = 0usize;
            for (_, text) in &sources {
                let s = scan(black_box(text));
                tokens += parse(&s.tokens).n_tokens;
            }
            tokens
        })
    });
    group.finish();
}

fn bench_call_graph(c: &mut Criterion) {
    let sources = workspace_sources();
    let files: Vec<SourceFile> = sources.iter().map(|(p, t)| SourceFile::new(p, t)).collect();
    let mut group = c.benchmark_group("lint_call_graph");
    group.sample_size(20);
    group.bench_function("workspace", |b| b.iter(|| build(black_box(&files))));
    group.finish();
}

fn bench_full_lint(c: &mut Criterion) {
    let sources = workspace_sources();
    let mut group = c.benchmark_group("lint_workspace");
    group.sample_size(20);
    group.bench_function("workspace", |b| {
        b.iter(|| lint_workspace(black_box(&sources)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scan_and_parse,
    bench_call_graph,
    bench_full_lint
);
criterion_main!(benches);

//! Cost of absorbing a single-transaction append: the incremental
//! engine's delta path (apply + dirty-group reassessment over the
//! retained summary) against the full from-scratch pipeline the
//! engine shortcuts — database scan for supports, grouped-graph
//! construction, plain profile, O-estimate. Both paths produce
//! bit-identical numbers (the metamorphic suites pin that); this
//! harness records the speedup that makes the delta path worth its
//! bookkeeping. The acceptance floor is 5× on both analogs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use andi_core::incremental::{DeltaBatch, Edit, IncrementalEngine};
use andi_core::parallel::Budget;
use andi_core::OutdegreeProfile;
use andi_data::synth::Analog;
use andi_data::{Database, DatabaseBuilder};
use andi_graph::GroupedBigraph;

/// The appended transaction: every seventh item, a plausible
/// mid-size basket over the analog's domain.
fn new_transaction(n_items: usize) -> Vec<usize> {
    (0..n_items).step_by(7).collect()
}

/// The analog database plus the appended transaction.
fn appended(db: &Database, items: &[usize]) -> Database {
    let mut builder = DatabaseBuilder::new(db.n_items());
    for t in db.transactions() {
        builder
            .add(t.items().iter().map(|x| x.index() as u32))
            .expect("in-domain");
    }
    builder
        .add(items.iter().map(|&i| i as u32))
        .expect("in-domain");
    builder.build().expect("non-empty")
}

fn bench_incremental(c: &mut Criterion) {
    for analog in [Analog::Chess, Analog::Mushroom] {
        let db = analog.database();
        let supports = db.supports();
        let m = db.n_transactions() as u64;
        // The recipe's compliant belief: every interval centered on
        // the true frequency, δ_med wide.
        let w = andi_bench::Workload::load(analog);
        let intervals = w.delta_med_belief().intervals().to_vec();
        let items = new_transaction(supports.len());
        let batch = DeltaBatch::new(vec![Edit::Insert {
            items: items.clone(),
        }]);
        let db_after = appended(&db, &items);
        let budget = Budget::unlimited();

        // A warm engine: slices populated by one assessment, exactly
        // the steady state a long-running service sits in. Each timed
        // iteration absorbs one single-transaction delta — the
        // append, then its retraction, alternating so the engine
        // round-trips instead of being re-cloned inside the timing
        // (deleting the just-inserted transaction is always valid and
        // costs the same delta work as the append: m changes, so
        // every support window is rebuilt either way).
        let mut engine = IncrementalEngine::new(&supports, m, &intervals).expect("valid analog");
        engine
            .assess_risk_delta(1, &budget)
            .expect("unlimited budget");
        let retract = DeltaBatch::new(vec![Edit::Delete {
            items: items.clone(),
        }]);
        let mut appended_state = false;

        let mut group = c.benchmark_group(format!("append_one_{}", w.name));
        group.sample_size(10);
        group.bench_function("incremental", |b| {
            b.iter(|| {
                let step = if appended_state { &retract } else { &batch };
                appended_state = !appended_state;
                engine.apply(black_box(step)).expect("valid edit");
                engine
                    .assess_risk_delta(1, &budget)
                    .expect("unlimited budget")
                    .expected_cracks
            })
        });
        group.bench_function("from_scratch", |b| {
            b.iter(|| {
                let supports = black_box(&db_after).supports();
                let graph = GroupedBigraph::new(&supports, m + 1, &intervals);
                OutdegreeProfile::plain(&graph).oestimate()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);

//! P-time: exact permanent computation (Section 4.1's "direct
//! method").
//!
//! Quantifies why the paper abandons exactness: Ryser's `O(2^n · n)`
//! doubles per added item, motivating the O-estimate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use andi_graph::{expected_cracks, permanent, DenseBigraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(n: usize, density: f64, seed: u64) -> DenseBigraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DenseBigraph::new(n);
    for i in 0..n {
        g.add_edge(i, i); // keep it feasible
        for j in 0..n {
            if rng.gen_bool(density) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn bench_permanent(c: &mut Criterion) {
    let mut group = c.benchmark_group("permanent_ryser");
    group.sample_size(10);
    for n in [8usize, 12, 16, 20] {
        let g = random_graph(n, 0.5, n as u64);
        group.bench_function(format!("n{n}"), |b| b.iter(|| permanent(black_box(&g))));
    }
    group.finish();

    // The overflow-checked lane above `SAFE_UNCHECKED_N = 22`: these
    // rows pin down where the raised `MAX_PERMANENT_N` ceiling sits
    // in wall-clock terms.
    let mut group = c.benchmark_group("permanent_ryser_checked");
    group.sample_size(10);
    for n in [24usize, 28] {
        let g = random_graph(n, 0.5, n as u64);
        group.bench_function(format!("n{n}"), |b| b.iter(|| permanent(black_box(&g))));
    }
    group.finish();

    let mut group = c.benchmark_group("exact_expected_cracks");
    group.sample_size(10);
    for n in [8usize, 12] {
        let g = random_graph(n, 0.5, n as u64);
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| expected_cracks(black_box(&g)))
        });
    }
    group.finish();
}

fn bench_convex(c: &mut Criterion) {
    use andi_bench::Workload;
    use andi_data::synth::Analog;
    use andi_graph::convex::expected_cracks_convex;

    let mut group = c.benchmark_group("convex_exact");
    group.sample_size(10);
    // The convex DP handles exactly the cases Ryser cannot: dense
    // benchmark-scale interval graphs.
    for analog in [Analog::Chess, Analog::Mushroom, Analog::Connect] {
        let w = Workload::load(analog);
        let belief = w.delta_med_belief();
        let graph = belief.build_graph(&w.supports, w.n_transactions);
        group.bench_function(w.name.clone(), |b| {
            b.iter(|| {
                expected_cracks_convex(black_box(&graph), 3_000_000)
                    .expect("window fits the budget")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_permanent, bench_convex);
criterion_main!(benches);

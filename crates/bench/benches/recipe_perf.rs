//! P-time: end-to-end Assess-Risk recipe cost (Figure 8), the
//! operation a data owner actually runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use andi_bench::Workload;
use andi_core::{assess_risk, RecipeConfig};
use andi_data::synth::Analog;

fn bench_recipe(c: &mut Criterion) {
    for (label, use_propagation) in [("plain", false), ("propagated", true)] {
        let mut group = c.benchmark_group(format!("assess_risk_{label}"));
        group.sample_size(10);
        for analog in [Analog::Chess, Analog::Connect, Analog::Pumsb] {
            let w = Workload::load(analog);
            let config = RecipeConfig {
                tolerance: 0.1,
                use_propagation,
                ..RecipeConfig::default()
            };
            group.bench_function(w.name.clone(), |b| {
                b.iter(|| {
                    assess_risk(black_box(&w.supports), w.n_transactions, &config)
                        .expect("valid inputs")
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_recipe);
criterion_main!(benches);

//! P-time: throughput of the Section 7.1 matching sampler.
//!
//! Measures swap-walk progress per unit time on small and mid-size
//! mapping spaces — the cost driver behind the paper's 5 000-sample
//! ground-truth runs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use andi_bench::Workload;
use andi_data::synth::Analog;
use andi_graph::sampler::{sample_cracks, SamplerConfig};
use andi_graph::Matching;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A short fixed schedule whose dominant cost is raw swap attempts.
fn budget() -> SamplerConfig {
    SamplerConfig {
        warmup_swaps: 20_000,
        swaps_between_samples: 1_000,
        samples_per_seed: 30,
        n_samples: 30,
        use_locality: true,
    }
}

fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_swaps");
    group.sample_size(10);
    let config = budget();
    let total_swaps =
        (config.warmup_swaps + config.swaps_between_samples * config.samples_per_seed) as u64;
    group.throughput(Throughput::Elements(total_swaps));

    for analog in [Analog::Chess, Analog::Connect, Analog::Pumsb] {
        let w = Workload::load(analog);
        let belief = w.delta_med_belief();
        let graph = belief.build_graph(&w.supports, w.n_transactions);
        let seed = Matching::identity(w.n_items());
        group.bench_function(w.name.clone(), |b| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| sample_cracks(&graph, &seed, &config, &mut rng).expect("seed is consistent"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampler);
criterion_main!(benches);

//! F-fig11: varying the degree of compliancy (Figure 11).
//!
//! For each Figure 10 dataset: sweep α over 0.0..=1.0, print the
//! mask-averaged O-estimate as a fraction of the domain (the
//! figure's y-axis), mark the owner's tolerance τ = 0.1, and report
//! α_max. The paper's qualitative claims to reproduce:
//!
//! * RETAIL sits below τ even at α = 1 (clear disclose);
//! * PUMSB and ACCIDENTS cross τ at a comfortable α (≈ 0.65–0.7);
//! * CONNECT crosses early (≈ 0.2) — the owner should think twice.
//!
//! With `--sim`, each α grid point is also simulated (the figure's
//! second series) by materializing an α-compliant belief function.
//!
//! ```text
//! cargo run --release -p andi-bench --bin fig11_compliancy [--quick] [--sim]
//! ```

use andi_bench::{n_runs, quick_mode, sampler_config, Workload};
use andi_core::recipe::{compliancy_curve_decoy, compliancy_curve_probs};
use andi_core::report::TextTable;
use andi_core::simulate::{simulate_expected_cracks, SimulationConfig};
use andi_core::{assess_risk, OutdegreeProfile, RecipeConfig};
use andi_data::synth::Analog;
use andi_graph::convex::crack_probabilities_convex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let quick = quick_mode();
    let with_sim = std::env::args().any(|a| a == "--sim");
    let tau = 0.1;
    let alphas: Vec<f64> = (0..=10).map(|k| k as f64 / 10.0).collect();

    for analog in Analog::FIGURE_10 {
        let w = Workload::load(analog);
        let n = w.n_items();
        let belief = w.delta_med_belief();
        let graph = belief.build_graph(&w.supports, w.n_transactions);
        // Exact convex marginals when the window allows; otherwise
        // the propagated O-estimate.
        let (probs, estimator) = match crack_probabilities_convex(&graph, 3_000_000) {
            Ok(p) => (p, "convex exact"),
            Err(_) => (
                OutdegreeProfile::propagated(&graph)
                    .expect("compliant space is non-empty")
                    .probabilities(),
                "O-estimate",
            ),
        };
        let curve = compliancy_curve_probs(&probs, &alphas, n_runs(quick), 0xF1611);
        // Decoy-corrected variant: wrong intervals of the same mean
        // width still absorb anonymized items and compete with the
        // compliant claimants, bending the curve super-linear (as the
        // paper's Figure 11 shows and the simulation confirms).
        let decoy =
            compliancy_curve_decoy(&graph, 2.0 * w.delta_med(), &alphas, n_runs(quick), 0xF1611);

        let mut table = TextTable::new(if with_sim {
            vec!["alpha", "OE", "OE/n", "decoy/n", "sim/n", "<= tau?"]
        } else {
            vec!["alpha", "OE", "OE/n", "decoy/n", "<= tau?"]
        });
        for (point, d) in curve.iter().zip(decoy.iter()) {
            let mut row = vec![
                format!("{:.1}", point.alpha),
                format!("{:.2}", point.oestimate),
                format!("{:.4}", point.fraction),
                format!("{:.4}", d.fraction),
            ];
            if with_sim {
                row.push(format!(
                    "{:.4}",
                    simulate_alpha(&w, point.alpha, quick) / n as f64
                ));
            }
            row.push(if point.fraction <= tau { "yes" } else { "no" }.into());
            table.add_row(row);
        }

        // The recipe's α_max at τ = 0.1 for the same profile.
        let verdict = assess_risk(
            &w.supports,
            w.n_transactions,
            &RecipeConfig {
                tolerance: tau,
                n_mask_runs: n_runs(quick),
                use_propagation: true,
                seed: 0xF1611,
                ..RecipeConfig::default()
            },
        )
        .expect("profiles are valid");
        let alpha_max = match verdict.alpha_max() {
            Some(a) => format!("alpha_max = {a:.2}"),
            None => "discloses outright".to_string(),
        };
        println!(
            "Figure 11 — {} (n = {n}, tau = {tau}, estimator: {estimator}): {alpha_max}\n{}",
            w.name,
            table.render()
        );
    }
}

/// Ground-truth simulation at one α: make a random (1-α) fraction of
/// items non-compliant (same interval width, wrong location) and run
/// the Section 7.1 sampler.
fn simulate_alpha(w: &Workload, alpha: f64, quick: bool) -> f64 {
    let n = w.n_items();
    let freqs = w.frequencies();
    let belief = w.delta_med_belief();
    let mut rng = StdRng::seed_from_u64(0x51711 ^ (alpha * 1000.0) as u64);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let n_bad = n - ((alpha * n as f64).round() as usize).min(n);
    let bad: Vec<usize> = order.into_iter().take(n_bad).collect();
    let alpha_belief = belief.with_noncompliant_items(&freqs, &bad, &mut rng);
    let graph = alpha_belief.build_graph(&w.supports, w.n_transactions);
    match simulate_expected_cracks(
        &graph,
        &SimulationConfig {
            sampler: sampler_config(quick, n),
            n_runs: n_runs(quick),
            seed: 0x51711,
            ..SimulationConfig::default()
        },
    ) {
        Ok(sim) => sim.mean(),
        Err(_) => 0.0, // empty mapping space: nothing can be cracked
    }
}

//! F-fig10: accuracy of the O-estimates (Figure 10).
//!
//! For the four datasets of Figure 10, under full compliancy with the
//! recipe's `δ_med` interval width: the O-estimate vs the average
//! simulated estimate (5 runs of the Section 7.1 sampler) with its
//! standard deviation. The paper's claim to reproduce: the
//! O-estimates fall well within one standard deviation of the
//! simulated estimates.
//!
//! ```text
//! cargo run --release -p andi-bench --bin fig10_accuracy [--quick]
//! ```

use std::time::Instant;

use andi_bench::{n_runs, quick_mode, sampler_config, Workload};
use andi_core::report::TextTable;
use andi_core::simulate::{simulate_expected_cracks, SimulationConfig};
use andi_core::OutdegreeProfile;
use andi_data::synth::Analog;
use andi_graph::convex::expected_cracks_convex;

fn main() {
    let quick = quick_mode();
    if quick {
        eprintln!("[fig10] quick mode: reduced sampler schedule");
    }

    let mut table = TextTable::new([
        "dataset",
        "n",
        "OE (plain)",
        "OE (propagated)",
        "convex exact",
        "sim mean",
        "sim std",
        "R-hat",
        "|OE-sim|/std",
        "err %",
        "OE time",
    ]);

    for analog in Analog::FIGURE_10 {
        let w = Workload::load(analog);
        let belief = w.delta_med_belief();
        let graph = belief.build_graph(&w.supports, w.n_transactions);

        let t0 = Instant::now();
        let plain = OutdegreeProfile::plain(&graph).oestimate();
        let plain_time = t0.elapsed();

        let t0 = Instant::now();
        let propagated = OutdegreeProfile::propagated(&graph)
            .expect("compliant belief has a non-empty space")
            .oestimate();
        let prop_time = t0.elapsed();

        // Exact expectation via the convex DP where the window
        // allows it (our addition beyond the paper: dense datasets
        // get ground truth without sampling).
        let exact = expected_cracks_convex(&graph, 3_000_000)
            .map(|e| format!("{:.2} (W={})", e.expected_cracks, e.window))
            .unwrap_or_else(|_| "—".into());

        let sim_config = SimulationConfig {
            sampler: sampler_config(quick, w.n_items()),
            n_runs: n_runs(quick),
            seed: 0xF1610,
            ..SimulationConfig::default()
        };
        let sim = simulate_expected_cracks(&graph, &sim_config)
            .expect("compliant belief has a non-empty space");
        let dev = if sim.std_dev() > 0.0 {
            (propagated - sim.mean()).abs() / sim.std_dev()
        } else {
            f64::INFINITY
        };
        table.add_row([
            w.name.clone(),
            w.n_items().to_string(),
            format!("{plain:.2}"),
            format!("{propagated:.2}"),
            exact,
            format!("{:.2}", sim.mean()),
            format!("{:.3}", sim.std_dev()),
            sim.r_hat()
                .map(|r| format!("{r:.3}"))
                .unwrap_or_else(|| "—".into()),
            format!("{dev:.2}"),
            format!(
                "{:.2}",
                100.0 * (sim.mean() - propagated) / sim.mean().max(1e-12)
            ),
            format!("{:.0?}+{:.0?}", plain_time, prop_time),
        ]);
    }
    println!(
        "Figure 10: O-estimate vs average simulated estimate (full\n\
         compliancy, width = delta_med, {} runs, alternating\n\
         identity/decracked walk starts)\n",
        n_runs(quick)
    );
    println!("{}", table.render());
    println!(
        "paper's claim: |OE - sim| well within one std dev; the 'OE time'\n\
         column backs the \"even for RETAIL it takes only a few seconds\"\n\
         remark of Section 7.2."
    );
}

//! F-fig12: degrees of compliancy from similar data (Figure 12).
//!
//! For the ACCIDENTS and RETAIL analogs: materialize the full
//! transaction database, then run Similarity-by-Sampling (Figure 13)
//! over a range of sample sizes — 10 samples per size, belief
//! intervals of half-width `δ'_med` (the sampled median gap) around
//! the sampled frequencies. The paper's claims to reproduce:
//!
//! * compliancy is high even for small samples (ACCIDENTS > 0.7 at a
//!   10% sample) — contra Clifton's small-sample-safety argument;
//! * RETAIL (sparse) *dips* before rising: larger samples split its
//!   collided low-frequency groups, shrinking `δ'_med`;
//! * using the sampled *average* gap instead pushes compliancy to
//!   ≈ 0.99 everywhere — misleadingly permissive.
//!
//! ```text
//! cargo run --release -p andi-bench --bin fig12_sampling [--quick]
//! ```

use andi_bench::quick_mode;
use andi_core::report::TextTable;
use andi_core::similarity::{similarity_by_sampling, GapPolicy, SimilarityConfig};
use andi_data::synth::Analog;

fn main() {
    let quick = quick_mode();
    let fractions: Vec<f64> = if quick {
        vec![0.05, 0.10, 0.25, 0.50, 0.90]
    } else {
        vec![
            0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90,
        ]
    };
    let samples_per_size = if quick { 3 } else { 10 };

    for analog in [Analog::Accidents, Analog::Retail] {
        eprintln!("[fig12] materializing {} ...", analog.name());
        let db = analog.database();
        eprintln!(
            "[fig12] {}: {} items, {} transactions, avg len {:.1}",
            analog.name(),
            db.n_items(),
            db.n_transactions(),
            db.avg_transaction_len()
        );

        let median = similarity_by_sampling(
            &db,
            &fractions,
            &SimilarityConfig {
                samples_per_size,
                gap_policy: GapPolicy::Median,
                seed: 0xF1612,
            },
        )
        .expect("parameters are valid");
        let mean = similarity_by_sampling(
            &db,
            &fractions,
            &SimilarityConfig {
                samples_per_size,
                gap_policy: GapPolicy::Mean,
                seed: 0xF1612,
            },
        )
        .expect("parameters are valid");

        let mut table = TextTable::new([
            "sample %",
            "alpha (median gap)",
            "std",
            "delta'_med",
            "alpha (mean gap)",
        ]);
        for (p_med, p_mean) in median.iter().zip(mean.iter()) {
            table.add_row([
                format!("{:.0}%", p_med.fraction * 100.0),
                format!("{:.3}", p_med.mean_alpha),
                format!("{:.3}", p_med.std_alpha),
                format!("{:.6}", p_med.mean_delta),
                format!("{:.3}", p_mean.mean_alpha),
            ]);
        }
        println!(
            "Figure 12 — {} ({} samples per size):\n{}",
            analog.name(),
            samples_per_size,
            table.render()
        );
    }
    println!(
        "read against Figure 11: if a modest sample already achieves an\n\
         alpha above the recipe's alpha_max, similar data in a partner's\n\
         hands breaches the owner's tolerance."
    );
}

//! T-fig9: the Figure 9 dataset statistics tables.
//!
//! For each benchmark analog, prints the paper's published values
//! next to the measured values of our calibrated synthetic profile:
//! domain size, transaction count, number of frequency groups,
//! singleton groups, and the mean/median/min/max gap between
//! successive groups. Set `ANDI_DATA_DIR` to a directory of real
//! FIMI `.dat` files to run against the originals instead.
//!
//! ```text
//! cargo run --release -p andi-bench --bin fig9_stats
//! ```

use andi_bench::Workload;
use andi_core::report::TextTable;
use andi_data::synth::Analog;

fn main() {
    // Published Figure 9 rows: (groups, singletons, mean, median,
    // min, max). RETAIL's max gap 0.30102 coincidentally equals
    // log10(2) to five digits; it is the paper's number, not a
    // mistyped constant.
    #[allow(clippy::approx_constant)]
    let paper: [(Analog, usize, usize, f64, f64, f64, f64); 6] = [
        (Analog::Connect, 125, 122, 0.0081, 0.0029, 0.000015, 0.0519),
        (Analog::Pumsb, 650, 421, 0.00154, 0.000041, 0.00002, 0.0536),
        (
            Analog::Accidents,
            310,
            286,
            0.00324,
            0.000176,
            0.000029,
            0.04966,
        ),
        (
            Analog::Retail,
            582,
            218,
            0.00099,
            0.0000113,
            0.0000113,
            0.30102,
        ),
        (Analog::Mushroom, 90, 77, 0.01124, 0.00394, 0.00049, 0.1477),
        (Analog::Chess, 73, 71, 0.01389, 0.00657, 0.000313, 0.0494),
    ];

    let mut shape = TextTable::new([
        "dataset",
        "# items",
        "# trans",
        "# gps (paper)",
        "# gps (ours)",
        "size-1 gps (paper)",
        "size-1 gps (ours)",
    ]);
    let mut gaps = TextTable::new([
        "dataset",
        "mean (paper/ours)",
        "median (paper/ours)",
        "min (paper/ours)",
        "max (paper/ours)",
    ]);

    for &(analog, p_groups, p_singles, p_mean, p_median, p_min, p_max) in &paper {
        let w = Workload::load(analog);
        let fg = w.groups();
        let stats = fg.gap_stats().expect("analogs have multiple groups");
        shape.add_row([
            w.name.clone(),
            w.n_items().to_string(),
            w.n_transactions.to_string(),
            p_groups.to_string(),
            fg.n_groups().to_string(),
            p_singles.to_string(),
            fg.n_singleton_groups().to_string(),
        ]);
        gaps.add_row([
            w.name.clone(),
            format!("{p_mean} / {:.5}", stats.mean),
            format!("{p_median} / {:.6}", stats.median),
            format!("{p_min} / {:.6}", stats.min),
            format!("{p_max} / {:.5}", stats.max),
        ]);
    }

    // `--format md|csv` switches the table renderer (default: text).
    let args: Vec<String> = std::env::args().collect();
    let format = args
        .iter()
        .position(|a| a == "--format")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    let render = |t: &TextTable| match format {
        Some("md") => t.render_markdown(),
        Some("csv") => t.render_csv(),
        _ => t.render(),
    };
    println!("Figure 9 (top): domain shape\n{}", render(&shape));
    println!(
        "Figure 9 (bottom): frequency-gap statistics\n{}",
        render(&gaps)
    );
    println!(
        "note: group and singleton counts are matched by construction; gap\n\
         statistics are matched in distribution (log-normal fit to the\n\
         published mean/median ratio) — see DESIGN.md."
    );
}

//! T-Δ: the Section 5.2 Δ table.
//!
//! Chains of length 3 with `n = (20, 30, 20)` and varying exclusive/
//! shared splits: exact expected cracks (Lemma 6) vs the chain
//! O-estimate, with the paper's published percentage errors printed
//! alongside. Also reproduces the three worked chain numbers (74/45,
//! 197/120) and cross-validates one row against the general
//! O-estimate and the matching sampler on a realized instance.
//!
//! ```text
//! cargo run --release -p andi-bench --bin table_delta
//! ```

use andi_bench::{n_runs, quick_mode, sampler_config};
use andi_core::report::TextTable;
use andi_core::simulate::{simulate_expected_cracks, SimulationConfig};
use andi_core::ChainSpec;

fn main() {
    let quick = quick_mode();

    // ------------------------------------------------------------------
    // Worked examples of Sections 4.2 / 5.2.
    // ------------------------------------------------------------------
    let example = ChainSpec::new(vec![5, 3], vec![3, 2], vec![3]).expect("valid chain");
    println!("Section 4.2 example chain (n = (5,3), e = (3,2), s = 3):");
    println!(
        "  exact E[X] = {:.6}  (paper: 74/45 = {:.6})",
        example.expected_cracks(),
        74.0 / 45.0
    );
    println!(
        "  chain OE   = {:.6}  (paper: 197/120 = {:.6})\n",
        example.oestimate(),
        197.0 / 120.0
    );

    // ------------------------------------------------------------------
    // The Δ table: n = (20, 30, 20), five parameter rows.
    // ------------------------------------------------------------------
    // Note: the paper's camera-ready prints rows 2-4 with "e1 = 15",
    // which violates item conservation (Σe + Σs must equal Σn = 70);
    // e1 = 5 restores conservation and reproduces the published
    // percentage errors exactly (4.8 / 8.3 / 5.76).
    let rows: [(usize, usize, usize, usize, usize, f64); 5] = [
        (10, 10, 10, 20, 20, 1.54),
        (5, 10, 10, 25, 20, 4.8),
        (5, 10, 5, 25, 25, 8.3),
        (5, 6, 5, 27, 27, 5.76),
        (10, 20, 10, 15, 15, 7.23),
    ];
    let mut table = TextTable::new([
        "e1",
        "e2",
        "e3",
        "s1",
        "s2",
        "exact E[X]",
        "chain OE",
        "err %",
        "paper err %",
    ]);
    for &(e1, e2, e3, s1, s2, paper) in &rows {
        let chain = ChainSpec::new(vec![20, 30, 20], vec![e1, e2, e3], vec![s1, s2])
            .expect("table rows are valid chains");
        table.add_row([
            e1.to_string(),
            e2.to_string(),
            e3.to_string(),
            s1.to_string(),
            s2.to_string(),
            format!("{:.4}", chain.expected_cracks()),
            format!("{:.4}", chain.oestimate()),
            format!("{:.2}", chain.percentage_error()),
            format!("{paper}"),
        ]);
    }
    println!("Δ table (chain length 3, n = (20, 30, 20)):");
    println!("{}", table.render());

    // ------------------------------------------------------------------
    // Cross-validation: realize row 1 as a concrete database profile,
    // then check the general O-estimate and the sampler against the
    // closed forms.
    // ------------------------------------------------------------------
    let chain = ChainSpec::new(vec![20, 30, 20], vec![10, 10, 10], vec![20, 20])
        .expect("row 1 is a valid chain");
    let (supports, belief) = chain.realize(10_000).expect("m is large enough");
    let general_oe = andi_core::oestimate(&belief, &supports, 10_000);
    println!("cross-validation on realized row 1 (m = 10000):");
    println!(
        "  general OE (Figure 5) = {:.4}  vs chain closed form = {:.4}",
        general_oe,
        chain.oestimate()
    );

    let graph = belief.build_graph(&supports, 10_000);
    let sim = simulate_expected_cracks(
        &graph,
        &SimulationConfig {
            sampler: sampler_config(quick, supports.len()),
            n_runs: n_runs(quick),
            seed: 0xDE17A,
            ..SimulationConfig::default()
        },
    )
    .expect("compliant chain has a non-empty mapping space");
    println!(
        "  simulated E[X]        = {:.4} ± {:.4}  vs Lemma 6 exact = {:.4}",
        sim.mean(),
        sim.std_dev(),
        chain.expected_cracks()
    );
}

//! Ablation: locality-aware swap proposals vs the paper's uniform
//! pairs.
//!
//! The Section 7.1 walk proposes uniformly random swap pairs. On
//! large domains with many small frequency groups that kernel mixes
//! too slowly to be usable: an item whose few consistent peers are a
//! vanishing fraction of the domain almost never receives an
//! acceptable proposal. Our sampler therefore mixes uniform proposals
//! with *locality* proposals (peers drawn from a window in the
//! frequency-sorted order) — a static, symmetric kernel that keeps
//! the uniform stationary distribution.
//!
//! This binary quantifies the difference: identity-start vs
//! decracked-start run means under both kernels, for growing swap
//! budgets. Converged chains agree regardless of start; a large
//! start-gap means the budget was insufficient.
//!
//! ```text
//! cargo run --release -p andi-bench --bin ablation_mixing [--quick]
//! ```

use andi_bench::{quick_mode, Workload};
use andi_core::report::TextTable;
use andi_core::simulate::{simulate_expected_cracks, SeedMode, SimulationConfig};
use andi_data::synth::Analog;
use andi_graph::sampler::SamplerConfig;

fn main() {
    let quick = quick_mode();
    let budgets: &[usize] = if quick { &[2, 10] } else { &[2, 10, 30, 100] };
    let datasets = if quick {
        vec![Analog::Connect]
    } else {
        vec![Analog::Connect, Analog::Pumsb]
    };

    for analog in datasets {
        let w = Workload::load(analog);
        let n = w.n_items();
        let belief = w.delta_med_belief();
        let graph = belief.build_graph(&w.supports, w.n_transactions);

        let mut table = TextTable::new([
            "sweeps",
            "kernel",
            "identity-start mean",
            "decracked-start mean",
            "start gap",
        ]);
        for &sweeps in budgets {
            for use_locality in [false, true] {
                let sampler = SamplerConfig {
                    warmup_swaps: sweeps * n,
                    swaps_between_samples: n,
                    samples_per_seed: 100,
                    n_samples: if quick { 200 } else { 400 },
                    use_locality,
                };
                let run = |mode: SeedMode| {
                    simulate_expected_cracks(
                        &graph,
                        &SimulationConfig {
                            sampler,
                            n_runs: 2,
                            seed: 0xAB1A,
                            seed_mode: mode,
                        },
                    )
                    .expect("compliant space is non-empty")
                    .mean()
                };
                let ident = run(SeedMode::Identity);
                let decr = run(SeedMode::Decracked);
                table.add_row([
                    sweeps.to_string(),
                    if use_locality {
                        "local+uniform"
                    } else {
                        "uniform"
                    }
                    .to_string(),
                    format!("{ident:.2}"),
                    format!("{decr:.2}"),
                    format!("{:.2}", (ident - decr).abs()),
                ]);
            }
        }
        println!(
            "mixing ablation — {} (n = {n}; 'sweeps' = warm-up swaps / n):\n{}",
            w.name,
            table.render()
        );
    }
    println!(
        "reading: the 'start gap' column estimates residual mixing bias; the\n\
         locality kernel closes it with an order of magnitude fewer sweeps."
    );
}

//! Shared plumbing for the benchmark harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); the helpers here
//! keep them small: analog loading (with an escape hatch to real
//! FIMI files), the recipe's `δ_med` belief construction, and a
//! `--quick` switch that scales the simulation schedules down for
//! smoke runs.

use andi_core::BeliefFunction;
use andi_data::synth::Analog;
use andi_data::FrequencyGroups;
use andi_graph::sampler::SamplerConfig;

/// A loaded dataset profile ready for analysis.
pub struct Workload {
    /// Dataset label for tables.
    pub name: String,
    /// Per-item support counts (aligned indexing).
    pub supports: Vec<u64>,
    /// Number of transactions.
    pub n_transactions: u64,
}

impl Workload {
    /// Loads the analog, or — when the environment variable
    /// `ANDI_DATA_DIR` points at a directory containing
    /// `<name>.dat` in FIMI format — the *real* benchmark dataset.
    pub fn load(analog: Analog) -> Workload {
        if let Ok(dir) = std::env::var("ANDI_DATA_DIR") {
            let path =
                std::path::Path::new(&dir).join(format!("{}.dat", analog.name().to_lowercase()));
            if path.exists() {
                match andi_data::fimi::read_fimi_file(&path) {
                    Ok(ds) => {
                        eprintln!("[workload] using real dataset {}", path.display());
                        return Workload {
                            name: format!("{} (real)", analog.name()),
                            supports: ds.database.supports(),
                            n_transactions: ds.database.n_transactions() as u64,
                        };
                    }
                    Err(e) => eprintln!(
                        "[workload] failed to read {}: {e}; falling back to analog",
                        path.display()
                    ),
                }
            }
        }
        Workload {
            name: analog.name().to_string(),
            supports: analog.supports(),
            n_transactions: analog.spec().n_transactions,
        }
    }

    /// Domain size.
    pub fn n_items(&self) -> usize {
        self.supports.len()
    }

    /// Item frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        let m = self.n_transactions as f64;
        self.supports.iter().map(|&s| s as f64 / m).collect()
    }

    /// Frequency groups of the profile.
    pub fn groups(&self) -> FrequencyGroups {
        FrequencyGroups::from_supports(&self.supports, self.n_transactions)
    }

    /// The recipe's `δ_med`: the median frequency-group gap.
    pub fn delta_med(&self) -> f64 {
        self.groups().median_gap().unwrap_or(0.0)
    }

    /// The compliant interval belief function of recipe step 5:
    /// `[f_x - δ_med, f_x + δ_med]`.
    pub fn delta_med_belief(&self) -> BeliefFunction {
        BeliefFunction::widened(&self.frequencies(), self.delta_med())
            .expect("frequencies derived from counts are valid")
    }
}

/// Whether `--quick` was passed (smoke-test scale).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The Section 7.1 sampler schedule with swap budgets scaled to the
/// domain size (see [`andi_core::simulate::SimulationConfig::scaled`]),
/// or a reduced version under `--quick`.
pub fn sampler_config(quick: bool, n_items: usize) -> SamplerConfig {
    let n = n_items.max(1);
    if quick {
        SamplerConfig {
            warmup_swaps: (15 * n).max(10_000),
            swaps_between_samples: n.max(1_000),
            samples_per_seed: 125,
            n_samples: 500,
            use_locality: true,
        }
    } else {
        SamplerConfig {
            warmup_swaps: (30 * n).max(100_000),
            swaps_between_samples: (2 * n).max(10_000),
            samples_per_seed: 250,
            n_samples: 5_000,
            use_locality: true,
        }
    }
}

/// Number of simulation runs (the paper averages 5; 2 under
/// `--quick`).
pub fn n_runs(quick: bool) -> usize {
    if quick {
        2
    } else {
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_loads_analogs() {
        let w = Workload::load(Analog::Chess);
        assert_eq!(w.name, "CHESS");
        assert_eq!(w.n_items(), 75);
        assert_eq!(w.n_transactions, 3_196);
        assert!(w.delta_med() > 0.0);
        let b = w.delta_med_belief();
        assert!((b.alpha(&w.frequencies()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampler_configs_scale() {
        let quick = sampler_config(true, 100);
        let full = sampler_config(false, 100);
        assert!(quick.n_samples < full.n_samples);
        assert_eq!(full.n_samples, 5_000);
        assert_eq!(full.warmup_swaps, 100_000, "paper floor for small n");
        // Large domains get proportional budgets.
        let big = sampler_config(false, 16_470);
        assert_eq!(big.warmup_swaps, 30 * 16_470);
        assert_eq!(big.swaps_between_samples, 2 * 16_470);
        assert_eq!(n_runs(false), 5);
        assert_eq!(n_runs(true), 2);
    }
}

//! The paper's worked examples as oracle instances. These are the
//! hand-written ground-truth anchors: every constructor here enters
//! the committed regression corpus and is replayed by the ordinary
//! test suite, and the integration tests pin their exact values.

use andi_core::ChainSpec;

use crate::error::OracleError;
use crate::instance::{Instance, Regime};

/// BigMart supports of Figure 1 (m = 10 transactions).
pub const BIGMART_SUPPORTS: [u64; 6] = [5, 4, 5, 5, 3, 5];

/// BigMart transaction count.
pub const BIGMART_M: u64 = 10;

/// The belief function `h` of Figure 2 over BigMart: exact expected
/// cracks 1.8125, O-estimate 94/60.
pub fn bigmart_h() -> Instance {
    Instance {
        label: "paper:bigmart-h".into(),
        regime: Regime::AlphaCompliant,
        supports: BIGMART_SUPPORTS.to_vec(),
        m: BIGMART_M,
        intervals: vec![
            (0.0, 1.0),
            (0.4, 0.5),
            (0.5, 0.5),
            (0.4, 0.6),
            (0.1, 0.4),
            (0.5, 0.5),
        ],
        mask: None,
    }
}

/// The point-valued belief `f` of Figure 2: Lemma 3 gives exactly
/// `g = 3` expected cracks (groups {5'}, {2'}, {1',3',4',6'}).
pub fn bigmart_point() -> Instance {
    let intervals = BIGMART_SUPPORTS
        .iter()
        .map(|&s| {
            let f = s as f64 / BIGMART_M as f64;
            (f, f)
        })
        .collect();
    Instance {
        label: "paper:bigmart-point".into(),
        regime: Regime::PointCompliant,
        supports: BIGMART_SUPPORTS.to_vec(),
        m: BIGMART_M,
        intervals,
        mask: None,
    }
}

/// The ignorant belief `g` of Figure 2: Lemma 1 gives exactly one
/// expected crack.
pub fn bigmart_ignorant() -> Instance {
    Instance {
        label: "paper:bigmart-ignorant".into(),
        regime: Regime::Ignorant,
        supports: BIGMART_SUPPORTS.to_vec(),
        m: BIGMART_M,
        intervals: vec![(0.0, 1.0); 6],
        mask: None,
    }
}

/// Realizes a chain spec as an instance.
fn chain_instance(
    label: &str,
    sizes: Vec<usize>,
    e: Vec<usize>,
    s: Vec<usize>,
    m: u64,
) -> Result<Instance, OracleError> {
    let spec = ChainSpec::new(sizes, e, s)?;
    let (supports, belief) = spec.realize(m)?;
    Ok(Instance {
        label: label.into(),
        regime: Regime::Chain,
        supports,
        m,
        intervals: belief.intervals().to_vec(),
        mask: None,
    })
}

/// The Section 4.2 chain — groups (5, 3) with 3 shared items — whose
/// Lemma 5 expectation is 74/45 and whose OE is 197/120.
pub fn section_4_2_chain() -> Result<Instance, OracleError> {
    chain_instance("paper:chain-4-2", vec![5, 3], vec![3, 2], vec![3], 90)
}

/// The five chains of the Section 5.2 Δ table, all over group sizes
/// (20, 30, 20) at m = 120.
pub fn delta_table() -> Result<Vec<Instance>, OracleError> {
    let rows: [(usize, usize, usize, usize, usize); 5] = [
        (10, 10, 10, 20, 20),
        (5, 10, 10, 25, 20),
        (5, 10, 5, 25, 25),
        (5, 6, 5, 27, 27),
        (10, 20, 10, 15, 15),
    ];
    rows.iter()
        .enumerate()
        .map(|(i, &(e1, e2, e3, s1, s2))| {
            chain_instance(
                &format!("paper:delta-row-{}", i + 1),
                vec![20, 30, 20],
                vec![e1, e2, e3],
                vec![s1, s2],
                120,
            )
        })
        .collect()
}

/// The Figure 6(a) staircase: OE 25/12 without propagation, a unique
/// matching (permanent 1), so the true crack count is 4.
pub fn staircase_6a() -> Instance {
    let f = |s: u64| s as f64 / 10.0;
    Instance {
        label: "paper:staircase-6a".into(),
        regime: Regime::AlphaCompliant,
        supports: vec![2, 4, 6, 8],
        m: 10,
        intervals: vec![(f(2), f(2)), (f(2), f(4)), (f(2), f(6)), (f(2), f(8))],
        mask: None,
    }
}

/// The Figure 6(b) instance: items 1'/2' are individually
/// indistinguishable (each cracked with probability 1/2) yet the
/// pair {1',2'} maps onto {1,2}.
pub fn figure_6b() -> Instance {
    let f = |s: u64| s as f64 / 10.0;
    Instance {
        label: "paper:figure-6b".into(),
        regime: Regime::AlphaCompliant,
        supports: vec![2, 4, 6, 8],
        m: 10,
        intervals: vec![(f(2), f(4)), (f(2), f(4)), (f(4), f(8)), (f(6), f(8))],
        mask: None,
    }
}

/// Every paper case, in corpus order.
pub fn all() -> Result<Vec<Instance>, OracleError> {
    let mut out = vec![
        bigmart_h(),
        bigmart_point(),
        bigmart_ignorant(),
        section_4_2_chain()?,
        staircase_6a(),
        figure_6b(),
    ];
    out.extend(delta_table()?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_are_valid_and_uniquely_labelled() {
        let cases = all().unwrap();
        assert_eq!(cases.len(), 11);
        let mut labels: Vec<&str> = cases.iter().map(|c| c.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 11, "labels must be unique");
        for c in &cases {
            assert!(c.validate().is_ok(), "{}: {:?}", c.label, c.validate());
        }
    }

    #[test]
    fn chain_cases_realize_the_paper_numbers() {
        let chain = section_4_2_chain().unwrap();
        assert_eq!(chain.n(), 8);
        let g = chain.graph().unwrap();
        let spec = ChainSpec::detect(&g).expect("paper chain detects");
        assert!((spec.expected_cracks() - 74.0 / 45.0).abs() < 1e-12);
        assert!((spec.oestimate() - 197.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn delta_rows_reproduce_published_errors() {
        let want = [
            (1.54, 0.01),
            (4.80, 0.01),
            (8.33, 0.04),
            (5.76, 0.01),
            (7.27, 0.01),
        ];
        for (inst, &(pct, tol)) in delta_table().unwrap().iter().zip(want.iter()) {
            let g = inst.graph().unwrap();
            let spec = ChainSpec::detect(&g).expect("delta chain detects");
            assert!(
                (spec.percentage_error() - pct).abs() <= tol,
                "{}: {:.3}% vs {pct}%",
                inst.label,
                spec.percentage_error()
            );
        }
    }
}

//! Oracle instances: a concrete anonymized release plus a hacker
//! belief, in a line-oriented text form stable enough to commit as a
//! regression corpus.
//!
//! An instance is everything an estimator needs: the observed support
//! profile (which doubles as the ground truth under aligned
//! indexing), the transaction count, one belief interval per item,
//! and an optional subset-of-interest mask for the restricted lemmas
//! (Lemmas 2/4/10). The generating regime and a free-form label ride
//! along as provenance.

use andi_core::BeliefFunction;
use andi_graph::GroupedBigraph;

use crate::error::OracleError;

/// The stratified generator regimes of the conformance sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Every interval is `[0, 1]` (Lemmas 1/2 territory).
    Ignorant,
    /// Compliant point-valued beliefs (Lemmas 3/4).
    PointCompliant,
    /// Widened compliant intervals with a chosen fraction of items
    /// made non-compliant.
    AlphaCompliant,
    /// Realized chain beliefs (Lemmas 5/6), including the k = 1 and
    /// k = n boundary chains.
    Chain,
    /// Near-degenerate structure: empty mapping spaces, duplicate
    /// frequencies, all-tied groups.
    NearDegenerate,
    /// Larger domains up to `MAX_PERMANENT_N` with mixed interval
    /// shapes; only the cheap relations apply.
    Adversarial,
}

impl Regime {
    /// Every regime, in sweep order.
    pub const ALL: [Regime; 6] = [
        Regime::Ignorant,
        Regime::PointCompliant,
        Regime::AlphaCompliant,
        Regime::Chain,
        Regime::NearDegenerate,
        Regime::Adversarial,
    ];

    /// The kebab-case name used by the CLI and the serializer.
    pub fn name(self) -> &'static str {
        match self {
            Regime::Ignorant => "ignorant",
            Regime::PointCompliant => "point-compliant",
            Regime::AlphaCompliant => "alpha-compliant",
            Regime::Chain => "chain",
            Regime::NearDegenerate => "near-degenerate",
            Regime::Adversarial => "adversarial",
        }
    }

    /// Parses a kebab-case regime name.
    ///
    /// # Errors
    ///
    /// Unknown names are a parse error.
    pub fn parse(name: &str) -> Result<Regime, OracleError> {
        Regime::ALL
            .iter()
            .copied()
            .find(|r| r.name() == name)
            .ok_or_else(|| OracleError::Parse(format!("unknown regime {name:?}")))
    }
}

impl std::fmt::Display for Regime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A single conformance-oracle instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// Free-form provenance (e.g. `gen seed=7 index=12` or
    /// `paper:bigmart-h`).
    pub label: String,
    /// The regime the instance belongs to.
    pub regime: Regime,
    /// Observed (= true, aligned indexing) support of each item.
    pub supports: Vec<u64>,
    /// Transaction count the supports are relative to.
    pub m: u64,
    /// The hacker's belief interval per item.
    pub intervals: Vec<(f64, f64)>,
    /// Optional subset-of-interest mask for the restricted lemmas.
    pub mask: Option<Vec<bool>>,
}

const HEADER: &str = "andi-oracle instance v1";

impl Instance {
    /// Domain size.
    pub fn n(&self) -> usize {
        self.supports.len()
    }

    /// True item frequencies `support / m`.
    pub fn frequencies(&self) -> Vec<f64> {
        self.supports
            .iter()
            .map(|&s| s as f64 / self.m as f64)
            .collect()
    }

    /// Structural validation: non-empty domain, positive `m`,
    /// supports within `[0, m]`, intervals within `[0, 1]` and
    /// ordered, mask covering the domain.
    ///
    /// # Errors
    ///
    /// A message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), OracleError> {
        if self.supports.is_empty() {
            return Err(OracleError::Invalid("empty domain".into()));
        }
        if self.m == 0 {
            return Err(OracleError::Invalid("m must be positive".into()));
        }
        if self.intervals.len() != self.n() {
            return Err(OracleError::Invalid(format!(
                "{} intervals for {} items",
                self.intervals.len(),
                self.n()
            )));
        }
        if let Some(bad) = self.supports.iter().position(|&s| s > self.m) {
            return Err(OracleError::Invalid(format!(
                "item {bad}: support exceeds m"
            )));
        }
        for (x, &(l, r)) in self.intervals.iter().enumerate() {
            if !(0.0 <= l && l <= r && r <= 1.0) {
                return Err(OracleError::Invalid(format!(
                    "item {x}: invalid interval [{l}, {r}]"
                )));
            }
        }
        if let Some(mask) = &self.mask {
            if mask.len() != self.n() {
                return Err(OracleError::Invalid(format!(
                    "mask covers {} of {} items",
                    mask.len(),
                    self.n()
                )));
            }
        }
        Ok(())
    }

    /// The belief function of the instance.
    ///
    /// # Errors
    ///
    /// Propagates interval validation failures.
    pub fn belief(&self) -> Result<BeliefFunction, OracleError> {
        BeliefFunction::from_intervals(self.intervals.clone()).map_err(OracleError::Core)
    }

    /// The grouped mapping-space graph of the instance.
    ///
    /// # Errors
    ///
    /// Validation failures ([`Instance::validate`]).
    pub fn graph(&self) -> Result<GroupedBigraph, OracleError> {
        self.validate()?;
        Ok(GroupedBigraph::new(&self.supports, self.m, &self.intervals))
    }

    /// The fraction of items whose interval contains the truth.
    pub fn alpha(&self) -> f64 {
        match self.belief() {
            Ok(b) => b.alpha(&self.frequencies()),
            Err(_) => 0.0,
        }
    }

    /// Serializes to the committed line-oriented corpus format.
    /// Floats use Rust's shortest round-trip `Display`, so
    /// `from_text(to_text(x)) == x` bit-exactly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("label: {}\n", self.label));
        out.push_str(&format!("regime: {}\n", self.regime));
        out.push_str(&format!("m: {}\n", self.m));
        let supports: Vec<String> = self.supports.iter().map(u64::to_string).collect();
        out.push_str(&format!("supports: {}\n", supports.join(" ")));
        let intervals: Vec<String> = self
            .intervals
            .iter()
            .map(|&(l, r)| format!("{l},{r}"))
            .collect();
        out.push_str(&format!("intervals: {}\n", intervals.join(" ")));
        if let Some(mask) = &self.mask {
            let bits: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
            out.push_str(&format!("mask: {bits}\n"));
        }
        out
    }

    /// Parses the corpus format.
    ///
    /// # Errors
    ///
    /// Malformed headers, fields, or numbers.
    pub fn from_text(text: &str) -> Result<Instance, OracleError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header.trim() != HEADER {
            return Err(OracleError::Parse(format!(
                "bad header {:?} (want {HEADER:?})",
                header.trim()
            )));
        }
        let mut label = None;
        let mut regime = None;
        let mut m = None;
        let mut supports = None;
        let mut intervals = None;
        let mut mask = None;
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| OracleError::Parse(format!("missing ':' in line {line:?}")))?;
            let value = value.trim();
            match key.trim() {
                "label" => label = Some(value.to_string()),
                "regime" => regime = Some(Regime::parse(value)?),
                "m" => m = Some(parse_num::<u64>(value, "m")?),
                "supports" => {
                    supports = Some(
                        value
                            .split_whitespace()
                            .map(|t| parse_num::<u64>(t, "support"))
                            .collect::<Result<Vec<_>, _>>()?,
                    )
                }
                "intervals" => {
                    intervals = Some(
                        value
                            .split_whitespace()
                            .map(parse_interval)
                            .collect::<Result<Vec<_>, _>>()?,
                    )
                }
                "mask" => {
                    mask = Some(
                        value
                            .chars()
                            .map(|c| match c {
                                '1' => Ok(true),
                                '0' => Ok(false),
                                other => Err(OracleError::Parse(format!("bad mask bit {other:?}"))),
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    )
                }
                other => {
                    return Err(OracleError::Parse(format!("unknown field {other:?}")));
                }
            }
        }
        let inst = Instance {
            label: label.ok_or_else(|| OracleError::Parse("missing label".into()))?,
            regime: regime.ok_or_else(|| OracleError::Parse("missing regime".into()))?,
            supports: supports.ok_or_else(|| OracleError::Parse("missing supports".into()))?,
            m: m.ok_or_else(|| OracleError::Parse("missing m".into()))?,
            intervals: intervals.ok_or_else(|| OracleError::Parse("missing intervals".into()))?,
            mask,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Renders the instance as a JSON object (for the CLI's `--format
    /// json` failure reports).
    pub fn to_json(&self) -> String {
        let supports: Vec<String> = self.supports.iter().map(u64::to_string).collect();
        let intervals: Vec<String> = self
            .intervals
            .iter()
            .map(|&(l, r)| format!("[{l},{r}]"))
            .collect();
        let mask = match &self.mask {
            None => "null".to_string(),
            Some(m) => format!(
                "[{}]",
                m.iter()
                    .map(|&b| if b { "true" } else { "false" })
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        };
        format!(
            "{{\"label\":{},\"regime\":\"{}\",\"m\":{},\"supports\":[{}],\"intervals\":[{}],\"mask\":{}}}",
            json_string(&self.label),
            self.regime,
            self.m,
            supports.join(","),
            intervals.join(","),
            mask
        )
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse_num<T: std::str::FromStr>(text: &str, what: &str) -> Result<T, OracleError> {
    text.parse()
        .map_err(|_| OracleError::Parse(format!("cannot parse {what}: {text:?}")))
}

fn parse_interval(token: &str) -> Result<(f64, f64), OracleError> {
    let (l, r) = token
        .split_once(',')
        .ok_or_else(|| OracleError::Parse(format!("interval {token:?} is not 'l,r'")))?;
    Ok((
        parse_num(l, "interval low")?,
        parse_num(r, "interval high")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance {
            label: "unit:sample".into(),
            regime: Regime::AlphaCompliant,
            supports: vec![5, 4, 3],
            m: 10,
            intervals: vec![(0.4, 0.6), (0.1 + 0.2, 0.5), (0.0, 1.0)],
            mask: Some(vec![true, false, true]),
        }
    }

    #[test]
    fn text_round_trip_is_bit_exact() {
        let inst = sample();
        let text = inst.to_text();
        let back = Instance::from_text(&text).unwrap();
        assert_eq!(back, inst);
        // Including the awkward 0.30000000000000004 endpoint.
        assert_eq!(back.intervals[1].0, 0.1 + 0.2);
        // Serialization is canonical: a second trip is identical.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn round_trip_without_mask() {
        let mut inst = sample();
        inst.mask = None;
        let back = Instance::from_text(&inst.to_text()).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Instance::from_text("nonsense").is_err());
        let good = sample().to_text();
        assert!(
            Instance::from_text(&good.replace("regime: alpha-compliant", "regime: x")).is_err()
        );
        assert!(Instance::from_text(&good.replace("m: 10", "m: ten")).is_err());
        assert!(Instance::from_text(&good.replace("supports: 5 4 3", "supports: 5 4")).is_err());
        assert!(Instance::from_text(&good.replace("mask: 101", "mask: 1x1")).is_err());
        assert!(Instance::from_text(&good.replace("label: unit:sample\n", "")).is_err());
    }

    #[test]
    fn validate_catches_structural_problems() {
        let mut inst = sample();
        inst.supports[0] = 11; // exceeds m
        assert!(inst.validate().is_err());
        let mut inst = sample();
        inst.intervals[2] = (0.9, 0.1);
        assert!(inst.validate().is_err());
        let mut inst = sample();
        inst.mask = Some(vec![true]);
        assert!(inst.validate().is_err());
        let mut inst = sample();
        inst.m = 0;
        assert!(inst.validate().is_err());
        let mut inst = sample();
        inst.supports.clear();
        inst.intervals.clear();
        assert!(inst.validate().is_err());
    }

    #[test]
    fn regime_names_round_trip() {
        for r in Regime::ALL {
            assert_eq!(Regime::parse(r.name()).unwrap(), r);
        }
        assert!(Regime::parse("bogus").is_err());
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut inst = sample();
        inst.label = "a \"b\"\n".into();
        let json = inst.to_json();
        assert!(json.contains("\"a \\\"b\\\"\\n\""));
        assert!(json.contains("\"supports\":[5,4,3]"));
        assert!(json.contains("\"mask\":[true,false,true]"));
        inst.mask = None;
        assert!(inst.to_json().contains("\"mask\":null"));
    }

    #[test]
    fn frequencies_and_alpha() {
        let inst = sample();
        let f = inst.frequencies();
        assert_eq!(f, vec![0.5, 0.4, 0.3]);
        // Interval 0 contains 0.5, interval 1 contains 0.4,
        // interval 2 contains 0.3: fully compliant.
        assert!((inst.alpha() - 1.0).abs() < 1e-12);
    }
}

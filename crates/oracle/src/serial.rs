//! Hand-rolled JSON (de)serialization for assessment provenance.
//!
//! The workspace vendors no serde, so the CLI's `--provenance-json`
//! output and the oracle's round-trip tests share this module: a
//! minimal JSON value type, a recursive-descent parser for it, and a
//! faithful mapping for [`Provenance`] including every structured
//! [`Error`] variant a degradation trip can carry.

use andi_core::{Error, Provenance, Rung};

use crate::error::OracleError;
use crate::instance::json_string;

/// A parsed JSON value. Numbers keep their literal text so integer
/// widths (`u128` spent-times) survive the round trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, OracleError> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0usize;
        let v = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(OracleError::Parse(format!(
                "trailing characters at offset {pos}"
            )));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The literal text of a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Json::Num(n) => Some(n),
            _ => None,
        }
    }
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect_char(b: &[char], pos: &mut usize, c: char) -> Result<(), OracleError> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(OracleError::Parse(format!(
            "expected '{c}' at offset {}",
            *pos
        )))
    }
}

fn parse_value(b: &[char], pos: &mut usize) -> Result<Json, OracleError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some('{') => parse_object(b, pos),
        Some('[') => parse_array(b, pos),
        Some('"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some('t') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some('f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some('n') => parse_keyword(b, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, pos),
        other => Err(OracleError::Parse(format!(
            "unexpected {:?} at offset {}",
            other, *pos
        ))),
    }
}

fn parse_keyword(
    b: &[char],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, OracleError> {
    for expected in word.chars() {
        if b.get(*pos) != Some(&expected) {
            return Err(OracleError::Parse(format!(
                "bad literal at offset {}",
                *pos
            )));
        }
        *pos += 1;
    }
    Ok(value)
}

fn parse_number(b: &[char], pos: &mut usize) -> Result<Json, OracleError> {
    let start = *pos;
    if b.get(*pos) == Some(&'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], '.' | 'e' | 'E' | '+' | '-'))
    {
        *pos += 1;
    }
    let text: String = b[start..*pos].iter().collect();
    if text.parse::<f64>().is_err() {
        return Err(OracleError::Parse(format!("bad number literal {text:?}")));
    }
    Ok(Json::Num(text))
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, OracleError> {
    expect_char(b, pos, '"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = b
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| OracleError::Parse("unterminated escape".into()))?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'u' => {
                        if *pos + 4 > b.len() {
                            return Err(OracleError::Parse("short \\u escape".into()));
                        }
                        let hex: String = b[*pos..*pos + 4].iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| OracleError::Parse(format!("bad \\u escape {hex:?}")))?;
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(OracleError::Parse(format!("unknown escape \\{other}"))),
                }
            }
            other => out.push(other),
        }
    }
    Err(OracleError::Parse("unterminated string".into()))
}

fn parse_array(b: &[char], pos: &mut usize) -> Result<Json, OracleError> {
    expect_char(b, pos, '[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some(']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(OracleError::Parse(format!("bad array at offset {}", *pos))),
        }
    }
}

fn parse_object(b: &[char], pos: &mut usize) -> Result<Json, OracleError> {
    expect_char(b, pos, '{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect_char(b, pos, ':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => *pos += 1,
            Some('}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(OracleError::Parse(format!("bad object at offset {}", *pos))),
        }
    }
}

// ---------------------------------------------------------------------------
// Provenance mapping
// ---------------------------------------------------------------------------

fn rung_name(r: Rung) -> &'static str {
    match r {
        Rung::Exact => "exact-permanent",
        Rung::Sampler => "matching-sampler",
        Rung::OEstimate => "o-estimate",
    }
}

fn rung_from_name(name: &str) -> Result<Rung, OracleError> {
    match name {
        "exact-permanent" => Ok(Rung::Exact),
        "matching-sampler" => Ok(Rung::Sampler),
        "o-estimate" => Ok(Rung::OEstimate),
        other => Err(OracleError::Parse(format!("unknown rung {other:?}"))),
    }
}

/// Serializes a core error as a `{"kind": ...}`-tagged JSON object.
pub fn error_to_json(e: &Error) -> String {
    match e {
        Error::DomainMismatch { expected, got } => {
            format!("{{\"kind\":\"domain-mismatch\",\"expected\":{expected},\"got\":{got}}}")
        }
        Error::InvalidInterval { item, low, high } => format!(
            "{{\"kind\":\"invalid-interval\",\"item\":{item},\"low\":{low},\"high\":{high}}}"
        ),
        Error::InvalidParameter(msg) => format!(
            "{{\"kind\":\"invalid-parameter\",\"message\":{}}}",
            json_string(msg)
        ),
        Error::EmptyMappingSpace => "{\"kind\":\"empty-mapping-space\"}".to_string(),
        Error::Sampler(msg) => {
            format!("{{\"kind\":\"sampler\",\"message\":{}}}", json_string(msg))
        }
        Error::Data(msg) => {
            format!("{{\"kind\":\"data\",\"message\":{}}}", json_string(msg))
        }
        Error::WorkerPanic { task, payload } => format!(
            "{{\"kind\":\"worker-panic\",\"task\":{task},\"payload\":{}}}",
            json_string(payload)
        ),
        Error::BudgetExceeded { budget_ms } => {
            format!("{{\"kind\":\"budget-exceeded\",\"budget_ms\":{budget_ms}}}")
        }
        Error::Cancelled => "{\"kind\":\"cancelled\"}".to_string(),
        Error::Overflow(msg) => {
            format!("{{\"kind\":\"overflow\",\"message\":{}}}", json_string(msg))
        }
    }
}

fn num_field<T: std::str::FromStr>(v: &Json, key: &str) -> Result<T, OracleError> {
    v.get(key)
        .and_then(Json::as_num)
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| OracleError::Parse(format!("missing or bad field {key:?}")))
}

fn str_field(v: &Json, key: &str) -> Result<String, OracleError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| OracleError::Parse(format!("missing or bad field {key:?}")))
}

/// Parses an error object produced by [`error_to_json`].
pub fn error_from_json(v: &Json) -> Result<Error, OracleError> {
    let kind = str_field(v, "kind")?;
    match kind.as_str() {
        "domain-mismatch" => Ok(Error::DomainMismatch {
            expected: num_field(v, "expected")?,
            got: num_field(v, "got")?,
        }),
        "invalid-interval" => Ok(Error::InvalidInterval {
            item: num_field(v, "item")?,
            low: num_field(v, "low")?,
            high: num_field(v, "high")?,
        }),
        "invalid-parameter" => Ok(Error::InvalidParameter(str_field(v, "message")?)),
        "empty-mapping-space" => Ok(Error::EmptyMappingSpace),
        "sampler" => Ok(Error::Sampler(str_field(v, "message")?)),
        "data" => Ok(Error::Data(str_field(v, "message")?)),
        "worker-panic" => Ok(Error::WorkerPanic {
            task: num_field(v, "task")?,
            payload: str_field(v, "payload")?,
        }),
        "budget-exceeded" => Ok(Error::BudgetExceeded {
            budget_ms: num_field(v, "budget_ms")?,
        }),
        "cancelled" => Ok(Error::Cancelled),
        "overflow" => Ok(Error::Overflow(str_field(v, "message")?)),
        other => Err(OracleError::Parse(format!("unknown error kind {other:?}"))),
    }
}

/// Serializes a provenance record to a single-line JSON document.
pub fn provenance_to_json(p: &Provenance) -> String {
    let trips: Vec<String> = p
        .trips
        .iter()
        .map(|(rung, err)| {
            format!(
                "{{\"rung\":\"{}\",\"error\":{}}}",
                rung_name(*rung),
                error_to_json(err)
            )
        })
        .collect();
    let budget = match p.budget_ms {
        Some(ms) => ms.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"rung\":\"{}\",\"degraded\":{},\"trips\":[{}],\"budget_ms\":{},\"spent_ms\":{}}}",
        rung_name(p.rung),
        p.degraded,
        trips.join(","),
        budget,
        p.spent_ms
    )
}

/// Parses a provenance record produced by [`provenance_to_json`].
pub fn provenance_from_json(text: &str) -> Result<Provenance, OracleError> {
    let v = Json::parse(text)?;
    let rung = rung_from_name(&str_field(&v, "rung")?)?;
    let degraded = match v.get("degraded") {
        Some(Json::Bool(b)) => *b,
        _ => {
            return Err(OracleError::Parse(
                "missing or bad field \"degraded\"".into(),
            ))
        }
    };
    let trips = match v.get("trips") {
        Some(Json::Arr(items)) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                let trip_rung = rung_from_name(&str_field(item, "rung")?)?;
                let err = item
                    .get("error")
                    .ok_or_else(|| OracleError::Parse("trip without error".into()))?;
                out.push((trip_rung, error_from_json(err)?));
            }
            out
        }
        _ => return Err(OracleError::Parse("missing or bad field \"trips\"".into())),
    };
    let budget_ms = match v.get("budget_ms") {
        Some(Json::Null) => None,
        Some(Json::Num(n)) => Some(
            n.parse()
                .map_err(|_| OracleError::Parse(format!("bad budget_ms literal {n:?}")))?,
        ),
        _ => {
            return Err(OracleError::Parse(
                "missing or bad field \"budget_ms\"".into(),
            ))
        }
    };
    let spent_ms = num_field(&v, "spent_ms")?;
    Ok(Provenance {
        rung,
        degraded,
        trips,
        budget_ms,
        spent_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_errors() -> Vec<Error> {
        vec![
            Error::DomainMismatch {
                expected: 5,
                got: 3,
            },
            Error::InvalidInterval {
                item: 2,
                low: 0.25,
                high: 0.125,
            },
            Error::InvalidParameter("n > MAX_PERMANENT_N".into()),
            Error::EmptyMappingSpace,
            Error::Sampler("cold chain".into()),
            Error::Data("bad \"fimi\" line".into()),
            Error::WorkerPanic {
                task: 7,
                payload: "boom\nwith newline".into(),
            },
            Error::BudgetExceeded { budget_ms: 250 },
            Error::Cancelled,
            Error::Overflow("u128".into()),
        ]
    }

    #[test]
    fn every_error_variant_round_trips() {
        for e in sample_errors() {
            let text = error_to_json(&e);
            let parsed = error_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, e, "{text}");
        }
    }

    #[test]
    fn provenance_round_trips_with_trips_and_budget() {
        let p = Provenance {
            rung: Rung::OEstimate,
            degraded: true,
            trips: sample_errors()
                .into_iter()
                .map(|e| (Rung::Exact, e))
                .collect(),
            budget_ms: Some(50),
            spent_ms: u128::from(u64::MAX) + 17,
        };
        let text = provenance_to_json(&p);
        assert_eq!(provenance_from_json(&text).unwrap(), p);
    }

    #[test]
    fn provenance_round_trips_without_budget() {
        let p = Provenance {
            rung: Rung::Exact,
            degraded: false,
            trips: Vec::new(),
            budget_ms: None,
            spent_ms: 3,
        };
        let text = provenance_to_json(&p);
        assert!(text.contains("\"budget_ms\":null"), "{text}");
        assert_eq!(provenance_from_json(&text).unwrap(), p);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(provenance_from_json("{\"rung\":\"nope\"}").is_err());
        assert!(provenance_from_json("{}").is_err());
    }

    #[test]
    fn json_values_parse_structurally() {
        let v = Json::parse("{\"a\": [1, -2.5e3, true, null], \"b\": \"x\\ny \\u0041\"}").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num("1".into()),
                Json::Num("-2.5e3".into()),
                Json::Bool(true),
                Json::Null,
            ]))
        );
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\ny A"));
    }
}

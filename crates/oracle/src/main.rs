//! `andi-oracle` — CLI driver for the conformance harness.
//!
//! ```text
//! andi-oracle run --seed 7 --count 1000 [--regime chain] [--sampler]
//! andi-oracle check <instance.txt>
//! andi-oracle corpus-write [--dir DIR] [--per-regime N]
//! andi-oracle corpus-replay [--dir DIR]
//! andi-oracle edit-corpus-write [--dir DIR] [--per-regime N]
//! andi-oracle edit-corpus-replay [--dir DIR]
//! ```
//!
//! Exit codes: 0 clean, 1 usage/IO error, 2 conformance failures.

use std::path::PathBuf;
use std::process::ExitCode;

use andi_oracle::checks::CheckConfig;
use andi_oracle::instance::{json_string, Regime};
use andi_oracle::{cases, corpus, generate, run_sweep, Instance};

const USAGE: &str = "\
andi-oracle — differential & metamorphic conformance harness

USAGE:
    andi-oracle run [--seed S] [--count N] [--regime R] [--sampler]
                    [--exact-cap C] [--shrink-out DIR]
    andi-oracle check <instance.txt> [--sampler]
    andi-oracle corpus-write [--dir DIR] [--per-regime N]
    andi-oracle corpus-replay [--dir DIR] [--sampler]
    andi-oracle edit-corpus-write [--dir DIR] [--per-regime N]
    andi-oracle edit-corpus-replay [--dir DIR]

Regimes: ignorant, point-compliant, alpha-compliant, chain,
near-degenerate, adversarial (default: all).

Exit codes: 0 clean, 1 usage or I/O error, 2 conformance failures.";

/// Exit code for confirmed conformance failures.
const EXIT_FAILURES: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("corpus-write") => cmd_corpus_write(&args[1..]),
        Some("corpus-replay") => cmd_corpus_replay(&args[1..]),
        Some("edit-corpus-write") => cmd_edit_corpus_write(&args[1..]),
        Some("edit-corpus-replay") => cmd_edit_corpus_replay(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

/// Extracts `--name value` from `args`, removing both tokens.
fn option(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == name) {
        if i + 1 >= args.len() {
            return Err(format!("{name} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Extracts a boolean `--flag`.
fn flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse<T: std::str::FromStr>(what: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what}: {v:?}"))
}

fn reject_unknown(args: &[String]) -> Result<(), String> {
    match args.first() {
        Some(a) => Err(format!("unexpected argument {a:?}")),
        None => Ok(()),
    }
}

fn config_from(args: &mut Vec<String>) -> Result<CheckConfig, String> {
    let mut cfg = CheckConfig {
        run_sampler: flag(args, "--sampler"),
        ..CheckConfig::default()
    };
    if let Some(cap) = option(args, "--exact-cap")? {
        cfg.exact_cap = parse("--exact-cap", &cap)?;
    }
    Ok(cfg)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let seed: u64 = match option(&mut args, "--seed")? {
        Some(s) => parse("--seed", &s)?,
        None => 7,
    };
    let count: u64 = match option(&mut args, "--count")? {
        Some(c) => parse("--count", &c)?,
        None => 100,
    };
    let regimes: Vec<Regime> = match option(&mut args, "--regime")? {
        Some(r) => vec![Regime::parse(&r).map_err(|e| e.to_string())?],
        None => Regime::ALL.to_vec(),
    };
    let shrink_out = option(&mut args, "--shrink-out")?.map(PathBuf::from);
    let cfg = config_from(&mut args)?;
    reject_unknown(&args)?;

    let outcome = run_sweep(seed, count, &regimes, &cfg);
    println!("{}", outcome.to_json(seed, count, &regimes));
    if let Some(dir) = shrink_out {
        for f in &outcome.failures {
            let path = corpus::save(&dir, &f.shrunk).map_err(|e| e.to_string())?;
            eprintln!("shrunk reproduction written to {}", path.display());
        }
    }
    if outcome.is_clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(EXIT_FAILURES))
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let cfg = config_from(&mut args)?;
    let path = match args.first() {
        Some(p) => PathBuf::from(p),
        None => return Err("check needs an instance file".into()),
    };
    reject_unknown(&args[1..])?;
    let inst = corpus::load(&path).map_err(|e| e.to_string())?;
    let report = andi_oracle::check_instance(&inst, &cfg).map_err(|e| e.to_string())?;
    let checks: Vec<String> = report.checks_run.iter().map(|c| json_string(c)).collect();
    let violations: Vec<String> = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"check\":{},\"detail\":{}}}",
                json_string(&v.check),
                json_string(&v.detail)
            )
        })
        .collect();
    println!(
        "{{\"label\":{},\"clean\":{},\"checks_run\":[{}],\"violations\":[{}]}}",
        json_string(&inst.label),
        report.is_clean(),
        checks.join(","),
        violations.join(",")
    );
    if report.is_clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(EXIT_FAILURES))
    }
}

/// The committed corpus = every paper case plus `per_regime` seeded
/// samples of each generation regime (seed 7, the CI sweep seed).
fn corpus_instances(per_regime: u64) -> Result<Vec<Instance>, String> {
    let mut out = cases::all().map_err(|e| e.to_string())?;
    for regime in Regime::ALL {
        for index in 0..per_regime {
            out.push(generate(7, index, regime));
        }
    }
    Ok(out)
}

fn cmd_corpus_write(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let dir = option(&mut args, "--dir")?
        .map(PathBuf::from)
        .unwrap_or_else(corpus::corpus_dir);
    let per_regime: u64 = match option(&mut args, "--per-regime")? {
        Some(n) => parse("--per-regime", &n)?,
        None => 3,
    };
    reject_unknown(&args)?;
    for inst in corpus_instances(per_regime)? {
        let path = corpus::save(&dir, &inst).map_err(|e| e.to_string())?;
        println!("{}", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// The committed edit-script corpus: `per_regime` seeded scripts of
/// each generation regime (seed 7, the CI sweep seed).
fn cmd_edit_corpus_write(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let dir = option(&mut args, "--dir")?
        .map(PathBuf::from)
        .unwrap_or_else(corpus::edit_scripts_dir);
    let per_regime: u64 = match option(&mut args, "--per-regime")? {
        Some(n) => parse("--per-regime", &n)?,
        None => 1,
    };
    reject_unknown(&args)?;
    for regime in Regime::ALL {
        for index in 0..per_regime {
            let case = andi_oracle::editscript::generate_script(7, index, regime);
            let path = corpus::save_script(&dir, &case).map_err(|e| e.to_string())?;
            println!("{}", path.display());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_edit_corpus_replay(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let dir = option(&mut args, "--dir")?
        .map(PathBuf::from)
        .unwrap_or_else(corpus::edit_scripts_dir);
    reject_unknown(&args)?;
    let entries = corpus::load_script_dir(&dir).map_err(|e| e.to_string())?;
    let mut dirty = 0usize;
    for (path, case) in &entries {
        match andi_oracle::editscript::check_script(case, &[1, 4]) {
            Ok(()) => println!("ok   {}", path.display()),
            Err(e) => {
                dirty += 1;
                println!("FAIL {}: {e}", path.display());
            }
        }
    }
    println!("replayed {} edit scripts, {} failing", entries.len(), dirty);
    if dirty == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(EXIT_FAILURES))
    }
}

fn cmd_corpus_replay(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let dir = option(&mut args, "--dir")?
        .map(PathBuf::from)
        .unwrap_or_else(corpus::corpus_dir);
    let cfg = config_from(&mut args)?;
    reject_unknown(&args)?;
    let entries = corpus::load_dir(&dir).map_err(|e| e.to_string())?;
    let mut dirty = 0usize;
    for (path, inst) in &entries {
        let report = andi_oracle::check_instance(inst, &cfg).map_err(|e| e.to_string())?;
        if report.is_clean() {
            println!("ok   {}", path.display());
        } else {
            dirty += 1;
            for v in &report.violations {
                println!("FAIL {}: {v}", path.display());
            }
        }
    }
    println!("replayed {} instances, {} failing", entries.len(), dirty);
    if dirty == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(EXIT_FAILURES))
    }
}

//! The uniform [`Estimator`] surface over every way the workspace
//! computes expected cracks, so the differential engine (and any
//! future estimator) can be cross-checked pairwise.
//!
//! | estimator              | domain                      | confidence |
//! |------------------------|-----------------------------|------------|
//! | closed forms (L1–L6)   | ignorant / point / chain    | exact      |
//! | Ryser permanent        | `n <= cap`, feasible        | exact      |
//! | budgeted ladder (exact rung) | `n <= cap`, feasible  | exact      |
//! | swap-walk sampler      | feasible, whole domain      | stochastic |
//! | O-estimate plain/prop  | everywhere feasible         | lower bound|

use andi_core::{ChainSpec, OutdegreeProfile};
use andi_data::FrequencyGroups;
use andi_graph::sampler::SamplerConfig;
use andi_graph::{Budget, Matching, MAX_PERMANENT_N};

use crate::error::OracleError;
use crate::instance::Instance;

/// How strongly an estimate pins the true expectation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Confidence {
    /// Mathematically exact (closed form or permanent arithmetic).
    Exact,
    /// A sampler mean with the given standard error of the mean.
    Stochastic { std_err: f64, n_samples: usize },
    /// A provable lower bound on the expectation (the O-estimate).
    LowerBound,
}

/// An estimator's answer for one instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// Expected number of cracks (of the masked subset when the
    /// instance carries a mask and the estimator honors it).
    pub value: f64,
    /// How the value should be compared against others.
    pub confidence: Confidence,
}

/// A uniform handle on one way of computing expected cracks.
///
/// Contract: wherever two estimators both apply, their answers must
/// agree up to their confidence — exactly for two exact estimators,
/// within a CLT band against a stochastic one, and as `lhs <= rhs`
/// for a lower bound against an exact value. New estimators must
/// implement this trait and survive a 1000-instance
/// `andi-oracle run` sweep (see CONTRIBUTING.md).
pub trait Estimator {
    /// Stable display name (used in violation reports).
    fn name(&self) -> &'static str;
    /// Whether the instance is inside this estimator's domain.
    fn applies_to(&self, inst: &Instance) -> bool;
    /// The estimate; only called when [`Estimator::applies_to`].
    ///
    /// # Errors
    ///
    /// Structural failures (infeasible instance, overflow); an
    /// estimator must not panic on any instance it applies to.
    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError>;
}

/// Whether the instance's belief is compliant point-valued.
fn is_point_compliant(inst: &Instance) -> bool {
    let freqs = inst.frequencies();
    inst.intervals
        .iter()
        .zip(freqs.iter())
        .all(|(&(l, r), &f)| l == r && l == f)
}

/// Whether every interval is `[0, 1]`.
fn is_ignorant(inst: &Instance) -> bool {
    inst.intervals.iter().all(|&(l, r)| l == 0.0 && r == 1.0)
}

/// Lemmas 1–6 wherever they apply: ignorant (L1, masked L2),
/// compliant point-valued (L3, masked L4), and detected chains (L5/L6
/// via [`ChainSpec::detect`], whole domain only).
pub struct ClosedForm;

impl Estimator for ClosedForm {
    fn name(&self) -> &'static str {
        "closed-form"
    }

    fn applies_to(&self, inst: &Instance) -> bool {
        if inst.validate().is_err() {
            return false;
        }
        if is_ignorant(inst) || is_point_compliant(inst) {
            return true;
        }
        // Chains: whole-domain only (the paper states no masked
        // chain formula).
        inst.mask.is_none()
            && inst
                .graph()
                .ok()
                .and_then(|g| ChainSpec::detect(&g))
                .is_some()
    }

    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
        inst.validate()?;
        let exact = |value: f64| Estimate {
            value,
            confidence: Confidence::Exact,
        };
        if is_ignorant(inst) {
            let value = match &inst.mask {
                None => andi_core::ignorant_expected_cracks(inst.n()),
                Some(mask) => {
                    let n1 = mask.iter().filter(|&&b| b).count();
                    andi_core::ignorant_expected_cracks_of_subset(inst.n(), n1)?
                }
            };
            return Ok(exact(value));
        }
        if is_point_compliant(inst) {
            let groups = FrequencyGroups::from_supports(&inst.supports, inst.m);
            let value = match &inst.mask {
                None => andi_core::point_valued_expected_cracks(&groups),
                Some(mask) => andi_core::point_valued_expected_cracks_of_subset(&groups, mask)?,
            };
            return Ok(exact(value));
        }
        if inst.mask.is_none() {
            if let Some(chain) = ChainSpec::detect(&inst.graph()?) {
                return Ok(exact(chain.expected_cracks()));
            }
        }
        Err(OracleError::NotApplicable("closed-form"))
    }
}

/// Exact crack probabilities from Ryser permanents, summed over the
/// whole domain or the instance's mask.
pub struct Permanent {
    /// Domain-size ceiling; permanents cost `O(n 2^n)` so sweeps cap
    /// well below [`MAX_PERMANENT_N`].
    pub cap: usize,
}

impl Default for Permanent {
    fn default() -> Self {
        Permanent { cap: 11 }
    }
}

impl Estimator for Permanent {
    fn name(&self) -> &'static str {
        "permanent"
    }

    fn applies_to(&self, inst: &Instance) -> bool {
        inst.validate().is_ok() && inst.n() <= self.cap.min(MAX_PERMANENT_N)
    }

    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
        let probs = crack_probabilities_of(inst)?;
        let value = match &inst.mask {
            None => probs.iter().sum(),
            Some(mask) => probs
                .iter()
                .zip(mask.iter())
                .filter(|&(_, &keep)| keep)
                .map(|(&p, _)| p)
                .sum(),
        };
        Ok(Estimate {
            value,
            confidence: Confidence::Exact,
        })
    }
}

/// Exact per-item crack probabilities of an instance.
///
/// # Errors
///
/// [`OracleError::Core`] with `EmptyMappingSpace` when no consistent
/// matching exists.
pub fn crack_probabilities_of(inst: &Instance) -> Result<Vec<f64>, OracleError> {
    let dense = inst.graph()?.to_dense();
    andi_graph::crack_probabilities(&dense)
        .ok_or(OracleError::Core(andi_core::Error::EmptyMappingSpace))
}

/// The budgeted degradation ladder's exact rung: the same question
/// answered through the fault-isolated, budget-polling code path.
/// With an unlimited budget and `n <= cap` it must be *bit-identical*
/// to [`Permanent`].
pub struct LadderExact {
    /// Worker threads for the budgeted permanent.
    pub threads: usize,
    /// Domain-size ceiling, as for [`Permanent`].
    pub cap: usize,
}

impl Estimator for LadderExact {
    fn name(&self) -> &'static str {
        "ladder-exact"
    }

    fn applies_to(&self, inst: &Instance) -> bool {
        inst.validate().is_ok() && inst.n() <= self.cap.min(MAX_PERMANENT_N)
    }

    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
        let dense = inst.graph()?.to_dense();
        let budget = Budget::unlimited();
        let probs = andi_graph::crack_probabilities_budgeted(&dense, self.threads.max(1), &budget)
            .map_err(|e| match e {
                andi_graph::ExactError::EmptyMappingSpace => {
                    OracleError::Core(andi_core::Error::EmptyMappingSpace)
                }
                other => OracleError::Invalid(format!("budgeted permanent failed: {other}")),
            })?;
        let value = match &inst.mask {
            None => probs.iter().sum(),
            Some(mask) => probs
                .iter()
                .zip(mask.iter())
                .filter(|&(_, &keep)| keep)
                .map(|(&p, _)| p)
                .sum(),
        };
        Ok(Estimate {
            value,
            confidence: Confidence::Exact,
        })
    }
}

/// The swap-walk matching sampler's empirical mean, whole domain
/// only (the sampler reports totals, not masked subsets).
pub struct SwapSampler {
    /// Walk schedule.
    pub config: SamplerConfig,
    /// Deterministic stream seed.
    pub rng_seed: u64,
    /// Worker threads (the sharded sampler is bit-identical across
    /// thread counts).
    pub threads: usize,
    /// Domain-size ceiling keeping mixing honest in sweeps.
    pub cap: usize,
}

impl SwapSampler {
    /// The sweep default: the quick schedule at a fixed stream seed.
    pub fn sweep(threads: usize) -> Self {
        SwapSampler {
            config: SamplerConfig::quick(),
            rng_seed: 0xD15C_105E,
            threads,
            cap: 9,
        }
    }
}

impl Estimator for SwapSampler {
    fn name(&self) -> &'static str {
        "swap-sampler"
    }

    fn applies_to(&self, inst: &Instance) -> bool {
        inst.mask.is_none() && inst.validate().is_ok() && inst.n() <= self.cap
    }

    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
        let graph = inst.graph()?;
        let n = graph.n();
        let seed = if (0..n).all(|i| graph.has_edge(i, i)) {
            Matching::identity(n)
        } else {
            andi_graph::hopcroft_karp(&graph.to_dense())
        };
        if seed.size() < n {
            return Err(OracleError::Core(andi_core::Error::EmptyMappingSpace));
        }
        let samples = andi_graph::sampler::sample_cracks_with_threads(
            &graph,
            &seed,
            &self.config,
            self.rng_seed,
            self.threads.max(1),
        )
        .map_err(|e| OracleError::Core(andi_core::Error::Sampler(e.to_string())))?;
        let n_samples = self.config.n_samples.max(1);
        Ok(Estimate {
            value: samples.mean(),
            confidence: Confidence::Stochastic {
                std_err: samples.std_dev() / (n_samples as f64).sqrt(),
                n_samples,
            },
        })
    }
}

/// The O-estimate, a provable lower bound on the expectation
/// (masked via Lemma 10's per-item decomposition when the instance
/// carries a mask).
pub struct OEstimate {
    /// Whether to run the degree-propagation sharpening first.
    pub propagated: bool,
}

impl Estimator for OEstimate {
    fn name(&self) -> &'static str {
        if self.propagated {
            "o-estimate-propagated"
        } else {
            "o-estimate-plain"
        }
    }

    fn applies_to(&self, inst: &Instance) -> bool {
        inst.validate().is_ok()
    }

    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
        let graph = inst.graph()?;
        let profile = if self.propagated {
            OutdegreeProfile::propagated(&graph)?
        } else {
            OutdegreeProfile::plain(&graph)
        };
        let value = match &inst.mask {
            None => profile.oestimate(),
            Some(mask) => profile.oestimate_masked(mask)?,
        };
        Ok(Estimate {
            value,
            confidence: Confidence::LowerBound,
        })
    }
}

/// The default estimator battery the differential engine sweeps.
pub fn default_estimators(threads: usize, exact_cap: usize) -> Vec<Box<dyn Estimator>> {
    vec![
        Box::new(ClosedForm),
        Box::new(Permanent { cap: exact_cap }),
        Box::new(LadderExact {
            threads,
            cap: exact_cap,
        }),
        Box::new(OEstimate { propagated: false }),
        Box::new(OEstimate { propagated: true }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Regime;

    fn bigmart_point() -> Instance {
        Instance {
            label: "unit:bigmart-point".into(),
            regime: Regime::PointCompliant,
            supports: vec![5, 4, 5, 5, 3, 5],
            m: 10,
            intervals: vec![
                (0.5, 0.5),
                (0.4, 0.4),
                (0.5, 0.5),
                (0.5, 0.5),
                (0.3, 0.3),
                (0.5, 0.5),
            ],
            mask: None,
        }
    }

    #[test]
    fn closed_form_point_valued_counts_groups() {
        let inst = bigmart_point();
        assert!(ClosedForm.applies_to(&inst));
        let e = ClosedForm.estimate(&inst).unwrap();
        assert_eq!(e.value, 3.0);
        assert_eq!(e.confidence, Confidence::Exact);
    }

    #[test]
    fn closed_form_honors_masks() {
        let mut inst = bigmart_point();
        // Items 0 (in the size-4 group) and 1 (its own group):
        // Lemma 4 gives 1/4 + 1 = 1.25.
        inst.mask = Some(vec![true, true, false, false, false, false]);
        let e = ClosedForm.estimate(&inst).unwrap();
        assert!((e.value - 1.25).abs() < 1e-12);

        // Ignorant masked: Lemma 2 gives n1/n.
        let ign = Instance {
            intervals: vec![(0.0, 1.0); 6],
            ..inst
        };
        let e = ClosedForm.estimate(&ign).unwrap();
        assert!((e.value - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn permanent_agrees_with_closed_form_on_bigmart() {
        let inst = bigmart_point();
        let p = Permanent::default().estimate(&inst).unwrap();
        assert!((p.value - 3.0).abs() < 1e-9);
        let l = LadderExact {
            threads: 2,
            cap: 11,
        }
        .estimate(&inst)
        .unwrap();
        assert_eq!(l.value, p.value, "ladder exact rung is bit-identical");
    }

    #[test]
    fn oe_is_a_lower_bound_on_bigmart_h() {
        let inst = Instance {
            label: "unit:bigmart-h".into(),
            regime: Regime::AlphaCompliant,
            supports: vec![5, 4, 5, 5, 3, 5],
            m: 10,
            intervals: vec![
                (0.0, 1.0),
                (0.4, 0.5),
                (0.5, 0.5),
                (0.4, 0.6),
                (0.1, 0.4),
                (0.5, 0.5),
            ],
            mask: None,
        };
        let oe = OEstimate { propagated: false }.estimate(&inst).unwrap();
        assert_eq!(oe.confidence, Confidence::LowerBound);
        let exact = Permanent::default().estimate(&inst).unwrap();
        assert!((exact.value - 1.8125).abs() < 1e-9);
        assert!(oe.value <= exact.value + 1e-9);
    }

    #[test]
    fn infeasible_instances_error_consistently() {
        // Two items both claiming the singleton 0.2-frequency slot.
        let inst = Instance {
            label: "unit:infeasible".into(),
            regime: Regime::NearDegenerate,
            supports: vec![2, 4, 6],
            m: 10,
            intervals: vec![(0.2, 0.2), (0.2, 0.2), (0.6, 0.6)],
            mask: None,
        };
        let p = Permanent::default().estimate(&inst);
        assert_eq!(
            p,
            Err(OracleError::Core(andi_core::Error::EmptyMappingSpace))
        );
        let s = SwapSampler::sweep(1).estimate(&inst);
        assert_eq!(
            s,
            Err(OracleError::Core(andi_core::Error::EmptyMappingSpace))
        );
    }

    #[test]
    fn sampler_tracks_the_permanent_on_bigmart_h() {
        let inst = Instance {
            label: "unit:bigmart-h".into(),
            regime: Regime::AlphaCompliant,
            supports: vec![5, 4, 5, 5, 3, 5],
            m: 10,
            intervals: vec![
                (0.0, 1.0),
                (0.4, 0.5),
                (0.5, 0.5),
                (0.4, 0.6),
                (0.1, 0.4),
                (0.5, 0.5),
            ],
            mask: None,
        };
        let s = SwapSampler::sweep(2).estimate(&inst).unwrap();
        let Confidence::Stochastic { std_err, n_samples } = s.confidence else {
            panic!("sampler must report stochastic confidence");
        };
        assert!(n_samples > 0 && std_err >= 0.0);
        assert!((s.value - 1.8125).abs() < 0.25, "mean {}", s.value);
        // Identical seed, different thread count: bit-identical.
        let again = SwapSampler::sweep(4).estimate(&inst).unwrap();
        assert_eq!(again.value, s.value);
    }
}

//! Streaming edit-script scenarios: seeded random
//! insert/delete/replace scripts over every generator regime, the
//! corpus text format that pins them, and the metamorphic battery
//! `incremental ≡ from-scratch` that the delta engine must pass after
//! every prefix.
//!
//! An [`EditScriptCase`] is a base [`Instance`] (drawn from one of
//! the six existing regimes) plus an ordered list of
//! [`Edit`]s that are valid *by construction* when applied in
//! sequence — the generator maintains a running summary and only
//! emits edits the summary admits. [`check_script`] is the load-
//! bearing correctness artifact: after each prefix it compares
//! [`IncrementalEngine::assess_risk_delta`] against a from-scratch
//! recompute **bit for bit** (probabilities and the serial sum), at
//! every requested thread count, and also checks that applying the
//! whole batch at once agrees with sequential application.
//! [`shrink_script`] minimizes a failing script by dropping and
//! merging edits, mirroring the instance shrinker's greedy loop.

use andi_core::incremental::{
    apply_edits_to_summary, summary_fingerprint, DeltaBatch, Edit, IncrementalEngine,
};
use andi_core::parallel::Budget;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::OracleError;
use crate::generate::generate;
use crate::instance::{Instance, Regime};

/// Corpus header of the edit-script format.
pub const EDIT_SCRIPT_HEADER: &str = "andi-oracle edit-script v1";

const INSTANCE_HEADER: &str = "andi-oracle instance v1";

/// A base instance plus an ordered edit script over its database
/// summary.
#[derive(Clone, Debug, PartialEq)]
pub struct EditScriptCase {
    /// The starting instance (regime, summary, belief).
    pub base: Instance,
    /// The edits, in application order; valid in sequence.
    pub edits: Vec<Edit>,
}

impl EditScriptCase {
    /// The script as one [`DeltaBatch`].
    pub fn batch(&self) -> DeltaBatch {
        DeltaBatch::new(self.edits.clone())
    }

    /// Structural validation: the base instance must validate and the
    /// whole script must apply cleanly in sequence.
    ///
    /// # Errors
    ///
    /// The base instance's violation, or the first inapplicable edit.
    pub fn validate(&self) -> Result<(), OracleError> {
        self.base.validate()?;
        apply_edits_to_summary(&self.base.supports, self.base.m, &self.batch())?;
        Ok(())
    }

    /// Serializes to the committed corpus format: the edit-script
    /// header, the base instance's fields, then one `edit:` line per
    /// edit. Round-trips bit-exactly through
    /// [`EditScriptCase::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(EDIT_SCRIPT_HEADER);
        out.push('\n');
        for line in self.base.to_text().lines().skip(1) {
            out.push_str(line);
            out.push('\n');
        }
        for edit in &self.edits {
            out.push_str(&edit_to_line(edit));
            out.push('\n');
        }
        out
    }

    /// Parses the corpus format.
    ///
    /// # Errors
    ///
    /// Malformed headers, fields, numbers, or an invalid script.
    pub fn from_text(text: &str) -> Result<EditScriptCase, OracleError> {
        let mut lines = text.lines();
        let header = lines.next().unwrap_or("");
        if header.trim() != EDIT_SCRIPT_HEADER {
            return Err(OracleError::Parse(format!(
                "bad header {:?} (want {EDIT_SCRIPT_HEADER:?})",
                header.trim()
            )));
        }
        let mut instance_text = String::from(INSTANCE_HEADER);
        instance_text.push('\n');
        let mut edits = Vec::new();
        for line in lines {
            let trimmed = line.trim();
            if let Some(spec) = trimmed.strip_prefix("edit:") {
                edits.push(parse_edit(spec.trim())?);
            } else {
                instance_text.push_str(line);
                instance_text.push('\n');
            }
        }
        let case = EditScriptCase {
            base: Instance::from_text(&instance_text)?,
            edits,
        };
        case.validate()?;
        Ok(case)
    }
}

/// Renders one edit as its corpus line.
pub fn edit_to_line(edit: &Edit) -> String {
    fn items(list: &[usize]) -> String {
        let words: Vec<String> = list.iter().map(usize::to_string).collect();
        words.join(" ")
    }
    match edit {
        Edit::Insert { items: list } => format!("edit: insert {}", items(list)),
        Edit::Delete { items: list } => format!("edit: delete {}", items(list)),
        Edit::Replace { old, new } => {
            format!("edit: replace {} / {}", items(old), items(new))
        }
    }
}

/// Parses the payload of an `edit:` line (the part after the colon).
///
/// # Errors
///
/// Unknown verbs, malformed item lists.
pub fn parse_edit(spec: &str) -> Result<Edit, OracleError> {
    fn items(words: &str) -> Result<Vec<usize>, OracleError> {
        words
            .split_whitespace()
            .map(|w| {
                w.parse::<usize>()
                    .map_err(|_| OracleError::Parse(format!("bad item index {w:?}")))
            })
            .collect()
    }
    let (verb, rest) = match spec.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r),
        None => (spec, ""),
    };
    match verb {
        "insert" => Ok(Edit::Insert {
            items: items(rest)?,
        }),
        "delete" => Ok(Edit::Delete {
            items: items(rest)?,
        }),
        "replace" => {
            let (old, new) = rest
                .split_once('/')
                .ok_or_else(|| OracleError::Parse("replace needs 'old / new' item lists".into()))?;
            Ok(Edit::Replace {
                old: items(old)?,
                new: items(new)?,
            })
        }
        other => Err(OracleError::Parse(format!("unknown edit verb {other:?}"))),
    }
}

/// A random sorted non-empty subset of `pool`. Returns `None` when
/// the pool is empty.
fn random_subset(rng: &mut StdRng, pool: &[usize]) -> Option<Vec<usize>> {
    if pool.is_empty() {
        return None;
    }
    let k = rng.gen_range(1..=pool.len());
    let mut shuffled = pool.to_vec();
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    shuffled.truncate(k);
    shuffled.sort_unstable();
    Some(shuffled)
}

/// A random insert edit — always applicable.
fn random_insert(rng: &mut StdRng, n: usize) -> Edit {
    let pool: Vec<usize> = (0..n).collect();
    let items = random_subset(rng, &pool).unwrap_or_default();
    Edit::Insert { items }
}

/// A delete edit valid for the running summary, or `None` when the
/// summary admits none (m < 2, or a positive-support item set that
/// cannot cover the full-support items).
fn random_delete(rng: &mut StdRng, supports: &[u64], m: u64) -> Option<Edit> {
    if m < 2 {
        return None;
    }
    // Every full-support item must be named; optionally add others
    // with positive support.
    let required: Vec<usize> = (0..supports.len()).filter(|&j| supports[j] == m).collect();
    let optional: Vec<usize> = (0..supports.len())
        .filter(|&j| supports[j] >= 1 && supports[j] < m)
        .collect();
    let mut items = required;
    if let Some(extra) = random_subset(rng, &optional) {
        if rng.gen_bool(0.8) || items.is_empty() {
            items.extend(extra);
        }
    }
    if items.is_empty() {
        return None;
    }
    items.sort_unstable();
    items.dedup();
    Some(Edit::Delete { items })
}

/// A replace edit valid for the running summary, or `None`.
fn random_replace(rng: &mut StdRng, supports: &[u64], m: u64) -> Option<Edit> {
    let old_pool: Vec<usize> = (0..supports.len()).filter(|&j| supports[j] >= 1).collect();
    let old = random_subset(rng, &old_pool)?;
    let new_pool: Vec<usize> = (0..supports.len())
        .filter(|&j| supports[j] < m || old.binary_search(&j).is_ok())
        .collect();
    let new = random_subset(rng, &new_pool)?;
    Some(Edit::Replace { old, new })
}

/// Generates the `index`-th edit-script case of a regime under a
/// sweep seed: a base instance from the existing generator plus a
/// script of 3–10 edits valid by construction. Pure function of the
/// arguments, like [`generate`].
pub fn generate_script(seed: u64, index: u64, regime: Regime) -> EditScriptCase {
    let base = generate(seed, index, regime);
    // A distinct stream from the instance generator's: scripts must
    // not perturb instance reproducibility.
    let tag = regime as u64 + 101;
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ index.rotate_left(17) ^ tag,
    );
    let mut supports = base.supports.clone();
    let mut m = base.m;
    let n = supports.len();
    let n_edits = rng.gen_range(3..=10);
    let mut edits = Vec::with_capacity(n_edits);
    for _ in 0..n_edits {
        let candidate = match rng.gen_range(0..3u32) {
            0 => Some(random_insert(&mut rng, n)),
            1 => random_delete(&mut rng, &supports, m),
            _ => random_replace(&mut rng, &supports, m),
        };
        let edit = candidate.unwrap_or_else(|| random_insert(&mut rng, n));
        // The constructions above are valid by design; checking keeps
        // the generator total even if a future regime breaks an
        // assumption, falling back to an always-valid insert.
        let batch = DeltaBatch::new(vec![edit.clone()]);
        match apply_edits_to_summary(&supports, m, &batch) {
            Ok((s2, m2)) => {
                supports = s2;
                m = m2;
                edits.push(edit);
            }
            Err(_) => {
                let fallback = random_insert(&mut rng, n);
                if let Ok((s2, m2)) =
                    apply_edits_to_summary(&supports, m, &DeltaBatch::new(vec![fallback.clone()]))
                {
                    supports = s2;
                    m = m2;
                    edits.push(fallback);
                }
            }
        }
    }
    EditScriptCase { base, edits }
}

/// Runs the metamorphic battery over one case at the given thread
/// counts:
///
/// 1. After **every prefix** of the script (including the empty
///    prefix), the incremental assessment is bit-identical to a
///    from-scratch recompute — per-item probabilities and the summed
///    O-estimate.
/// 2. Applying the whole script as one batch reaches the same summary
///    fingerprint and the same bits as applying it edit by edit
///    (`apply(a) ∘ apply(b) ≡ apply(a ⧺ b)` at script granularity).
/// 3. Provenance stays consistent (`total = reused + recomputed`).
///
/// # Errors
///
/// A message naming the first divergence (prefix length, thread
/// count, item).
pub fn check_script(case: &EditScriptCase, threads: &[usize]) -> Result<(), OracleError> {
    case.validate()?;
    let budget = Budget::unlimited();
    for &t in threads {
        let mut engine =
            IncrementalEngine::new(&case.base.supports, case.base.m, &case.base.intervals)?;
        for prefix in 0..=case.edits.len() {
            if prefix > 0 {
                let batch = DeltaBatch::new(vec![case.edits[prefix - 1].clone()]);
                engine.apply(&batch)?;
            }
            let out = engine.assess_risk_delta(t, &budget)?;
            let (oe, probs) = engine.assess_from_scratch();
            if out.expected_cracks.to_bits() != oe.to_bits() {
                return Err(OracleError::Invalid(format!(
                    "threads {t} prefix {prefix}: incremental O-estimate diverges from scratch"
                )));
            }
            if out.probabilities.len() != probs.len() {
                return Err(OracleError::Invalid(format!(
                    "threads {t} prefix {prefix}: probability vector length mismatch"
                )));
            }
            for (y, (a, b)) in out.probabilities.iter().zip(&probs).enumerate() {
                if a.to_bits() != b.to_bits() {
                    return Err(OracleError::Invalid(format!(
                        "threads {t} prefix {prefix} item {y}: probability bits diverge"
                    )));
                }
            }
            let p = out.provenance;
            if p.groups_total != p.groups_reused + p.groups_recomputed {
                return Err(OracleError::Invalid(format!(
                    "threads {t} prefix {prefix}: provenance accounting is inconsistent"
                )));
            }
        }
        // Whole-batch application agrees with sequential application.
        let mut whole =
            IncrementalEngine::new(&case.base.supports, case.base.m, &case.base.intervals)?;
        whole.apply(&case.batch())?;
        let (seq_supports, seq_m) =
            apply_edits_to_summary(&case.base.supports, case.base.m, &case.batch())?;
        if whole.summary_fingerprint() != summary_fingerprint(&seq_supports, seq_m) {
            return Err(OracleError::Invalid(format!(
                "threads {t}: whole-batch summary diverges from sequential application"
            )));
        }
        let out = whole.assess_risk_delta(t, &budget)?;
        let (oe, _) = whole.assess_from_scratch();
        if out.expected_cracks.to_bits() != oe.to_bits() {
            return Err(OracleError::Invalid(format!(
                "threads {t}: whole-batch O-estimate diverges from scratch"
            )));
        }
    }
    Ok(())
}

/// Tries to merge the adjacent edit pair `(a, b)` into one equivalent
/// edit (or into nothing, signalled by `Some(None)`).
fn merge_pair(a: &Edit, b: &Edit) -> Option<Option<Edit>> {
    match (a, b) {
        // Insert a transaction, then delete the same one: net nothing.
        (Edit::Insert { items: x }, Edit::Delete { items: y }) if x == y => Some(None),
        // Insert then rewrite the same transaction: insert the rewrite.
        (Edit::Insert { items: x }, Edit::Replace { old, new }) if x == old => {
            Some(Some(Edit::Insert { items: new.clone() }))
        }
        // Two rewrites of the same transaction compose.
        (Edit::Replace { old: a1, new: b1 }, Edit::Replace { old: a2, new: b2 }) if b1 == a2 => {
            Some(Some(Edit::Replace {
                old: a1.clone(),
                new: b2.clone(),
            }))
        }
        // Rewrite then delete the rewritten transaction: delete the
        // original.
        (Edit::Replace { old, new }, Edit::Delete { items: y }) if new == y => {
            Some(Some(Edit::Delete { items: old.clone() }))
        }
        _ => None,
    }
}

/// Greedily shrinks a failing edit script: repeatedly try dropping
/// one edit, then merging one adjacent pair, keeping any candidate
/// that still validates and still fails. Every accepted step strictly
/// decreases the edit count, so the loop terminates; the base
/// instance is left untouched (use the instance shrinker for that).
pub fn shrink_script(
    case: &EditScriptCase,
    still_fails: impl Fn(&EditScriptCase) -> bool,
) -> EditScriptCase {
    let accept = |c: &EditScriptCase| c.validate().is_ok() && still_fails(c);
    let mut current = case.clone();
    loop {
        let mut improved = false;
        // Pass 1: drop one edit.
        for i in 0..current.edits.len() {
            let mut candidate = current.clone();
            candidate.edits.remove(i);
            if accept(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        // Pass 2: merge one adjacent pair.
        for i in 0..current.edits.len().saturating_sub(1) {
            let Some(merged) = merge_pair(&current.edits[i], &current.edits[i + 1]) else {
                continue;
            };
            let mut candidate = current.clone();
            candidate.edits.remove(i + 1);
            match merged {
                Some(edit) => current_replace(&mut candidate.edits, i, edit),
                None => {
                    candidate.edits.remove(i);
                }
            }
            if accept(&candidate) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

fn current_replace(edits: &mut [Edit], i: usize, edit: Edit) {
    if let Some(slot) = edits.get_mut(i) {
        *slot = edit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_valid() {
        for regime in Regime::ALL {
            for index in 0..4 {
                let a = generate_script(7, index, regime);
                let b = generate_script(7, index, regime);
                assert_eq!(a, b, "{regime} #{index}");
                assert!(
                    a.validate().is_ok(),
                    "{regime} #{index}: {:?}",
                    a.validate()
                );
                assert!(!a.edits.is_empty(), "{regime} #{index} has edits");
            }
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        for regime in Regime::ALL {
            let case = generate_script(13, 2, regime);
            let text = case.to_text();
            let back = EditScriptCase::from_text(&text).expect("round trip parses");
            assert_eq!(case, back, "{regime}");
            assert_eq!(text, back.to_text(), "{regime} canonical text");
        }
    }

    #[test]
    fn parse_rejects_malformed_scripts() {
        assert!(EditScriptCase::from_text("nope").is_err());
        let case = generate_script(7, 0, Regime::Ignorant);
        let bad_verb = format!("{}edit: explode 1\n", case.to_text());
        assert!(EditScriptCase::from_text(&bad_verb).is_err());
        let bad_item = format!("{}edit: insert x\n", case.to_text());
        assert!(EditScriptCase::from_text(&bad_item).is_err());
        let bad_replace = format!("{}edit: replace 1 2\n", case.to_text());
        assert!(EditScriptCase::from_text(&bad_replace).is_err());
    }

    #[test]
    fn check_script_passes_on_generated_cases() {
        for regime in Regime::ALL {
            let case = generate_script(7, 0, regime);
            check_script(&case, &[1]).expect("generated script checks clean");
        }
    }

    #[test]
    fn shrinker_minimizes_a_count_predicate() {
        // "Fails" whenever the script still contains an insert
        // touching item 0 — the shrinker must reduce to one edit.
        let base = generate(7, 0, Regime::Ignorant);
        let case = EditScriptCase {
            base,
            edits: vec![
                Edit::Insert { items: vec![1] },
                Edit::Insert { items: vec![0] },
                Edit::Insert { items: vec![0, 1] },
                Edit::Delete { items: vec![1] },
            ],
        };
        case.validate().expect("hand-built script is valid");
        let fails = |c: &EditScriptCase| {
            c.edits.iter().any(|e| match e {
                Edit::Insert { items } => items.contains(&0),
                _ => false,
            })
        };
        let shrunk = shrink_script(&case, fails);
        assert_eq!(shrunk.edits.len(), 1, "minimal witness: {:?}", shrunk.edits);
        assert!(fails(&shrunk));
    }

    #[test]
    fn shrinker_merges_insert_delete_pairs() {
        let base = generate(7, 1, Regime::Ignorant);
        let case = EditScriptCase {
            base,
            edits: vec![
                Edit::Insert { items: vec![0] },
                Edit::Delete { items: vec![0] },
                Edit::Insert { items: vec![1] },
            ],
        };
        case.validate().expect("valid");
        // Any script at all "fails": the shrinker should collapse to
        // the empty script via drops/merges.
        let shrunk = shrink_script(&case, |_| true);
        assert!(shrunk.edits.is_empty(), "left: {:?}", shrunk.edits);
    }

    #[test]
    fn merge_rules_preserve_net_effect() {
        let base = generate(7, 3, Regime::PointCompliant);
        let edits = vec![
            Edit::Insert { items: vec![0] },
            Edit::Replace {
                old: vec![0],
                new: vec![1],
            },
        ];
        let case = EditScriptCase {
            base: base.clone(),
            edits,
        };
        case.validate().expect("valid");
        let (s1, m1) =
            apply_edits_to_summary(&base.supports, base.m, &case.batch()).expect("applies");
        let merged = merge_pair(&case.edits[0], &case.edits[1])
            .expect("mergeable")
            .expect("merges to one edit");
        let (s2, m2) =
            apply_edits_to_summary(&base.supports, base.m, &DeltaBatch::new(vec![merged]))
                .expect("applies");
        assert_eq!((s1, m1), (s2, m2));
    }
}

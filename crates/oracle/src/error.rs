//! Error type of the conformance oracle.

use std::fmt;

/// Errors raised by the oracle's parsing, generation, and estimator
/// plumbing.
#[derive(Clone, Debug, PartialEq)]
pub enum OracleError {
    /// The corpus text or a CLI argument failed to parse.
    Parse(String),
    /// An instance violates a structural invariant.
    Invalid(String),
    /// An estimator was asked about an instance outside its domain.
    NotApplicable(&'static str),
    /// A core-layer failure bubbled through an estimator.
    Core(andi_core::Error),
    /// A filesystem failure while reading or writing corpus files.
    Io(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Parse(msg) => write!(f, "parse error: {msg}"),
            OracleError::Invalid(msg) => write!(f, "invalid instance: {msg}"),
            OracleError::NotApplicable(name) => {
                write!(f, "estimator {name} does not apply to this instance")
            }
            OracleError::Core(e) => write!(f, "core error: {e}"),
            OracleError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<andi_core::Error> for OracleError {
    fn from(e: andi_core::Error) -> Self {
        OracleError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(OracleError::Parse("x".into()).to_string().contains("x"));
        assert!(OracleError::Invalid("y".into()).to_string().contains("y"));
        assert!(OracleError::NotApplicable("perm")
            .to_string()
            .contains("perm"));
        assert!(OracleError::Core(andi_core::Error::EmptyMappingSpace)
            .to_string()
            .contains("empty"));
        assert!(OracleError::Io("z".into()).to_string().contains("z"));
    }

    #[test]
    fn core_errors_convert() {
        let e: OracleError = andi_core::Error::EmptyMappingSpace.into();
        assert_eq!(e, OracleError::Core(andi_core::Error::EmptyMappingSpace));
    }
}

//! Seeded, stratified instance generation. Every instance is a pure
//! function of `(seed, index, regime)`, so CI sweeps and shrinker
//! reproductions are deterministic across machines and thread
//! counts.

use andi_core::{BeliefFunction, ChainSpec};
use andi_graph::MAX_PERMANENT_N;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::{Instance, Regime};

/// SplitMix64-style avalanche for combining seed material.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rng_for(seed: u64, index: u64, regime: Regime) -> StdRng {
    let tag = regime as u64 + 1;
    StdRng::seed_from_u64(mix(seed ^ mix(index ^ mix(tag))))
}

/// Generates the `index`-th instance of a regime under a sweep seed.
pub fn generate(seed: u64, index: u64, regime: Regime) -> Instance {
    let mut rng = rng_for(seed, index, regime);
    let label = format!("gen {} seed={seed} index={index}", regime.name());
    match regime {
        Regime::Ignorant => ignorant(&mut rng, label),
        Regime::PointCompliant => point_compliant(&mut rng, label),
        Regime::AlphaCompliant => alpha_compliant(&mut rng, label),
        Regime::Chain => chain(&mut rng, index, label),
        Regime::NearDegenerate => near_degenerate(&mut rng, index, label),
        Regime::Adversarial => adversarial(&mut rng, label),
    }
}

/// A random support profile: `n` supports in `[1, m - 1]`, with a
/// deliberate chance of collisions so frequency groups of size > 1
/// appear regularly.
fn random_supports(rng: &mut StdRng, n: usize, m: u64) -> Vec<u64> {
    let distinct = rng.gen_range(1..=n);
    let pool: Vec<u64> = (0..distinct).map(|_| rng.gen_range(1..m)).collect();
    (0..n).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

fn random_mask(rng: &mut StdRng, n: usize) -> Option<Vec<bool>> {
    if rng.gen_bool(0.5) {
        Some((0..n).map(|_| rng.gen_bool(0.5)).collect())
    } else {
        None
    }
}

fn ignorant(rng: &mut StdRng, label: String) -> Instance {
    let n = rng.gen_range(2..=9);
    let m = rng.gen_range(20..=200);
    Instance {
        label,
        regime: Regime::Ignorant,
        supports: random_supports(rng, n, m),
        m,
        intervals: vec![(0.0, 1.0); n],
        mask: random_mask(rng, n),
    }
}

fn point_compliant(rng: &mut StdRng, label: String) -> Instance {
    let n = rng.gen_range(2..=9);
    let m = rng.gen_range(20..=200);
    let supports = random_supports(rng, n, m);
    let intervals = supports
        .iter()
        .map(|&s| {
            let f = s as f64 / m as f64;
            (f, f)
        })
        .collect();
    Instance {
        label,
        regime: Regime::PointCompliant,
        supports,
        m,
        intervals,
        mask: random_mask(rng, n),
    }
}

fn alpha_compliant(rng: &mut StdRng, label: String) -> Instance {
    let n = rng.gen_range(2..=9);
    let m = rng.gen_range(20..=200);
    let supports = random_supports(rng, n, m);
    let freqs: Vec<f64> = supports.iter().map(|&s| s as f64 / m as f64).collect();
    let delta = rng.gen_range(0.01..0.25);
    // Widening keeps the belief inside [0, 1] for valid frequencies,
    // so the constructor cannot fail here; fall back to ignorant
    // intervals defensively rather than unwrap.
    let belief =
        BeliefFunction::widened(&freqs, delta).unwrap_or_else(|_| BeliefFunction::ignorant(n));
    // Make a random minority of items non-compliant.
    let n_bad = rng.gen_range(0..=(n / 2));
    let mut items: Vec<usize> = (0..n).collect();
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
    items.truncate(n_bad);
    let belief = belief.with_noncompliant_items(&freqs, &items, rng);
    Instance {
        label,
        regime: Regime::AlphaCompliant,
        supports,
        m,
        intervals: belief.intervals().to_vec(),
        mask: random_mask(rng, n),
    }
}

/// Random valid chains. Every fifth instance is a boundary chain:
/// `k = n` (all groups singletons) or `k = 1` (one group).
fn chain(rng: &mut StdRng, index: u64, label: String) -> Instance {
    let spec = match index % 5 {
        // k = n: every frequency group is a singleton.
        0 => {
            let k = rng.gen_range(2..=8);
            build_chain(rng, &vec![1; k])
        }
        // k = 1: Lemma 6 degenerates to Lemma 3's single group.
        1 => {
            let n = rng.gen_range(1..=8);
            ChainSpec::new(vec![n], vec![n], vec![]).ok()
        }
        _ => random_chain(rng),
    };
    let realized = spec.and_then(|spec| {
        let k = spec.k() as u64;
        let step: u64 = rng.gen_range(2..=11);
        // realize() cannot fail: m = (k + 1) * step >= k + 1.
        spec.realize((k + 1) * step)
            .ok()
            .map(|r| ((k + 1) * step, r))
    });
    match realized {
        Some((m, (supports, belief))) => Instance {
            label,
            regime: Regime::Chain,
            supports,
            m,
            intervals: belief.intervals().to_vec(),
            mask: None,
        },
        None => fallback_chain_instance(label),
    }
}

fn random_chain(rng: &mut StdRng) -> Option<ChainSpec> {
    let k = rng.gen_range(2..=4);
    let sizes: Vec<usize> = (0..k).map(|_| rng.gen_range(1..=3)).collect();
    build_chain(rng, &sizes)
}

/// Builds a valid chain over the given group sizes by walking the
/// conservation recurrence forward: at each link choose how many of
/// group `i`'s remaining items sit in the shared group (`u_i`) and
/// how many of group `i + 1`'s items the shared group claims
/// (`v_i`).
fn build_chain(rng: &mut StdRng, sizes: &[usize]) -> Option<ChainSpec> {
    let k = sizes.len();
    let mut e = vec![0usize; k];
    let mut s = vec![0usize; k.saturating_sub(1)];
    let mut v_prev = 0usize;
    for i in 0..k {
        let remaining = sizes[i] - v_prev;
        if i == k - 1 {
            e[i] = remaining;
            break;
        }
        let u_i = rng.gen_range(0..=remaining);
        e[i] = remaining - u_i;
        let v_i = rng.gen_range(0..=sizes[i + 1]);
        s[i] = u_i + v_i;
        v_prev = v_i;
    }
    ChainSpec::new(sizes.to_vec(), e, s).ok()
}

/// The paper's Section 4.2 chain written out as literal item data:
/// groups of sizes (5, 3) with 3 shared items, at m = 15. Used as a
/// total fallback so the generator never panics; the constructions
/// above are valid by design, so this is effectively unreachable.
fn fallback_chain_instance(label: String) -> Instance {
    let f1 = 5.0 / 15.0;
    let f2 = 10.0 / 15.0;
    Instance {
        label,
        regime: Regime::Chain,
        supports: vec![5, 5, 5, 5, 5, 10, 10, 10],
        m: 15,
        intervals: vec![
            (f1, f1),
            (f1, f1),
            (f1, f1),
            (f1, f2),
            (f1, f2),
            (f1, f2),
            (f2, f2),
            (f2, f2),
        ],
        mask: None,
    }
}

/// Empty mapping spaces, duplicate frequencies, all-tied groups.
fn near_degenerate(rng: &mut StdRng, index: u64, label: String) -> Instance {
    match index % 3 {
        0 => {
            // Empty mapping space: distinct singleton groups, but two
            // items both claim the same singleton slot.
            let n = rng.gen_range(2..=8);
            let m = (n as u64 + 1) * rng.gen_range(2..=9u64);
            let step = m / (n as u64 + 1);
            let supports: Vec<u64> = (0..n).map(|i| (i as u64 + 1) * step).collect();
            let f0 = supports[0] as f64 / m as f64;
            let mut intervals: Vec<(f64, f64)> = supports
                .iter()
                .map(|&s| {
                    let f = s as f64 / m as f64;
                    (f, f)
                })
                .collect();
            intervals[1] = (f0, f0); // second claimant of slot 0
            Instance {
                label,
                regime: Regime::NearDegenerate,
                supports,
                m,
                intervals,
                mask: None,
            }
        }
        1 => {
            // Duplicate frequencies: a single frequency group.
            let n = rng.gen_range(2..=9);
            let m = rng.gen_range(20..=200);
            let s = rng.gen_range(1..m);
            let f = s as f64 / m as f64;
            let delta = rng.gen_range(0.0..0.2);
            let interval = ((f - delta).max(0.0), (f + delta).min(1.0));
            Instance {
                label,
                regime: Regime::NearDegenerate,
                supports: vec![s; n],
                m,
                intervals: vec![interval; n],
                mask: random_mask(rng, n),
            }
        }
        _ => {
            // All-tied groups: g groups, each of size t.
            let g: usize = rng.gen_range(2..=3);
            let t: usize = rng.gen_range(2..=3);
            let n = g * t;
            let m = (g as u64 + 1) * rng.gen_range(3..=9u64);
            let step = m / (g as u64 + 1);
            let mut supports = Vec::with_capacity(n);
            let mut intervals = Vec::with_capacity(n);
            for gi in 0..g {
                let s = (gi as u64 + 1) * step;
                let f = s as f64 / m as f64;
                for _ in 0..t {
                    supports.push(s);
                    intervals.push((f, f));
                }
            }
            Instance {
                label,
                regime: Regime::NearDegenerate,
                supports,
                m,
                intervals,
                mask: random_mask(rng, n),
            }
        }
    }
}

/// Large mixed-shape domains up to `MAX_PERMANENT_N`; only the cheap
/// relations apply at these sizes.
fn adversarial(rng: &mut StdRng, label: String) -> Instance {
    let n = rng.gen_range(10..=MAX_PERMANENT_N);
    let m = rng.gen_range(50..=400);
    let supports = random_supports(rng, n, m);
    let intervals: Vec<(f64, f64)> = supports
        .iter()
        .map(|&s| {
            let f = s as f64 / m as f64;
            match rng.gen_range(0..4) {
                0 => (0.0, 1.0),
                1 => (f, f),
                2 => {
                    let d = rng.gen_range(0.0..0.3);
                    ((f - d).max(0.0), (f + d).min(1.0))
                }
                _ => {
                    // Possibly non-compliant: a random interval.
                    let a = rng.gen_range(0.0..1.0);
                    let b = rng.gen_range(0.0..1.0);
                    (a.min(b), a.max(b))
                }
            }
        })
        .collect();
    Instance {
        label,
        regime: Regime::Adversarial,
        supports,
        m,
        intervals,
        mask: random_mask(rng, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for regime in Regime::ALL {
            for index in 0..8 {
                let a = generate(7, index, regime);
                let b = generate(7, index, regime);
                assert_eq!(a, b, "{regime} #{index}");
                assert_eq!(a.regime, regime);
                assert!(
                    a.validate().is_ok(),
                    "{regime} #{index}: {:?}",
                    a.validate()
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(7, 0, Regime::AlphaCompliant);
        let b = generate(8, 0, Regime::AlphaCompliant);
        assert_ne!(a.supports, b.supports);
    }

    #[test]
    fn chain_boundaries_appear() {
        // index % 5 == 0 -> k = n (all singleton groups);
        // index % 5 == 1 -> k = 1 (one group).
        let kn = generate(7, 0, Regime::Chain);
        let g = kn.graph().unwrap();
        assert_eq!(g.n_groups(), kn.n(), "k = n boundary");
        let k1 = generate(7, 1, Regime::Chain);
        assert_eq!(k1.graph().unwrap().n_groups(), 1, "k = 1 boundary");
    }

    #[test]
    fn chains_are_detectable() {
        for index in 0..20 {
            let inst = generate(11, index, Regime::Chain);
            let g = inst.graph().unwrap();
            assert!(
                andi_core::ChainSpec::detect(&g).is_some(),
                "chain #{index} must be detectable"
            );
        }
    }

    #[test]
    fn near_degenerate_covers_empty_spaces() {
        let inst = generate(7, 0, Regime::NearDegenerate);
        let dense = inst.graph().unwrap().to_dense();
        assert!(
            andi_graph::hopcroft_karp(&dense).size() < inst.n(),
            "index 0 mod 3 must be infeasible"
        );
        let dup = generate(7, 1, Regime::NearDegenerate);
        let groups = andi_data::FrequencyGroups::from_supports(&dup.supports, dup.m);
        assert_eq!(groups.n_groups(), 1, "index 1 mod 3 is a single group");
    }

    #[test]
    fn adversarial_sizes_reach_the_permanent_cap() {
        let max_n = (0..40)
            .map(|i| generate(3, i, Regime::Adversarial).n())
            .max()
            .unwrap();
        assert!(max_n >= 25, "adversarial sizes stay large, saw {max_n}");
    }
}

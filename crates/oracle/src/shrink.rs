//! Greedy instance minimization. Given a failing instance and a
//! predicate that re-runs the failing check, the shrinker applies
//! three reduction passes until none makes progress:
//!
//! 1. **drop items** — remove one item (support + interval + mask
//!    bit); strictly decreases `n`.
//! 2. **merge frequency groups** — overwrite a larger support with a
//!    smaller one already present, collapsing two groups into one;
//!    strictly decreases `Σ supports` at constant `n`.
//! 3. **tighten intervals** — replace a non-degenerate interval with
//!    the point at the item's true frequency; strictly decreases the
//!    total interval width at constant `n` and `Σ supports`.
//!
//! Each pass only keeps a candidate if it is still a *valid*
//! instance and the predicate still fails, so the result is always a
//! reproducible failing instance no larger than the input. The
//! three measures are lexicographic, which bounds the total number
//! of accepted steps and guarantees termination.

use crate::instance::Instance;

/// Minimizes `inst` while `still_fails` keeps returning `true`.
///
/// `still_fails` must return `true` for `inst` itself for the result
/// to be meaningful (the shrinker never re-checks the input); it is
/// called only on validated candidates.
pub fn shrink<F>(inst: &Instance, still_fails: F) -> Instance
where
    F: Fn(&Instance) -> bool,
{
    let mut current = inst.clone();
    loop {
        let mut progressed = false;
        while let Some(next) = drop_one_item(&current, &still_fails) {
            current = next;
            progressed = true;
        }
        while let Some(next) = merge_one_group(&current, &still_fails) {
            current = next;
            progressed = true;
        }
        while let Some(next) = tighten_one_interval(&current, &still_fails) {
            current = next;
            progressed = true;
        }
        if !progressed {
            return current;
        }
    }
}

fn accept<F>(candidate: Instance, still_fails: &F) -> Option<Instance>
where
    F: Fn(&Instance) -> bool,
{
    if candidate.validate().is_ok() && still_fails(&candidate) {
        Some(candidate)
    } else {
        None
    }
}

/// Tries removing each item in turn; returns the first accepted
/// reduction.
fn drop_one_item<F>(inst: &Instance, still_fails: &F) -> Option<Instance>
where
    F: Fn(&Instance) -> bool,
{
    if inst.n() <= 1 {
        return None;
    }
    for i in 0..inst.n() {
        let mut c = inst.clone();
        c.supports.remove(i);
        c.intervals.remove(i);
        if let Some(mask) = c.mask.as_mut() {
            mask.remove(i);
        }
        if let Some(ok) = accept(c, still_fails) {
            return Some(ok);
        }
    }
    None
}

/// Tries collapsing two distinct supports by rewriting every copy of
/// the larger one to the smaller one. This merges the two frequency
/// groups and strictly decreases `Σ supports`.
fn merge_one_group<F>(inst: &Instance, still_fails: &F) -> Option<Instance>
where
    F: Fn(&Instance) -> bool,
{
    let mut distinct: Vec<u64> = inst.supports.clone();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 {
        return None;
    }
    for w in distinct.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut c = inst.clone();
        for s in c.supports.iter_mut() {
            if *s == hi {
                *s = lo;
            }
        }
        if let Some(ok) = accept(c, still_fails) {
            return Some(ok);
        }
    }
    None
}

/// Tries replacing one non-degenerate interval with the point at the
/// item's true frequency.
fn tighten_one_interval<F>(inst: &Instance, still_fails: &F) -> Option<Instance>
where
    F: Fn(&Instance) -> bool,
{
    let freqs = inst.frequencies();
    for (i, &f) in freqs.iter().enumerate() {
        let (l, r) = inst.intervals[i];
        if l == r {
            continue;
        }
        let mut c = inst.clone();
        c.intervals[i] = (f, f);
        if let Some(ok) = accept(c, still_fails) {
            return Some(ok);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Regime;

    fn wide_instance(n: usize) -> Instance {
        Instance {
            label: "shrink-test".into(),
            regime: Regime::Ignorant,
            supports: (1..=n as u64).collect(),
            m: 100,
            intervals: vec![(0.0, 1.0); n],
            mask: None,
        }
    }

    #[test]
    fn shrinks_to_smallest_failing_size() {
        // "Fails" whenever n >= 3: the shrinker should land on n = 3.
        let small = shrink(&wide_instance(9), |i| i.n() >= 3);
        assert_eq!(small.n(), 3);
        assert!(small.validate().is_ok());
    }

    #[test]
    fn merges_frequency_groups() {
        // Dropping is blocked (predicate pins n = 4), so the merge
        // pass collapses all four frequency groups into the smallest.
        let small = shrink(&wide_instance(4), |i| i.n() == 4);
        assert_eq!(small.supports, vec![1, 1, 1, 1]);
    }

    #[test]
    fn unconstrained_failures_reduce_to_one_item() {
        let small = shrink(&wide_instance(4), |_| true);
        assert_eq!(small.n(), 1);
    }

    #[test]
    fn tightens_intervals_when_dropping_is_blocked() {
        // "Fails" only while n stays at 4 and at least one interval
        // is wide: tightening stops when the last wide one would go.
        let inst = wide_instance(4);
        let small = shrink(&inst, |i| {
            i.n() == 4 && i.intervals.iter().any(|&(l, r)| r - l >= 1.0)
        });
        assert_eq!(small.n(), 4);
        let wide = small
            .intervals
            .iter()
            .filter(|&&(l, r)| r - l >= 1.0)
            .count();
        assert_eq!(wide, 1, "exactly one wide interval must survive");
    }

    #[test]
    fn never_returns_a_larger_instance() {
        let inst = wide_instance(6);
        let out = shrink(&inst, |i| i.n() >= 2);
        assert!(out.n() <= inst.n());
        assert!(out.supports.iter().sum::<u64>() <= inst.supports.iter().sum::<u64>());
    }

    #[test]
    fn respects_masks_when_dropping() {
        let mut inst = wide_instance(5);
        inst.mask = Some(vec![true, false, true, false, true]);
        let out = shrink(&inst, |i| i.n() >= 2);
        assert_eq!(out.n(), 2);
        assert_eq!(out.mask.as_ref().map(Vec::len), Some(2));
    }
}

//! # andi-oracle — differential & metamorphic conformance harness
//!
//! Cross-checks every estimator in the workspace against the paper's
//! ground truth on randomized, stratified instances:
//!
//! - [`generate`](generate::generate) produces seeded instances
//!   across six regimes (ignorant, point-compliant, α-compliant,
//!   chains, near-degenerate, adversarial sizes);
//! - [`check_instance`] evaluates every
//!   applicable [`Estimator`] pair and the
//!   paper's metamorphic relations (Lemmas 1–6, 8, 10; sampler CLT
//!   tolerance; masked additivity; budgeted-ladder equivalence);
//! - [`shrink`](shrink::shrink) minimizes failing instances, which
//!   are committed under `crates/oracle/corpus/` and replayed as
//!   ordinary tests;
//! - the `andi-oracle` binary drives seeded sweeps in CI.

pub mod cases;
pub mod checks;
pub mod corpus;
pub mod editscript;
pub mod error;
pub mod estimators;
pub mod generate;
pub mod instance;
pub mod serial;
pub mod shrink;
pub mod sweep;

pub use checks::{check_instance, CheckConfig, CheckReport, Violation};
pub use editscript::{
    check_script, generate_script, shrink_script, EditScriptCase, EDIT_SCRIPT_HEADER,
};
pub use error::OracleError;
pub use estimators::{default_estimators, Confidence, Estimate, Estimator};
pub use generate::generate;
pub use instance::{Instance, Regime};
pub use serial::{provenance_from_json, provenance_to_json};
pub use shrink::shrink;
pub use sweep::{run_sweep, Failure, SweepOutcome};

//! The committed regression corpus: failing instances minimized by
//! the shrinker plus the paper's hand-written cases, stored as text
//! files under `crates/oracle/corpus/` and replayed as ordinary
//! tests.

use std::fs;
use std::path::{Path, PathBuf};

use crate::editscript::EditScriptCase;
use crate::error::OracleError;
use crate::instance::Instance;

/// The committed corpus directory of this crate.
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// The committed edit-script corpus. A subdirectory: the instance
/// replay reads only direct `.txt` entries of `corpus/`, so the two
/// formats never cross-contaminate.
pub fn edit_scripts_dir() -> PathBuf {
    corpus_dir().join("edit-scripts")
}

/// Derives a stable corpus file name from an instance label:
/// lower-cased, with every non-alphanumeric run collapsed to `-`.
pub fn file_name_for(label: &str) -> String {
    let mut out = String::with_capacity(label.len() + 4);
    let mut dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("instance");
    }
    out.push_str(".txt");
    out
}

/// Writes one instance into `dir`, returning the path.
pub fn save(dir: &Path, inst: &Instance) -> Result<PathBuf, OracleError> {
    fs::create_dir_all(dir).map_err(|e| OracleError::Io(format!("{}: {e}", dir.display())))?;
    let path = dir.join(file_name_for(&inst.label));
    fs::write(&path, inst.to_text())
        .map_err(|e| OracleError::Io(format!("{}: {e}", path.display())))?;
    Ok(path)
}

/// Loads one instance file.
pub fn load(path: &Path) -> Result<Instance, OracleError> {
    let text = fs::read_to_string(path)
        .map_err(|e| OracleError::Io(format!("{}: {e}", path.display())))?;
    Instance::from_text(&text).map_err(|e| OracleError::Parse(format!("{}: {e}", path.display())))
}

/// Loads every `.txt` instance in `dir`, sorted by file name so the
/// replay order is deterministic.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Instance)>, OracleError> {
    let entries =
        fs::read_dir(dir).map_err(|e| OracleError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| OracleError::Io(e.to_string()))?;
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "txt") {
            paths.push(path);
        }
    }
    paths.sort();
    paths
        .into_iter()
        .map(|p| load(&p).map(|inst| (p, inst)))
        .collect()
}

/// Writes one edit-script case into `dir` (named after its base
/// instance's label), returning the path.
pub fn save_script(dir: &Path, case: &EditScriptCase) -> Result<PathBuf, OracleError> {
    fs::create_dir_all(dir).map_err(|e| OracleError::Io(format!("{}: {e}", dir.display())))?;
    let path = dir.join(file_name_for(&case.base.label));
    fs::write(&path, case.to_text())
        .map_err(|e| OracleError::Io(format!("{}: {e}", path.display())))?;
    Ok(path)
}

/// Loads one edit-script file.
pub fn load_script(path: &Path) -> Result<EditScriptCase, OracleError> {
    let text = fs::read_to_string(path)
        .map_err(|e| OracleError::Io(format!("{}: {e}", path.display())))?;
    EditScriptCase::from_text(&text)
        .map_err(|e| OracleError::Parse(format!("{}: {e}", path.display())))
}

/// Loads every `.txt` edit script in `dir`, sorted by file name.
pub fn load_script_dir(dir: &Path) -> Result<Vec<(PathBuf, EditScriptCase)>, OracleError> {
    let entries =
        fs::read_dir(dir).map_err(|e| OracleError::Io(format!("{}: {e}", dir.display())))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| OracleError::Io(e.to_string()))?;
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "txt") {
            paths.push(path);
        }
    }
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_script(&p).map(|case| (p, case)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn file_names_are_stable_and_safe() {
        assert_eq!(file_name_for("paper:bigmart-h"), "paper-bigmart-h.txt");
        assert_eq!(
            file_name_for("gen seed=7 index=3"),
            "gen-seed-7-index-3.txt"
        );
        assert_eq!(file_name_for("::"), "instance.txt");
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("andi-oracle-corpus-{}", std::process::id()));
        let inst = cases::bigmart_h();
        let path = save(&dir, &inst).unwrap();
        assert_eq!(load(&path).unwrap(), inst);
        let all = load_dir(&dir).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, inst);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_corpus_contains_the_paper_cases() {
        let dir = corpus_dir();
        let all = load_dir(&dir).expect("committed corpus must load");
        for case in cases::all().unwrap() {
            assert!(
                all.iter().any(|(_, inst)| *inst == case),
                "{} missing from the committed corpus",
                case.label
            );
        }
    }
}

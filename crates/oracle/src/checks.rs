//! The differential engine: every applicable estimator pair is
//! evaluated on an instance and the paper's relations are checked —
//! exact ≡ exact (Lemmas 1–6 vs the permanent), sampler → exact
//! within a CLT band, the O-estimate's structural relations (range,
//! propagation sharpening, forced cracks as a lower bound, the §5.2
//! chain closed form), plus the metamorphic relations (Lemma 8
//! widening, Lemma 10 masking, masked/restricted additivity,
//! budgeted ≡ unbudgeted).
//!
//! Note the plain O-estimate is deliberately *not* compared against
//! the exact expectation by order: the paper's Δ analysis shows OE
//! underestimates E on chains, but the relation is not universal (a
//! wide belief over three distinct groups can push `Σ 1/outdeg`
//! above `Σ p_x`), so only the provable relations are enforced.

use andi_core::OutdegreeProfile;
use andi_graph::sampler::SamplerConfig;
use andi_graph::{Budget, MAX_PERMANENT_N};

use crate::error::OracleError;
use crate::estimators::{
    crack_probabilities_of, default_estimators, Confidence, Estimator, SwapSampler,
};
use crate::instance::Instance;

/// Absolute tolerance for comparing two exact estimators.
pub const EXACT_EPS: f64 = 1e-9;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Worker threads for budgeted/sharded code paths.
    pub threads: usize,
    /// Domain-size ceiling for permanent-based estimators.
    pub exact_cap: usize,
    /// Whether to run the (comparatively slow) sampler checks.
    pub run_sampler: bool,
    /// Sampler schedule for the stochastic checks.
    pub sampler_config: SamplerConfig,
    /// CLT multiplier: the sampler may drift `z * std_err +
    /// SAMPLER_FLOOR` from the exact value before the oracle calls
    /// it a violation (see DESIGN.md for the derivation).
    pub z: f64,
}

/// Additive slack under the CLT band absorbing residual swap-walk
/// autocorrelation (the standard error assumes independent samples).
pub const SAMPLER_FLOOR: f64 = 0.05;

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            threads: andi_graph::par::available_threads(),
            exact_cap: 11,
            run_sampler: false,
            sampler_config: SamplerConfig::quick(),
            z: 6.0,
        }
    }
}

/// One failed relation.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The relation that failed (stable kebab-case name).
    pub check: String,
    /// Values and tolerances, human-readable.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.check, self.detail)
    }
}

/// The engine's verdict on one instance.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Names of the relations that were evaluated.
    pub checks_run: Vec<String>,
    /// Relations that failed.
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether every evaluated relation held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compares two estimates according to their confidences. Returns
/// the violation detail when the relation fails, `None` when it
/// holds or no relation connects the two confidences.
fn compare_values(
    a_name: &str,
    a: &crate::estimators::Estimate,
    b_name: &str,
    b: &crate::estimators::Estimate,
    z: f64,
) -> Option<String> {
    use Confidence::*;
    match (a.confidence, b.confidence) {
        (Exact, Exact) => ((a.value - b.value).abs() > EXACT_EPS).then(|| {
            format!(
                "{a_name} = {} but {b_name} = {} (|Δ| > {EXACT_EPS})",
                a.value, b.value
            )
        }),
        (Stochastic { std_err, .. }, Exact) => {
            let tol = z * std_err + SAMPLER_FLOOR;
            ((a.value - b.value).abs() > tol).then(|| {
                format!(
                    "{a_name} = {} drifts from {b_name} = {} beyond {tol} \
                     (z = {z}, s.e. = {std_err})",
                    a.value, b.value
                )
            })
        }
        (Exact, Stochastic { .. }) => compare_values(b_name, b, a_name, a, z),
        // No generic relation orders a LowerBound estimate against
        // the others (see the module docs); the structural O-estimate
        // relations live in `check_oe_relations`.
        _ => None,
    }
}

/// Pairwise differential comparison of two estimators on one
/// instance. Used by the engine and directly by bug-injection tests.
///
/// # Errors
///
/// Estimator failures other than a shared infeasibility verdict.
pub fn compare(
    a: &dyn Estimator,
    b: &dyn Estimator,
    inst: &Instance,
    z: f64,
) -> Result<Option<Violation>, OracleError> {
    if !(a.applies_to(inst) && b.applies_to(inst)) {
        return Ok(None);
    }
    let (ea, eb) = (a.estimate(inst)?, b.estimate(inst)?);
    Ok(
        compare_values(a.name(), &ea, b.name(), &eb, z).map(|detail| Violation {
            check: format!("{}-vs-{}", a.name(), b.name()),
            detail,
        }),
    )
}

/// Runs the full relation battery on one instance.
///
/// # Errors
///
/// Structural failures only (an invalid instance); disagreements are
/// reported as [`Violation`]s, not errors.
pub fn check_instance(inst: &Instance, cfg: &CheckConfig) -> Result<CheckReport, OracleError> {
    inst.validate()?;
    let mut report = CheckReport::default();
    let graph = inst.graph()?;
    let feasible = andi_graph::hopcroft_karp(&graph.to_dense()).size() == inst.n();

    if !feasible {
        check_empty_space_consistency(inst, cfg, &mut report)?;
        return Ok(report);
    }

    // Pairwise differential sweep over the estimator battery.
    let battery = default_estimators(cfg.threads, cfg.exact_cap);
    for (i, a) in battery.iter().enumerate() {
        for b in battery.iter().skip(i + 1) {
            if !(a.applies_to(inst) && b.applies_to(inst)) {
                continue;
            }
            report
                .checks_run
                .push(format!("{}-vs-{}", a.name(), b.name()));
            if let Some(v) = compare(a.as_ref(), b.as_ref(), inst, cfg.z)? {
                report.violations.push(v);
            }
        }
    }

    if cfg.run_sampler && inst.mask.is_none() && inst.n() <= cfg.exact_cap {
        check_sampler(inst, cfg, &mut report)?;
    }

    check_oe_relations(inst, cfg, &mut report)?;
    check_widening_monotonicity(inst, &mut report)?;
    check_mask_relations(inst, &mut report)?;
    if inst.n() <= cfg.exact_cap.min(MAX_PERMANENT_N) {
        check_budgeted_equals_unbudgeted(inst, cfg, &mut report)?;
    }
    Ok(report)
}

/// Sampler-vs-permanent within the CLT band, plus thread-count
/// determinism of the sharded stream.
fn check_sampler(
    inst: &Instance,
    cfg: &CheckConfig,
    report: &mut CheckReport,
) -> Result<(), OracleError> {
    let sampler = SwapSampler {
        config: cfg.sampler_config,
        rng_seed: 0xD15C_105E,
        threads: cfg.threads,
        cap: cfg.exact_cap,
    };
    let perm = crate::estimators::Permanent { cap: cfg.exact_cap };
    report.checks_run.push("swap-sampler-vs-permanent".into());
    if let Some(v) = compare(&sampler, &perm, inst, cfg.z)? {
        report.violations.push(v);
    }

    report.checks_run.push("sampler-thread-determinism".into());
    let single = SwapSampler {
        threads: 1,
        ..sampler
    };
    let (a, b) = (sampler.estimate(inst)?, single.estimate(inst)?);
    if a.value.to_bits() != b.value.to_bits() {
        report.violations.push(Violation {
            check: "sampler-thread-determinism".into(),
            detail: format!(
                "mean {} at {} threads vs {} at 1 thread",
                a.value, cfg.threads, b.value
            ),
        });
    }
    Ok(())
}

/// The O-estimate's provable relations: both profiles stay in
/// `[0, n]`, propagation can only sharpen the plain estimate, the
/// propagated profile's forced cracks lower-bound the exact
/// expectation, and on detected chains the plain OE equals the §5.2
/// closed form `Σ eⱼ/nⱼ + Σ sⱼ/(nⱼ + nⱼ₊₁)` exactly.
fn check_oe_relations(
    inst: &Instance,
    cfg: &CheckConfig,
    report: &mut CheckReport,
) -> Result<(), OracleError> {
    let graph = inst.graph()?;
    let n = inst.n() as f64;
    let plain = OutdegreeProfile::plain(&graph).oestimate();
    let propagated = OutdegreeProfile::propagated(&graph)?;

    report.checks_run.push("oe-range".into());
    for (name, oe) in [("plain", plain), ("propagated", propagated.oestimate())] {
        if !(-EXACT_EPS..=n + EXACT_EPS).contains(&oe) {
            report.violations.push(Violation {
                check: "oe-range".into(),
                detail: format!("{name} OE = {oe} outside [0, {n}]"),
            });
        }
    }

    // Propagation only sharpens *upward* under a fully compliant
    // belief: there the identity matching is consistent, so no
    // diagonal edge can be eliminated and every forced crack or
    // outdegree cut raises the estimate. A non-compliant item lets
    // propagation remove diagonals and (correctly) push the estimate
    // down, so the ordering is gated on α = 1.
    let freqs = inst.frequencies();
    let compliant = inst
        .intervals
        .iter()
        .zip(freqs.iter())
        .all(|(&(l, r), &f)| l <= f && f <= r);
    if compliant {
        report.checks_run.push("oe-propagation-sharpens".into());
        if propagated.oestimate() + EXACT_EPS < plain {
            report.violations.push(Violation {
                check: "oe-propagation-sharpens".into(),
                detail: format!(
                    "propagated OE {} below plain OE {plain}",
                    propagated.oestimate()
                ),
            });
        }
    }

    if inst.mask.is_none() && inst.n() <= cfg.exact_cap.min(MAX_PERMANENT_N) {
        report.checks_run.push("forced-cracks-lower-bound".into());
        let exact: f64 = crack_probabilities_of(inst)?.iter().sum();
        let forced = propagated.forced_cracks() as f64;
        if forced > exact + EXACT_EPS {
            report.violations.push(Violation {
                check: "forced-cracks-lower-bound".into(),
                detail: format!("{forced} forced cracks exceed exact E = {exact}"),
            });
        }
    }

    if inst.mask.is_none() {
        if let Some(spec) = andi_core::ChainSpec::detect(&graph) {
            report.checks_run.push("chain-oe-closed-form".into());
            if (spec.oestimate() - plain).abs() > EXACT_EPS {
                report.violations.push(Violation {
                    check: "chain-oe-closed-form".into(),
                    detail: format!(
                        "chain closed form gives {} but the profile gives {plain}",
                        spec.oestimate()
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Lemma 8: widening every interval (a coarser belief the original
/// refines) cannot raise the O-estimate.
fn check_widening_monotonicity(
    inst: &Instance,
    report: &mut CheckReport,
) -> Result<(), OracleError> {
    report.checks_run.push("lemma8-widening".into());
    let widened: Vec<(f64, f64)> = inst
        .intervals
        .iter()
        .map(|&(l, r)| ((l - 0.1).max(0.0), (r + 0.1).min(1.0)))
        .collect();
    let wide = Instance {
        intervals: widened,
        mask: None,
        ..inst.clone()
    };
    let narrow_b = inst.belief()?;
    let wide_b = wide.belief()?;
    if !narrow_b.refines(&wide_b) {
        return Err(OracleError::Invalid(
            "widened belief must be refined by the original".into(),
        ));
    }
    let oe_narrow = OutdegreeProfile::plain(&inst.graph()?).oestimate();
    let oe_wide = OutdegreeProfile::plain(&wide.graph()?).oestimate();
    if oe_narrow + EXACT_EPS < oe_wide {
        report.violations.push(Violation {
            check: "lemma8-widening".into(),
            detail: format!("OE rose from {oe_narrow} to {oe_wide} under widening"),
        });
    }
    Ok(())
}

/// Lemma 10 monotonicity plus masked/restricted additivity of the
/// O-estimate.
fn check_mask_relations(inst: &Instance, report: &mut CheckReport) -> Result<(), OracleError> {
    let n = inst.n();
    // Use the instance's mask, or a deterministic alternating one.
    let mask: Vec<bool> = match &inst.mask {
        Some(m) => m.clone(),
        None => (0..n).map(|i| i % 2 == 0).collect(),
    };
    let profile = OutdegreeProfile::plain(&inst.graph()?);
    let whole = profile.oestimate();
    let inside = profile.oestimate_masked(&mask)?;
    let complement: Vec<bool> = mask.iter().map(|&b| !b).collect();
    let outside = profile.oestimate_masked(&complement)?;

    report.checks_run.push("masked-additivity".into());
    if (inside + outside - whole).abs() > EXACT_EPS {
        report.violations.push(Violation {
            check: "masked-additivity".into(),
            detail: format!(
                "OE({mask:?}) + OE(!mask) = {} but OE = {whole}",
                inside + outside
            ),
        });
    }

    report.checks_run.push("restricted-equals-masked".into());
    let restricted = profile.restrict(&mask)?.oestimate();
    if (restricted - inside).abs() > EXACT_EPS {
        report.violations.push(Violation {
            check: "restricted-equals-masked".into(),
            detail: format!("restrict gives {restricted}, masked gives {inside}"),
        });
    }

    report.checks_run.push("lemma10-mask-monotonicity".into());
    if inside > whole + EXACT_EPS || outside > whole + EXACT_EPS {
        report.violations.push(Violation {
            check: "lemma10-mask-monotonicity".into(),
            detail: format!("masked OE {inside}/{outside} exceeds whole-domain {whole}"),
        });
    }
    // Growing the compliant set cannot shrink the masked OE.
    if let Some(first_out) = mask.iter().position(|&b| !b) {
        let mut grown = mask.clone();
        grown[first_out] = true;
        let grown_oe = profile.oestimate_masked(&grown)?;
        if grown_oe + EXACT_EPS < inside {
            report.violations.push(Violation {
                check: "lemma10-mask-monotonicity".into(),
                detail: format!("masked OE fell from {inside} to {grown_oe} on a superset"),
            });
        }
    }
    Ok(())
}

/// With an unlimited budget no rung trips, so the budgeted exact
/// path must be bit-identical to the plain one.
fn check_budgeted_equals_unbudgeted(
    inst: &Instance,
    cfg: &CheckConfig,
    report: &mut CheckReport,
) -> Result<(), OracleError> {
    report.checks_run.push("budgeted-equals-unbudgeted".into());
    let dense = inst.graph()?.to_dense();
    let plain = crack_probabilities_of(inst)?;
    let budget = Budget::unlimited();
    match andi_graph::crack_probabilities_budgeted(&dense, cfg.threads.max(1), &budget) {
        Err(e) => report.violations.push(Violation {
            check: "budgeted-equals-unbudgeted".into(),
            detail: format!("unlimited budget tripped: {e}"),
        }),
        Ok(budgeted) => {
            let identical = budgeted.len() == plain.len()
                && budgeted
                    .iter()
                    .zip(plain.iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !identical {
                report.violations.push(Violation {
                    check: "budgeted-equals-unbudgeted".into(),
                    detail: format!("budgeted probs {budgeted:?} != plain {plain:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Every exact path must agree that an infeasible instance has an
/// empty mapping space (and none may return a number).
fn check_empty_space_consistency(
    inst: &Instance,
    cfg: &CheckConfig,
    report: &mut CheckReport,
) -> Result<(), OracleError> {
    report.checks_run.push("empty-space-consistency".into());
    let graph = inst.graph()?;
    let mut verdicts: Vec<(String, bool)> = Vec::new();

    if inst.n() <= cfg.exact_cap.min(MAX_PERMANENT_N) {
        let dense = graph.to_dense();
        verdicts.push((
            "expected_cracks".into(),
            andi_graph::expected_cracks(&dense).is_none(),
        ));
        verdicts.push((
            "try_expected_cracks".into(),
            matches!(
                andi_graph::try_expected_cracks(&dense),
                Err(andi_graph::ExactError::EmptyMappingSpace)
            ),
        ));
        verdicts.push((
            "crack_probabilities_budgeted".into(),
            matches!(
                andi_graph::crack_probabilities_budgeted(
                    &dense,
                    cfg.threads.max(1),
                    &Budget::unlimited()
                ),
                Err(andi_graph::ExactError::EmptyMappingSpace)
            ),
        ));
    }
    // Propagation is a sound but *incomplete* emptiness test (it can
    // miss Hall-condition violations), so `Ok` is acceptable here —
    // but any error it does raise must be the structured verdict.
    verdicts.push((
        "propagated-profile".into(),
        match OutdegreeProfile::propagated(&graph) {
            Ok(_) | Err(andi_core::Error::EmptyMappingSpace) => true,
            Err(_) => false,
        },
    ));

    for (who, agrees) in verdicts {
        if !agrees {
            report.violations.push(Violation {
                check: "empty-space-consistency".into(),
                detail: format!("{who} did not report an empty mapping space"),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{Estimate, Permanent};
    use crate::instance::Regime;

    fn bigmart_h() -> Instance {
        Instance {
            label: "unit:bigmart-h".into(),
            regime: Regime::AlphaCompliant,
            supports: vec![5, 4, 5, 5, 3, 5],
            m: 10,
            intervals: vec![
                (0.0, 1.0),
                (0.4, 0.5),
                (0.5, 0.5),
                (0.4, 0.6),
                (0.1, 0.4),
                (0.5, 0.5),
            ],
            mask: None,
        }
    }

    #[test]
    fn clean_instance_passes_the_battery() {
        let report = check_instance(&bigmart_h(), &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report.checks_run.iter().any(|c| c.contains("permanent")));
        assert!(report.checks_run.iter().any(|c| c == "lemma8-widening"));
        assert!(report.checks_run.iter().any(|c| c == "masked-additivity"));
    }

    #[test]
    fn sampler_checks_run_when_enabled() {
        let cfg = CheckConfig {
            run_sampler: true,
            ..CheckConfig::default()
        };
        let report = check_instance(&bigmart_h(), &cfg).unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report
            .checks_run
            .iter()
            .any(|c| c == "swap-sampler-vs-permanent"));
        assert!(report
            .checks_run
            .iter()
            .any(|c| c == "sampler-thread-determinism"));
    }

    #[test]
    fn infeasible_instances_get_the_consistency_check() {
        let inst = Instance {
            label: "unit:infeasible".into(),
            regime: Regime::NearDegenerate,
            supports: vec![2, 4, 6],
            m: 10,
            intervals: vec![(0.2, 0.2), (0.2, 0.2), (0.6, 0.6)],
            mask: None,
        };
        let report = check_instance(&inst, &CheckConfig::default()).unwrap();
        assert_eq!(report.checks_run, vec!["empty-space-consistency"]);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
    }

    /// A deliberately wrong estimator must be caught by the pairwise
    /// comparator.
    struct OffByOne;
    impl Estimator for OffByOne {
        fn name(&self) -> &'static str {
            "off-by-one"
        }
        fn applies_to(&self, inst: &Instance) -> bool {
            Permanent::default().applies_to(inst)
        }
        fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
            let mut e = Permanent::default().estimate(inst)?;
            e.value += 1.0;
            Ok(e)
        }
    }

    #[test]
    fn compare_catches_a_wrong_exact_estimator() {
        let v = compare(&OffByOne, &Permanent::default(), &bigmart_h(), 6.0)
            .unwrap()
            .expect("off-by-one must be detected");
        assert_eq!(v.check, "off-by-one-vs-permanent");
        assert!(v.detail.contains("2.8125"), "detail: {}", v.detail);
    }

    #[test]
    fn masked_instances_run_the_subset_lemmas() {
        let inst = Instance {
            label: "unit:masked-point".into(),
            regime: Regime::PointCompliant,
            supports: vec![5, 4, 5, 5, 3, 5],
            m: 10,
            intervals: vec![
                (0.5, 0.5),
                (0.4, 0.4),
                (0.5, 0.5),
                (0.5, 0.5),
                (0.3, 0.3),
                (0.5, 0.5),
            ],
            mask: Some(vec![true, true, false, false, false, false]),
        };
        let report = check_instance(&inst, &CheckConfig::default()).unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(report
            .checks_run
            .iter()
            .any(|c| c == "closed-form-vs-permanent"));
    }
}

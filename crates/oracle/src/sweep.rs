//! The differential sweep: generate stratified instances, run the
//! full check battery on each, and minimize whatever fails.

use crate::checks::{check_instance, CheckConfig, Violation};
use crate::error::OracleError;
use crate::generate::generate;
use crate::instance::{json_string, Instance, Regime};
use crate::shrink::shrink;

/// One confirmed conformance failure, minimized for reporting.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The generated instance that first exposed the problem.
    pub instance: Instance,
    /// The shrinker's minimized reproduction.
    pub shrunk: Instance,
    /// What went wrong (first violation, or the engine error).
    pub problem: String,
}

/// Aggregate result of a sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepOutcome {
    /// Instances generated and checked.
    pub checked: usize,
    /// Names of checks exercised at least once.
    pub checks_run: Vec<String>,
    /// Confirmed failures, one per failing instance.
    pub failures: Vec<Failure>,
}

impl SweepOutcome {
    /// Whether every instance passed every applicable check.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the outcome as a single JSON document.
    pub fn to_json(&self, seed: u64, count: u64, regimes: &[Regime]) -> String {
        let regime_names: Vec<String> = regimes
            .iter()
            .map(|r| format!("\"{}\"", r.name()))
            .collect();
        let checks: Vec<String> = self.checks_run.iter().map(|c| json_string(c)).collect();
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{{\"label\":{},\"regime\":\"{}\",\"problem\":{},\"shrunk_n\":{},\"shrunk\":{}}}",
                    json_string(&f.instance.label),
                    f.instance.regime.name(),
                    json_string(&f.problem),
                    f.shrunk.n(),
                    json_string(&f.shrunk.to_text()),
                )
            })
            .collect();
        format!(
            "{{\"seed\":{seed},\"count\":{count},\"regimes\":[{}],\"checked\":{},\"checks_run\":[{}],\"clean\":{},\"failures\":[{}]}}",
            regime_names.join(","),
            self.checked,
            checks.join(","),
            self.is_clean(),
            failures.join(",")
        )
    }
}

/// How an instance fares under the battery: `None` if clean,
/// otherwise a description of the first problem.
fn first_problem(inst: &Instance, cfg: &CheckConfig) -> Option<String> {
    match check_instance(inst, cfg) {
        Ok(report) => report.violations.first().map(|v: &Violation| v.to_string()),
        Err(OracleError::Invalid(_)) => None, // shrink candidates only
        Err(e) => Some(format!("engine error: {e}")),
    }
}

/// Runs `count` instances of each regime under `(seed, cfg)`,
/// shrinking every failure. The sweep itself never errors: engine
/// errors on a generated instance are conformance failures.
pub fn run_sweep(seed: u64, count: u64, regimes: &[Regime], cfg: &CheckConfig) -> SweepOutcome {
    let mut outcome = SweepOutcome::default();
    for &regime in regimes {
        for index in 0..count {
            let inst = generate(seed, index, regime);
            outcome.checked += 1;
            match check_instance(&inst, cfg) {
                Ok(report) => {
                    for name in report.checks_run {
                        if !outcome.checks_run.contains(&name) {
                            outcome.checks_run.push(name);
                        }
                    }
                    if let Some(v) = report.violations.first() {
                        let problem = v.to_string();
                        let shrunk = shrink(&inst, |c| first_problem(c, cfg).is_some());
                        outcome.failures.push(Failure {
                            instance: inst,
                            shrunk,
                            problem,
                        });
                    }
                }
                Err(e) => {
                    let shrunk = shrink(&inst, |c| first_problem(c, cfg).is_some());
                    outcome.failures.push(Failure {
                        instance: inst,
                        shrunk,
                        problem: format!("engine error: {e}"),
                    });
                }
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean_across_regimes() {
        let cfg = CheckConfig::default();
        let outcome = run_sweep(7, 4, &Regime::ALL, &cfg);
        assert_eq!(outcome.checked, 24);
        assert!(
            outcome.is_clean(),
            "failures: {:?}",
            outcome
                .failures
                .iter()
                .map(|f| (&f.instance.label, &f.problem))
                .collect::<Vec<_>>()
        );
        assert!(outcome.checks_run.iter().any(|c| c.contains("permanent")));
        let json = outcome.to_json(7, 4, &Regime::ALL);
        assert!(json.contains("\"clean\":true"), "{json}");
        assert!(json.contains("\"checked\":24"), "{json}");
    }

    #[test]
    fn sweeps_are_deterministic() {
        let cfg = CheckConfig::default();
        let a = run_sweep(3, 3, &[Regime::Chain], &cfg).to_json(3, 3, &[Regime::Chain]);
        let b = run_sweep(3, 3, &[Regime::Chain], &cfg).to_json(3, 3, &[Regime::Chain]);
        assert_eq!(a, b);
    }
}

//! End-to-end fault-injection drill: a scratch copy of the Lemma 3
//! closed form with a deliberate off-by-one must be caught by the
//! differential comparison and minimized by the shrinker to a
//! handful of items, and the minimized instance must survive a
//! corpus round-trip so it can be committed as a regression case.

use andi_data::FrequencyGroups;
use andi_oracle::estimators::{Estimate, Estimator, Permanent};
use andi_oracle::{corpus, generate, shrink, Confidence, Instance, OracleError, Regime};

/// A scratch reimplementation of `point_valued_expected_cracks`
/// (Lemma 3: each frequency group contributes exactly one expected
/// crack, `n_j * 1/n_j`) with an injected off-by-one in the
/// per-group outdegree: `n_j * 1/(n_j + 1)`.
struct OffByOneClosedForm;

impl Estimator for OffByOneClosedForm {
    fn name(&self) -> &'static str {
        "off-by-one-closed-form"
    }

    fn applies_to(&self, inst: &Instance) -> bool {
        let freqs = inst.frequencies();
        inst.validate().is_ok()
            && inst
                .intervals
                .iter()
                .zip(freqs.iter())
                .all(|(&(l, r), &f)| l == r && l == f)
    }

    fn estimate(&self, inst: &Instance) -> Result<Estimate, OracleError> {
        let groups = FrequencyGroups::from_supports(&inst.supports, inst.m);
        let value = groups
            .sizes()
            .iter()
            .map(|&n_j| n_j as f64 / (n_j + 1) as f64)
            .sum();
        Ok(Estimate {
            value,
            confidence: Confidence::Exact,
        })
    }
}

/// The differential predicate: the buggy closed form disagrees with
/// the exact permanent on this instance.
fn disagrees(inst: &Instance) -> bool {
    let exact = Permanent::default();
    if !OffByOneClosedForm.applies_to(inst) || !exact.applies_to(inst) {
        return false;
    }
    match (OffByOneClosedForm.estimate(inst), exact.estimate(inst)) {
        (Ok(buggy), Ok(truth)) => (buggy.value - truth.value).abs() > 1e-6,
        _ => false,
    }
}

#[test]
fn injected_off_by_one_is_caught_and_shrunk() {
    // Sweep-generated point-compliant instances expose the bug
    // immediately: Lemma 3 says g cracks, the scratch copy says
    // strictly less on every group.
    let seed = 7;
    let failing: Vec<Instance> = (0..8)
        .map(|i| generate(seed, i, Regime::PointCompliant))
        .filter(disagrees)
        .collect();
    assert!(
        !failing.is_empty(),
        "the differential predicate must catch the injected bug"
    );

    for inst in failing {
        let original_n = inst.n();
        let small = shrink(&inst, disagrees);
        // The shrinker keeps the failure alive while minimizing.
        assert!(disagrees(&small), "shrunk instance must still fail");
        assert!(small.n() <= original_n);
        assert!(
            small.n() <= 6,
            "{}: shrunk to {} items, want <= 6",
            inst.label,
            small.n()
        );
        assert!(small.validate().is_ok());
    }
}

#[test]
fn shrunk_failure_round_trips_through_the_corpus() {
    let inst = generate(7, 0, Regime::PointCompliant);
    assert!(disagrees(&inst));
    let mut small = shrink(&inst, disagrees);
    small.label = "shrunk:off-by-one-demo".into();

    let dir = std::env::temp_dir().join(format!("andi-oracle-shrunk-{}", std::process::id()));
    let path = corpus::save(&dir, &small).unwrap();
    let back = corpus::load(&path).unwrap();
    assert_eq!(back, small);
    assert!(disagrees(&back), "replayed instance must still fail");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Replays the committed regression corpus as ordinary tests: every
//! instance under `crates/oracle/corpus/` must pass the full
//! differential battery, deterministically. CI runs this under
//! `ANDI_THREADS=1` and `ANDI_THREADS=4`; the reports must not
//! depend on the thread count.

use andi_oracle::{check_instance, corpus, CheckConfig};

#[test]
fn committed_corpus_replays_clean() {
    let entries = corpus::load_dir(&corpus::corpus_dir()).expect("committed corpus loads");
    assert!(
        entries.len() >= 29,
        "corpus unexpectedly small: {} files",
        entries.len()
    );
    let config = CheckConfig::default();
    for (path, inst) in &entries {
        let report = check_instance(inst, &config).unwrap();
        assert!(
            report.is_clean(),
            "{}: {:?}",
            path.display(),
            report.violations
        );
        assert!(
            !report.checks_run.is_empty(),
            "{}: no relations evaluated",
            path.display()
        );
    }
}

#[test]
fn corpus_replay_is_deterministic() {
    let entries = corpus::load_dir(&corpus::corpus_dir()).expect("committed corpus loads");
    let config = CheckConfig::default();
    for (path, inst) in &entries {
        let first = check_instance(inst, &config).unwrap();
        let second = check_instance(inst, &config).unwrap();
        assert_eq!(
            first.checks_run,
            second.checks_run,
            "{}: replay must evaluate the same relations",
            path.display()
        );
    }
}

#[test]
fn corpus_files_are_canonical() {
    // Each committed file is the canonical serialization of the
    // instance it parses to, under the file name the corpus derives
    // from its label — so regenerating the corpus is a no-op.
    let entries = corpus::load_dir(&corpus::corpus_dir()).expect("committed corpus loads");
    for (path, inst) in &entries {
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, inst.to_text(), "{} is not canonical", path.display());
        let name = path.file_name().unwrap().to_str().unwrap();
        assert_eq!(
            name,
            corpus::file_name_for(&inst.label),
            "{} is misnamed for label {:?}",
            path.display(),
            inst.label
        );
    }
}

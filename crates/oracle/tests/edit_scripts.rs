//! Metamorphic battery for the incremental risk engine: after every
//! prefix of every generated edit script, the delta-updated
//! assessment must be bit-identical to a from-scratch recompute, at
//! every thread count. CI runs this under two `ANDI_FAULTS` schedules
//! on top of `ANDI_THREADS` {1, 4}; a failing script is shrunk and
//! written to `$ANDI_SHRINK_OUT` before the test panics.
//!
//! A rate-zero fault schedule is installed (under `FAULT_LOCK`) so a
//! chaos schedule from the ambient environment cannot make this suite
//! flaky: determinism under injected faults is the chaos suite's job;
//! this suite pins the equivalence itself.

use std::path::PathBuf;
use std::sync::Mutex;

use andi_graph::faults::FaultSchedule;
use andi_oracle::corpus;
use andi_oracle::editscript::{check_script, generate_script, shrink_script, EditScriptCase};
use andi_oracle::instance::Regime;

/// Serializes fault-schedule installation across this binary's tests.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

const THREADS: [usize; 2] = [1, 4];

/// Checks one script; on failure shrinks it, writes the reproduction
/// to `$ANDI_SHRINK_OUT` (when set), and panics with the diagnosis.
fn check_or_shrink(case: &EditScriptCase) {
    let Err(err) = check_script(case, &THREADS) else {
        return;
    };
    let shrunk = shrink_script(case, |c| check_script(c, &THREADS).is_err());
    if let Ok(dir) = std::env::var("ANDI_SHRINK_OUT") {
        match corpus::save_script(&PathBuf::from(&dir), &shrunk) {
            Ok(path) => eprintln!("shrunk edit script written to {}", path.display()),
            Err(e) => eprintln!("could not write shrunk edit script: {e}"),
        }
    }
    panic!(
        "{}: {err} (shrunk from {} to {} edits)",
        case.base.label,
        case.edits.len(),
        shrunk.edits.len()
    );
}

#[test]
fn generated_scripts_stay_bit_identical_across_all_regimes() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("1:0").unwrap().install();
    for regime in Regime::ALL {
        for index in 0..3u64 {
            check_or_shrink(&generate_script(7, index, regime));
        }
    }
}

#[test]
fn a_second_seed_stream_stays_bit_identical() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("1:0").unwrap().install();
    for regime in Regime::ALL {
        check_or_shrink(&generate_script(101, 0, regime));
    }
}

#[test]
fn committed_edit_script_corpus_replays_clean() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = FaultSchedule::parse("1:0").unwrap().install();
    let entries =
        corpus::load_script_dir(&corpus::edit_scripts_dir()).expect("edit-script corpus loads");
    assert!(
        entries.len() >= 6,
        "edit-script corpus unexpectedly small: {} files",
        entries.len()
    );
    let mut regimes_seen = std::collections::BTreeSet::new();
    for (path, case) in &entries {
        // The committed text is canonical: parse ∘ print is identity.
        let reprinted = EditScriptCase::from_text(&case.to_text())
            .unwrap_or_else(|e| panic!("{}: reprint does not parse: {e}", path.display()));
        assert_eq!(
            reprinted.to_text(),
            case.to_text(),
            "{}: non-canonical text",
            path.display()
        );
        regimes_seen.insert(case.base.regime as u64);
        check_or_shrink(case);
    }
    assert_eq!(
        regimes_seen.len(),
        Regime::ALL.len(),
        "the committed corpus must cover every generation regime"
    );
}

//! Offline, in-tree subset of the `criterion` API.
//!
//! Benchmarks keep their upstream-criterion source shape
//! (`criterion_group!` / `criterion_main!`, groups, `iter`,
//! `iter_batched`, throughput) but run on a small wall-clock harness:
//! each benchmark is calibrated to ~5 ms batches, sampled
//! `sample_size` times, and summarized as min / median / mean ns per
//! iteration.
//!
//! Every run also emits a machine-readable baseline
//! `BENCH_<target>.json` (the `_perf` suffix is stripped:
//! `recipe_perf` → `BENCH_recipe.json`) into `$ANDI_BENCH_OUT` or the
//! current directory, so perf trajectories can be tracked across PRs.
//!
//! `--test` in the arguments (as passed by `cargo bench -- --test`)
//! runs every benchmark exactly once without sampling or JSON output.

use std::hint::black_box;
use std::time::Instant;

/// Target batch duration per sample, nanoseconds.
const TARGET_SAMPLE_NS: u128 = 5_000_000;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (the harness times the
/// routine per call either way, so this is shape-compat only).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup per call).
    LargeInput,
    /// Re-run setup every iteration.
    PerIteration,
}

#[derive(Clone, Debug)]
struct BenchRecord {
    group: String,
    bench: String,
    min_ns: f64,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    throughput_elems: Option<u64>,
}

/// The harness root; collects results and writes the JSON baseline
/// when dropped.
pub struct Criterion {
    target: String,
    test_mode: bool,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::for_target("bench")
    }
}

impl Criterion {
    /// Builds the harness for a named bench target (wired up by
    /// [`criterion_group!`], which passes `CARGO_CRATE_NAME`).
    pub fn for_target(target: &str) -> Self {
        Criterion {
            target: target.to_string(),
            test_mode: std::env::args().any(|a| a == "--test"),
            records: Vec::new(),
        }
    }

    /// Upstream-compat no-op (arguments are read in `for_target`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn baseline_path(&self) -> std::path::PathBuf {
        let stem = self.target.strip_suffix("_perf").unwrap_or(&self.target);
        let dir = std::env::var("ANDI_BENCH_OUT").unwrap_or_else(|_| ".".into());
        std::path::Path::new(&dir).join(format!("BENCH_{stem}.json"))
    }

    fn write_baseline(&self) {
        if self.test_mode || self.records.is_empty() {
            return;
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", self.target));
        out.push_str("  \"unit\": \"ns_per_iter\",\n  \"benches\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"bench\": \"{}\", \"min\": {:.1}, \
                 \"median\": {:.1}, \"mean\": {:.1}, \"samples\": {}, \
                 \"iters_per_sample\": {}{}}}{}\n",
                r.group,
                r.bench,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                r.samples,
                r.iters_per_sample,
                r.throughput_elems
                    .map(|e| format!(", \"throughput_elements\": {e}"))
                    .unwrap_or_default(),
                if i + 1 < self.records.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        let path = self.baseline_path();
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("[criterion] could not write {}: {e}", path.display());
        } else {
            eprintln!("[criterion] baseline written to {}", path.display());
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_baseline();
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Upstream-compat: the harness derives sampling from wall-clock
    /// calibration, so the requested sample count is advisory.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates throughput for the group's records.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: Vec::new(),
            iters_per_sample: 1,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            eprintln!("[criterion] {}/{}: smoke-tested", self.name, id);
            return self;
        }
        let mut sorted = bencher.samples.clone();
        sorted.sort_by(f64::total_cmp);
        if sorted.is_empty() {
            return self;
        }
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        eprintln!(
            "[criterion] {}/{}: median {:.0} ns/iter (min {:.0}, mean {:.0}, {} samples x {} iters)",
            self.name, id, median, min, mean, sorted.len(), bencher.iters_per_sample
        );
        self.criterion.records.push(BenchRecord {
            group: self.name.clone(),
            bench: id,
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            samples: sorted.len(),
            iters_per_sample: bencher.iters_per_sample,
            throughput_elems: match self.throughput {
                Some(Throughput::Elements(e)) => Some(e),
                _ => None,
            },
        });
        self
    }

    /// Ends the group (records were pushed eagerly).
    pub fn finish(self) {}
}

/// Number of timed samples per benchmark.
const N_SAMPLES: usize = 12;

/// Times closures for one benchmark.
pub struct Bencher {
    test_mode: bool,
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Benchmarks `routine` (the common case).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Calibrate to ~TARGET_SAMPLE_NS per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NS / once).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..N_SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters as f64);
        }
    }

    /// Benchmarks `routine` over inputs built by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NS / once).clamp(1, 100_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..N_SAMPLES {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters as f64);
        }
    }
}

/// Declares a bench entry function running each target against one
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion =
                $crate::Criterion::for_target(env!("CARGO_CRATE_NAME"));
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

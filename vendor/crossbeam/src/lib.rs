//! Offline, in-tree subset of the `crossbeam` API.
//!
//! Only [`thread::scope`] / [`thread::Scope::spawn`] are provided —
//! the slice this workspace uses — implemented directly on
//! `std::thread::scope`, which has subsumed crossbeam's scoped
//! threads since Rust 1.63. Signatures mirror crossbeam 0.8 so the
//! real crate can be swapped back in without code changes.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A scope for spawning borrowing threads; see
    /// [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the
        /// closure receives the scope (so it could spawn nested
        /// threads).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads may borrow from the caller's
    /// stack. All spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panic in an *unjoined* child propagates
    /// directly (std semantics) instead of being collected into the
    /// `Err` arm; every caller in this workspace joins its children,
    /// where the two behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_borrows() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}

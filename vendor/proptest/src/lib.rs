//! Offline, in-tree subset of the `proptest` API.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the slice of proptest its test suites use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range / tuple / [`Just`] / collection / bool /
//! [`any`] strategies, a character-class regex string strategy, and
//! the `prop_assert*` / `prop_assume` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its deterministic
//!   case number and seed instead of a minimized input.
//! * **Deterministic by construction** — case `k` of test `t` is
//!   seeded from `hash(t) ⊕ k`, so failures reproduce exactly.

use std::collections::BTreeSet;
use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-case random source handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a case generator.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, xor-folded with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case.
    Reject(String),
    /// An assertion failed — the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (`ProptestConfig` in upstream terms).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: generates cases until `config.cases` pass,
/// panicking on the first failure. Rejections (via `prop_assume!`)
/// consume attempts but not cases, up to a global budget.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let max_attempts = (config.cases as u64).saturating_mul(32).max(1024);
    let mut passed: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases as u64 {
        if attempt >= max_attempts {
            panic!(
                "property `{name}`: too many rejected cases \
                 ({passed}/{} passed after {attempt} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(name, attempt);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case #{attempt}: {msg}")
            }
        }
        attempt += 1;
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.base.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy (a pragmatic stand-in
/// for upstream's `Arbitrary`).
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen::<bool>()
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.rng().gen::<f64>()
    }
}

/// Strategy for [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `any::<T>()`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Size specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Exclusive maximum length.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy (upstream `prop::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` strategy (upstream `prop::collection::btree_set`).
    /// If the element universe is too small to reach the drawn size,
    /// the set saturates at what is reachable (bounded retries).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.rng().gen_range(self.size.min..self.size.max);
            let mut set = std::collections::BTreeSet::new();
            let mut tries = 0usize;
            while set.len() < target && tries < 32 + 16 * target {
                set.insert(self.element.generate(rng));
                tries += 1;
            }
            set
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Fair-coin strategy (upstream `prop::bool::ANY`).
    pub struct AnyBool;

    /// A fair coin.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen::<bool>()
        }
    }

    /// Weighted-coin strategy.
    pub struct Weighted(f64);

    /// `true` with probability `p` (upstream `prop::bool::weighted`).
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p));
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.rng().gen_bool(self.0)
        }
    }
}

/// Regex-subset string strategy: `"[class]{min,max}"` patterns, the
/// only form this workspace's tests use. The class supports literal
/// characters, `a-z` ranges, `\t \r \n \\` escapes, and a trailing
/// literal `-`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported regex strategy {self:?} (only \"[class]{{min,max}}\" is vendored)")
        });
        let len = rng.rng().gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.rng().gen_range(0..alphabet.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let quant = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .split_once(',')?;
    let (min, max) = (quant.0.trim().parse().ok()?, quant.1.trim().parse().ok()?);

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = class[i];
        if c == '\\' && i + 1 < class.len() {
            alphabet.push(match class[i + 1] {
                't' => '\t',
                'r' => '\r',
                'n' => '\n',
                other => other,
            });
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (c as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            alphabet.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    if alphabet.is_empty() || min > max {
        return None;
    }
    Some((alphabet, min, max))
}

// Re-exported so `prop::collection::btree_set` values type-check
// without the test importing BTreeSet through us.
#[doc(hidden)]
pub type _BTreeSet<T> = BTreeSet<T>;

/// Assert inside a property; failure fails the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The property-test entry point; mirrors upstream's `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(__config, stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, run_cases, ArbitraryValue, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespaced strategy modules (upstream `prelude::prop`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses() {
        let (alphabet, min, max) = super::parse_class_pattern("[0-9 \t\r\n.,;x-]{0,256}").unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 256);
        for c in ['0', '9', ' ', '\t', '\r', '\n', '.', ',', ';', 'x', '-'] {
            assert!(alphabet.contains(&c), "missing {c:?}");
        }
        assert!(!alphabet.contains(&'a'));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            n in 2usize..=7,
            (a, b) in (0.0f64..0.25, 0.0f64..0.25),
            flag in prop::bool::weighted(0.5),
        ) {
            prop_assert!((2..=7).contains(&n));
            prop_assert!((0.0..0.25).contains(&a) && (0.0..0.25).contains(&b));
            let _ = flag;
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(1u64..50, 3..9),
            s in prop::collection::btree_set(0u32..10, 1..6),
            bytes in prop::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!((3..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..50).contains(&x)));
            prop_assert!(!s.is_empty() && s.len() < 6);
            prop_assert!(bytes.len() < 16);
        }

        #[test]
        fn flat_map_threads_values(
            (n, v) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u32..10, n))
            })
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn string_strategy_obeys_class(text in "[0-9 \t\r\n.,;x-]{0,64}") {
            prop_assert!(text.len() <= 64);
            prop_assert!(text.chars().all(|c| {
                c.is_ascii_digit() || " \t\r\n.,;x-".contains(c)
            }));
        }
    }

    #[test]
    fn assume_rejects_without_failing() {
        let mut seen = 0u32;
        run_cases(ProptestConfig::with_cases(8), "assume_demo", |rng| {
            let v: u64 = Strategy::generate(&(0u64..100), rng);
            prop_assume!(v.is_multiple_of(2));
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 8);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        run_cases(ProptestConfig::with_cases(4), "fail_demo", |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}

//! Offline, in-tree subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`] / [`Rng`] / [`SeedableRng`], a deterministic
//! [`rngs::StdRng`] (SplitMix64-seeded xoshiro256++), and the
//! [`seq::SliceRandom`] shuffle/choose helpers. The API shapes match
//! `rand` 0.8 closely enough that swapping the real crate back in is
//! a one-line `Cargo.toml` change.
//!
//! Determinism contract: for a fixed seed, every generator here
//! produces the same stream on every platform and thread count. All
//! repo-level reproducibility guarantees (recipe mask runs, sampler
//! shards, property tests) build on that.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64, u128 => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via widening multiply (negligible
/// bias for the spans this workspace uses).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::standard_sample(rng) * (hi - lo)
    }
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (matching
    /// the construction rand 0.8 documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256++ (Blackman & Vigna). Not the ChaCha12 generator
    /// of upstream `rand`, but a high-quality, portable, seedable
    /// stream — everything the estimators and tests rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro is a fixpoint at the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    //! Slice helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle (the rand 0.8 end-first
        /// walk).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    pub mod index {
        //! Index sampling without replacement.

        use crate::{Rng, RngCore};

        /// Samples `amount` distinct indices from `0..length`,
        /// uniformly, in selection order (upstream returns an
        /// `IndexVec`; a plain `Vec<usize>` iterates the same way).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            // Floyd's algorithm: O(amount) memory, no bias.
            let mut chosen: Vec<usize> = Vec::with_capacity(amount);
            for j in length - amount..length {
                let t = rng.gen_range(0..=j);
                if chosen.contains(&t) {
                    chosen.push(j);
                } else {
                    chosen.push(t);
                }
            }
            chosen
        }
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let opts = [1u8, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[*opts.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

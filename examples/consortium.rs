//! Mining for the common good (the paper's second scenario).
//!
//! A consortium pools member data; partners may be, or become,
//! competitors. Each member screens its dataset with the Assess-Risk
//! recipe, then sanity-checks the verdict with Similarity-by-Sampling
//! — if a modest sample of the data already yields a belief function
//! more compliant than `α_max`, a partner holding *similar* data is a
//! real threat (the paper's ACCIDENTS cautionary tale).
//!
//! ```text
//! cargo run --release --example consortium
//! ```

use andi::core::report::TextTable;
use andi::{assess_risk, similarity_by_sampling, Analog, RecipeConfig, SimilarityConfig};

fn main() {
    let tau = 0.10;
    println!("consortium screening at tolerance tau = {tau}\n");

    let mut table = TextTable::new([
        "dataset",
        "items",
        "groups",
        "g<=tau*n?",
        "full OE",
        "OE/n",
        "alpha_max",
    ]);
    let mut alpha_max_of: Vec<(Analog, Option<f64>)> = Vec::new();

    for analog in [
        Analog::Chess,
        Analog::Mushroom,
        Analog::Connect,
        Analog::Pumsb,
    ] {
        let spec = analog.spec();
        let supports = analog.supports();
        let verdict = assess_risk(
            &supports,
            spec.n_transactions,
            &RecipeConfig {
                tolerance: tau,
                // Plain Figure-5 outdegrees keep the example snappy;
                // the bench binaries run the propagated variant.
                use_propagation: false,
                ..RecipeConfig::default()
            },
        )
        .expect("analog profiles are valid");
        let alpha = verdict.alpha_max();
        alpha_max_of.push((analog, alpha));
        table.add_row([
            analog.name().to_string(),
            spec.n_items.to_string(),
            format!("{:.0}", verdict.point_valued_cracks),
            if verdict.point_valued_cracks <= tau * spec.n_items as f64 {
                "yes".into()
            } else {
                "no".to_string()
            },
            format!("{:.2}", verdict.full_compliance_oe),
            format!("{:.3}", verdict.full_compliance_oe / spec.n_items as f64),
            match alpha {
                Some(a) => format!("{a:.2}"),
                None => "— (disclose)".into(),
            },
        ]);
    }
    println!("{}", table.render());

    // ------------------------------------------------------------------
    // Similarity check on the smallest dataset: how compliant is a
    // belief function built from a sample?
    // ------------------------------------------------------------------
    let analog = Analog::Chess;
    println!(
        "similarity-by-sampling on {} (how much would a partner with \
         similar data know?)",
        analog.name()
    );
    let db = analog.database();
    let points = similarity_by_sampling(
        &db,
        &[0.05, 0.10, 0.25, 0.50, 0.75],
        &SimilarityConfig {
            samples_per_size: 5,
            ..SimilarityConfig::default()
        },
    )
    .expect("sampling parameters are valid");

    let mut t2 = TextTable::new(["sample %", "mean alpha", "std", "delta'"]);
    for p in &points {
        t2.add_row([
            format!("{:.0}%", p.fraction * 100.0),
            format!("{:.3}", p.mean_alpha),
            format!("{:.3}", p.std_alpha),
            format!("{:.5}", p.mean_delta),
        ]);
    }
    println!("{}", t2.render());

    if let Some((_, Some(alpha_max))) = alpha_max_of.iter().find(|(a, _)| *a == analog) {
        let breach = points.iter().find(|p| p.mean_alpha > *alpha_max);
        match breach {
            Some(p) => println!(
                "warning: a {:.0}% sample already achieves alpha = {:.2} > \
                 alpha_max = {alpha_max:.2} — withhold from partners with similar data",
                p.fraction * 100.0,
                p.mean_alpha
            ),
            None => println!(
                "no tested sample size reaches alpha_max = {alpha_max:.2}; \
                 disclosure looks defensible"
            ),
        }
    }
}

//! Should the owner release a sample instead of the full database?
//!
//! Clifton's argument (cited in Section 7.4) says a small random
//! sample poses little threat. The paper pushes back in compliancy
//! terms; this example gives the owner both views:
//!
//! 1. the crack risk *of the released sample itself* as the release
//!    fraction grows, and
//! 2. how much compliancy (attack power against the full data) a
//!    belief function built from that sample achieves.
//!
//! Also shows the exact-when-affordable estimator: small releases
//! get convex-exact numbers rather than heuristics.
//!
//! ```text
//! cargo run --release --example sample_release
//! ```

use andi::core::estimate::best_expected_cracks;
use andi::core::report::TextTable;
use andi::{
    sample_release_curve, similarity_by_sampling, Analog, BeliefFunction, FrequencyGroups,
    SimilarityConfig,
};

fn main() {
    let analog = Analog::Mushroom;
    println!("owner data: the {} analog", analog.name());
    let db = analog.database();
    let fractions = [0.05, 0.10, 0.25, 0.50, 1.0];
    let config = SimilarityConfig {
        samples_per_size: 5,
        ..SimilarityConfig::default()
    };

    // View 1: risk of the release itself.
    let release = sample_release_curve(&db, &fractions, &config).expect("parameters are valid");
    // View 2: attack power a sample lends against the full data.
    let attack = similarity_by_sampling(&db, &fractions, &config).expect("parameters are valid");

    let mut table = TextTable::new([
        "release %",
        "exposed items",
        "OE of release",
        "crack fraction",
        "alpha vs full data",
    ]);
    for (r, a) in release.iter().zip(attack.iter()) {
        table.add_row([
            format!("{:.0}%", r.fraction * 100.0),
            r.exposed_items.to_string(),
            format!("{:.2}", r.oestimate),
            format!("{:.3}", r.fraction_cracked),
            format!("{:.3}", a.mean_alpha),
        ]);
    }
    println!("{}", table.render());

    // Exactness bonus: for this dense analog the convex DP gives the
    // *exact* expected cracks of a full release, no simulation
    // needed.
    let supports = db.supports();
    let m = db.n_transactions() as u64;
    let groups = FrequencyGroups::from_supports(&supports, m);
    let delta = groups.median_gap().expect("multiple groups");
    let belief = BeliefFunction::widened(&db.frequencies(), delta).expect("valid");
    let graph = belief.build_graph(&supports, m);
    match best_expected_cracks(&graph, 3_000_000) {
        Ok(e) => println!(
            "full release, exact expected cracks = {:.3} via {:?}",
            e.value, e.method
        ),
        Err(e) => println!("exact estimate unavailable: {e}"),
    }

    println!(
        "\nreading: small releases still leak — the sample's own O-estimate\n\
         stays a sizeable fraction of its exposed items, and even a 10%\n\
         sample hands an attacker nontrivial compliancy against the full\n\
         data. 'Release less' is not a privacy mechanism."
    );
}

//! The dilemma, quantified: risk bought by perturbation vs mining
//! utility lost.
//!
//! Plain anonymization preserves mining results exactly but leaves
//! the frequency profile intact for a knowledgeable hacker. The
//! perturbation family the paper cites (rule hiding, randomization,
//! k-anonymity) trades utility for camouflage. Here we sweep the
//! simplest such sanitizer — support rounding — and print both sides
//! of the ledger on one table: disclosure risk (point-valued `g`,
//! interval O-estimate) versus mining fidelity (F1 of the frequent
//! itemsets against the unperturbed truth) and frequency error.
//!
//! ```text
//! cargo run --release --example sanitization_tradeoff
//! ```

use andi::core::report::TextTable;
use andi::core::sanitize::{round_supports, utility_loss};
use andi::mining::Algorithm;
use andi::{BeliefFunction, FrequencyGroups, MiningResult, OutdegreeProfile};
use andi_data::synth::quest::{generate, QuestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// F1 of the sanitized mining result against the truth.
fn mining_f1(truth: &MiningResult, got: &MiningResult) -> f64 {
    let tp = got
        .iter()
        .filter(|(s, _)| truth.support(s).is_some())
        .count() as f64;
    if got.is_empty() || truth.is_empty() {
        return if got.len() == truth.len() { 1.0 } else { 0.0 };
    }
    let precision = tp / got.len() as f64;
    let recall = tp / truth.len() as f64;
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(515);
    let db = generate(
        &QuestConfig {
            n_items: 100,
            n_transactions: 2_000,
            n_patterns: 20,
            avg_pattern_len: 4,
            patterns_per_transaction: 2,
            noise_prob: 0.3,
            noise_max: 3,
        },
        &mut rng,
    );
    let m = db.n_transactions() as u64;
    let min_support = m / 20; // 5%
    let truth = Algorithm::FpGrowth.mine(&db, min_support);
    println!(
        "workload: {} items, {m} transactions; truth = {} frequent sets at 5%\n",
        db.n_items(),
        truth.len()
    );

    let mut table = TextTable::new([
        "bucket",
        "groups g",
        "OE (delta_med)",
        "OE/n",
        "mining F1",
        "mean freq err",
        "edits %",
    ]);
    for bucket in [1u64, 5, 10, 25, 50, 100] {
        let sanitized = round_supports(&db, bucket, &mut rng).expect("bucket >= 1");
        let sdb = &sanitized.database;
        let supports = sdb.supports();
        let groups = FrequencyGroups::from_supports(&supports, m);
        let delta = groups.median_gap().unwrap_or(0.0);
        let belief = BeliefFunction::widened(&sdb.frequencies(), delta).expect("valid frequencies");
        let graph = belief.build_graph(&supports, m);
        let oe = OutdegreeProfile::propagated(&graph)
            .expect("compliant space")
            .oestimate();
        let mined = Algorithm::FpGrowth.mine(sdb, min_support);
        let loss = utility_loss(&db, &sanitized).expect("same domain");
        table.add_row([
            bucket.to_string(),
            groups.n_groups().to_string(),
            format!("{oe:.1}"),
            format!("{:.3}", oe / db.n_items() as f64),
            format!("{:.3}", mining_f1(&truth, &mined)),
            format!("{:.4}", loss.mean_frequency_error),
            format!("{:.2}%", 100.0 * loss.edit_fraction),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading: rounding buys camouflage (g and the O-estimate fall) at a\n\
         measurable mining cost — exactly the trade plain anonymization\n\
         refuses to make. The owner can now put numbers on both pans of\n\
         the scale."
    );
}

//! Mining as a service (the paper's first motivating scenario).
//!
//! A company without in-house expertise ships its baskets to an
//! external mining provider. Anonymization's selling point is that it
//! does not perturb data characteristics: the provider mines the
//! anonymized baskets, returns anonymized patterns, and the owner
//! maps them back losslessly. The flip side — how much the provider
//! could learn about product identities — is what the risk analysis
//! quantifies.
//!
//! ```text
//! cargo run --example mining_service
//! ```

use andi::mining::Algorithm;
use andi::{assess_risk, AnonymizationMapping, RecipeConfig};
use andi_data::synth::quest::{generate, QuestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The owner's correlated basket data (Quest-style generator).
    let mut rng = StdRng::seed_from_u64(42);
    let config = QuestConfig {
        n_items: 120,
        n_transactions: 3_000,
        n_patterns: 25,
        avg_pattern_len: 4,
        patterns_per_transaction: 2,
        noise_prob: 0.25,
        noise_max: 3,
    };
    let db = generate(&config, &mut rng);
    println!(
        "owner data: {} items, {} transactions, avg length {:.1}",
        db.n_items(),
        db.n_transactions(),
        db.avg_transaction_len()
    );

    // --------------------------------------------------------------
    // Step 1: anonymize and ship.
    // --------------------------------------------------------------
    let mapping = AnonymizationMapping::random(db.n_items(), &mut rng);
    let shipped = mapping.anonymize_database(&db).expect("domains match");

    // --------------------------------------------------------------
    // Step 2: the provider mines the anonymized data.
    // --------------------------------------------------------------
    let min_support = (db.n_transactions() / 20) as u64; // 5%
    let provider_result = Algorithm::FpGrowth.mine(&shipped, min_support);
    println!(
        "provider mined {} frequent itemsets at min support {min_support}",
        provider_result.len()
    );

    // --------------------------------------------------------------
    // Step 3: the owner maps the patterns back and cross-checks that
    // nothing was perturbed: mining the original directly gives the
    // identical result.
    // --------------------------------------------------------------
    let mapped_back = provider_result.relabel(mapping.backward());
    let direct = Algorithm::Apriori.mine(&db, min_support);
    assert_eq!(
        mapped_back, direct,
        "anonymization must not perturb mining results"
    );
    println!("mapped-back patterns identical to mining the original: OK");
    if let Some((top, support)) = direct.iter().max_by_key(|&(_, c)| c) {
        println!("most frequent pattern: {top} (support {support})");
    }

    // --------------------------------------------------------------
    // Step 4: before shipping, the owner should have asked — how safe
    // was that? Run the recipe at a 10% tolerance.
    // --------------------------------------------------------------
    let verdict = assess_risk(
        &db.supports(),
        db.n_transactions() as u64,
        &RecipeConfig {
            tolerance: 0.10,
            ..RecipeConfig::default()
        },
    )
    .expect("recipe inputs are valid");
    println!(
        "\nrisk assessment (tau = 0.10): point-valued cracks = {:.0}, \
         delta_med = {:.5}, full-compliance OE = {:.2}",
        verdict.point_valued_cracks, verdict.delta_med, verdict.full_compliance_oe
    );
    match verdict.decision {
        andi::RiskDecision::DiscloseAtPointValued => {
            println!("verdict: disclose — safe even against exact frequency knowledge")
        }
        andi::RiskDecision::DiscloseAtFullCompliance => {
            println!("verdict: disclose — interval-level knowledge stays within tolerance")
        }
        andi::RiskDecision::AlphaMax {
            alpha_max,
            oestimate_at_alpha,
        } => println!(
            "verdict: the provider would need to guess {:.0}% of frequency \
             intervals correctly to crack more than tolerated \
             (OE at alpha_max = {oestimate_at_alpha:.2} items)",
            alpha_max * 100.0
        ),
    }
}

//! Itemset-level identification (the Section 8.2 extension).
//!
//! Item-level analysis can say "items 1 and 2 are indistinguishable"
//! while the *set* {1', 2'} is still pinned down exactly — the
//! paper's Figure 6(b) observation. This example reproduces that
//! graph, then shows set-level leakage on a benchmark analog where
//! item-level risk already looks tame.
//!
//! ```text
//! cargo run --release --example itemset_identification
//! ```

use andi::core::itemsets::identify_sets;
use andi::{oestimate, Analog, BeliefFunction};

fn main() {
    // ------------------------------------------------------------------
    // Figure 6(b): four items, staggered intervals.
    // ------------------------------------------------------------------
    let supports = vec![2u64, 4, 6, 8];
    let m = 10;
    let f = |s: u64| s as f64 / m as f64;
    let belief = BeliefFunction::from_intervals(vec![
        (f(2), f(4)), // "1": could be either of the two low groups
        (f(2), f(4)), // "2": same
        (f(4), f(8)), // "3": spans the upper three groups
        (f(6), f(8)), // "4": the two high groups
    ])
    .expect("intervals are valid");
    let graph = belief.build_graph(&supports, m);

    println!("Figure 6(b):");
    println!(
        "  item-level O-estimate: {:.4} (no single item is certain)",
        oestimate(&belief, &supports, m)
    );
    let id = identify_sets(&graph);
    for block in &id.blocks {
        println!(
            "  identified set: anonymized {:?} --> originals {:?}{}",
            block.anonymized_items,
            block.original_items,
            if block.is_crack() {
                "  [outright crack]"
            } else {
                ""
            }
        );
    }
    assert_eq!(id.blocks.len(), 2, "the paper's two-pair split");

    // ------------------------------------------------------------------
    // A benchmark analog: how finely does delta_med knowledge
    // partition the domain into provably-identified sets?
    // ------------------------------------------------------------------
    let analog = Analog::Mushroom;
    let spec = analog.spec();
    let analog_supports = analog.supports();
    let groups = analog.frequency_groups();
    let delta = groups.median_gap().expect("multiple groups exist");
    let freqs: Vec<f64> = analog_supports
        .iter()
        .map(|&s| s as f64 / spec.n_transactions as f64)
        .collect();
    let b = BeliefFunction::widened(&freqs, delta).expect("frequencies are valid");
    let g = b.build_graph(&analog_supports, spec.n_transactions);
    let id = identify_sets(&g);

    let sizes = id.block_sizes();
    let singletons = sizes.iter().filter(|&&s| s == 1).count();
    println!("\n{} analog with delta_med = {delta:.5}:", analog.name());
    println!(
        "  {} items fall into {} provably-identified blocks",
        spec.n_items,
        sizes.len()
    );
    println!(
        "  {} singleton blocks (items identified with certainty)",
        singletons
    );
    println!(
        "  largest block: {} items (the best camouflage available)",
        sizes.last().copied().unwrap_or(0)
    );
    println!(
        "  => even if item-level probabilities look small, every block \
         boundary is information the release gives away for free"
    );
}

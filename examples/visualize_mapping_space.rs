//! Visualizing the mapping space: the paper's Figure 3, regenerated.
//!
//! Prints the Figure 3(b) group view of BigMart under the belief
//! function `h` (frequency groups × belief groups), and writes the
//! Figure 3(a) bipartite graph as Graphviz DOT to
//! `target/mapping_space.dot` (`dot -Tsvg` renders it).
//!
//! ```text
//! cargo run --example visualize_mapping_space
//! ```

use andi::graph::dot::{to_dot, DotOptions};
use andi::graph::propagate::propagate;
use andi::{bigmart, BeliefFunction};

fn main() {
    let db = bigmart();
    let supports = db.supports();
    // The belief function h of Figure 2 (0-based items).
    let h = BeliefFunction::from_intervals(vec![
        (0.0, 1.0),
        (0.4, 0.5),
        (0.5, 0.5),
        (0.4, 0.6),
        (0.1, 0.4),
        (0.5, 0.5),
    ])
    .expect("intervals are valid");
    let graph = h.build_graph(&supports, db.n_transactions() as u64);

    // ------------------------------------------------------------------
    // Figure 3(b): the group view.
    // ------------------------------------------------------------------
    println!("frequency groups (anonymized side):");
    for g in 0..graph.n_groups() {
        let members: Vec<String> = graph
            .group_members(g)
            .iter()
            .map(|&i| format!("{}'", i + 1)) // paper's 1-based labels
            .collect();
        println!(
            "  freq {:.1}: {{{}}}",
            graph.group_frequency(g),
            members.join(", ")
        );
    }
    println!("\nbelief groups (original side):");
    for bg in graph.belief_groups() {
        let members: Vec<String> = bg.members.iter().map(|&y| (y + 1).to_string()).collect();
        let kind = if bg.is_exclusive() {
            "exclusive"
        } else if bg.is_shared() {
            "shared"
        } else {
            "wide"
        };
        match bg.range {
            Some((lo, hi)) => println!(
                "  {{{}}} <- frequency groups {}..={} ({kind})",
                members.join(", "),
                lo,
                hi
            ),
            None => println!("  {{{}}} <- unmatchable", members.join(", ")),
        }
    }

    // ------------------------------------------------------------------
    // Figure 3(a): the bipartite graph, as DOT.
    // ------------------------------------------------------------------
    let dense = graph.to_dense();
    let prop = propagate(&dense);
    let dot = to_dot(
        &dense,
        &DotOptions {
            title: Some("BigMart under belief h (Figure 3)".into()),
            forced: Some(prop.forced.clone()),
        },
    );
    let path = std::path::Path::new("target").join("mapping_space.dot");
    std::fs::create_dir_all("target").expect("can create target/");
    std::fs::write(&path, &dot).expect("can write the DOT file");
    println!(
        "\nwrote {} ({} bytes) — render with `dot -Tsvg {} -o mapping.svg`",
        path.display(),
        dot.len(),
        path.display()
    );
}

//! Powerset belief functions: itemset knowledge breaks item-level
//! camouflage (the Section 8.2 research direction, realized).
//!
//! Items sharing a frequency are indistinguishable to any item-level
//! hacker — the paper's camouflage effect. But a hacker who also
//! knows how often two products sell *together* can tell them apart:
//! co-occurrence is not shared group-wide. This example walks BigMart
//! from "protected by the group" to "fully cracked" as pair knowledge
//! accumulates.
//!
//! ```text
//! cargo run --example powerset_attack
//! ```

use andi::core::powerset::{assess_powerset_risk, ItemsetBelief, PowersetBelief};
use andi::core::report::TextTable;
use andi::{bigmart, BeliefFunction, ItemId};

fn main() {
    let db = bigmart();
    let freqs = db.frequencies();
    println!(
        "BigMart: items 1, 3, 4, 6 share frequency 0.5 — a 4-item\n\
         camouflage group. Point-valued item knowledge alone expects\n\
         g = 3 cracks (Lemma 3).\n"
    );

    // The hacker's item-level knowledge: exact frequencies.
    let item_belief = BeliefFunction::point_valued(&freqs).expect("valid frequencies");

    // Pair supports the hacker might learn (e.g. from similar data):
    // how often product 1 sells with product 2 (0-based 0 with 1).
    let pairs: [(usize, usize); 3] = [(0, 1), (2, 1), (3, 1)];
    for &(a, b) in &pairs {
        let sup = db.itemset_support(&[ItemId(a as u32), ItemId(b as u32)]);
        println!(
            "true co-occurrence of items {} and {}: {sup}/10 baskets",
            a + 1,
            b + 1
        );
    }
    println!();

    let mut table = TextTable::new([
        "pair beliefs known",
        "edges pruned",
        "certain cracks",
        "expected cracks",
    ]);
    let mut belief = PowersetBelief::item_only(item_belief);
    // Baseline: no set knowledge.
    let base = assess_powerset_risk(&db, &belief).expect("space is non-empty");
    table.add_row([
        "none".to_string(),
        base.pruned_edges.to_string(),
        base.certain_cracks().to_string(),
        format!("{:.3}", base.oestimate()),
    ]);

    for (k, &(a, b)) in pairs.iter().enumerate() {
        let sup = db.itemset_support(&[ItemId(a as u32), ItemId(b as u32)]);
        let f = sup as f64 / db.n_transactions() as f64;
        belief = belief
            .with_set(ItemsetBelief::new(vec![a, b], (f, f)).expect("valid interval"))
            .expect("items in domain");
        let risk = assess_powerset_risk(&db, &belief).expect("space is non-empty");
        table.add_row([
            format!("{} pair(s)", k + 1),
            risk.pruned_edges.to_string(),
            risk.certain_cracks().to_string(),
            format!("{:.3}", risk.oestimate()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading: pair frequencies prune the camouflage group — the\n\
         expected cracks rise above the Lemma 3 baseline of 3, and items\n\
         with distinctive co-occurrence are pinned outright. (Items 4 and\n\
         6 both never co-sell with item 2, so that pair leaves them\n\
         mutually ambiguous — knowledge only distinguishes what it\n\
         actually distinguishes.) Item-level camouflage is NOT safe\n\
         against set-level knowledge, as the paper's closing section\n\
         anticipates."
    );
}

//! Beyond frequent sets: attribute knowledge on a relation
//! (Section 8.1).
//!
//! The owner wants to release an anonymized relation
//! (age, ethnicity, car-model) for classification. The hacker knows
//! John is Chinese and drives a Toyota, knows Mary's age bracket, and
//! knows nothing about Bob. The bipartite-graph machinery applies
//! unchanged once the graph is built from those constraints.
//!
//! ```text
//! cargo run --example relational_attack
//! ```

use andi::core::relational::{
    assess_relational_risk, build_graph, AnonymizedRelation, AttrValue, Constraint, Knowledge,
};
use andi::core::ItemStatus;

const AGE: usize = 0;
const ETHNICITY: usize = 1;
const CAR: usize = 2;

// Categorical encodings.
const CHINESE: u32 = 0;
const DUTCH: u32 = 1;
const INDIAN: u32 = 2;
const TOYOTA: u32 = 10;
const VOLVO: u32 = 11;
const TESLA: u32 = 12;

fn main() {
    let names = ["John", "Mary", "Bob", "Ada", "Wei", "Noor"];
    // Aligned indexing: anonymized record i truly is individual i.
    let relation = AnonymizedRelation::new(vec![
        vec![
            AttrValue::Num(41.0),
            AttrValue::Cat(CHINESE),
            AttrValue::Cat(TOYOTA),
        ], // John
        vec![
            AttrValue::Num(32.0),
            AttrValue::Cat(DUTCH),
            AttrValue::Cat(VOLVO),
        ], // Mary
        vec![
            AttrValue::Num(58.0),
            AttrValue::Cat(DUTCH),
            AttrValue::Cat(TOYOTA),
        ], // Bob
        vec![
            AttrValue::Num(29.0),
            AttrValue::Cat(INDIAN),
            AttrValue::Cat(TESLA),
        ], // Ada
        vec![
            AttrValue::Num(36.0),
            AttrValue::Cat(CHINESE),
            AttrValue::Cat(TOYOTA),
        ], // Wei
        vec![
            AttrValue::Num(33.0),
            AttrValue::Cat(INDIAN),
            AttrValue::Cat(VOLVO),
        ], // Noor
    ])
    .expect("records are rectangular");

    // The hacker's partial information, as in the paper's narrative.
    let mut knowledge = Knowledge::ignorant(relation.n_individuals());
    knowledge
        .add(
            0,
            Constraint::Equals {
                attr: ETHNICITY,
                value: CHINESE,
            },
        )
        .add(
            0,
            Constraint::Equals {
                attr: CAR,
                value: TOYOTA,
            },
        )
        .add(
            1,
            Constraint::InRange {
                attr: AGE,
                low: 30.0,
                high: 35.0,
            },
        );
    // Bob (2) gets no constraints: connected to everyone.

    let graph = build_graph(&relation, &knowledge).expect("knowledge covers the domain");
    println!("candidate sets per individual:");
    for (y, name) in names.iter().enumerate() {
        let candidates: Vec<usize> = (0..relation.n_individuals())
            .filter(|&i| graph.has_edge(i, y))
            .collect();
        println!("  {name:<5} <- anonymized records {candidates:?}");
    }

    let risk = assess_relational_risk(&relation, &knowledge)
        .expect("knowledge admits a consistent assignment");
    println!(
        "\nexpected re-identifications (O-estimate): {:.3}",
        risk.oestimate
    );
    println!("identified with certainty: {}", risk.certain);
    for (y, name) in names.iter().enumerate() {
        let p = risk.profile.crack_probability(y);
        let tag = match risk.profile.status(y) {
            ItemStatus::ForcedCrack => " (certain!)",
            _ => "",
        };
        println!("  P(crack {name:<5}) = {p:.3}{tag}");
    }

    // Takeaway: even two modest facts (one exact pair of categorical
    // values, one age bracket) lift the expected re-identifications
    // well above the ignorant baseline of 1.
}

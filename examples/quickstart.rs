//! Quickstart: the paper's BigMart example, end to end.
//!
//! Walks the Figure 1/2/3 running example: anonymize the database,
//! express four grades of hacker knowledge as belief functions,
//! compute the expected number of cracks for each, and let the
//! Assess-Risk recipe make the disclosure call.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use andi::core::{point_valued_expected_cracks, SimulationConfig};
use andi::{
    assess_risk, simulate_expected_cracks, AnonymizationMapping, BeliefFunction, RecipeConfig,
};
use andi_data::{bigmart, FrequencyGroups};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ------------------------------------------------------------------
    // The owner's data: six products, ten transactions (Figure 1).
    // ------------------------------------------------------------------
    let db = bigmart();
    println!(
        "BigMart: {} items, {} transactions",
        db.n_items(),
        db.n_transactions()
    );
    let freqs = db.frequencies();
    println!("item frequencies: {freqs:?}");

    // Anonymize with a random bijection before release.
    let mut rng = StdRng::seed_from_u64(2005);
    let mapping = AnonymizationMapping::random(db.n_items(), &mut rng);
    let released = mapping.anonymize_database(&db).expect("domain sizes match");
    println!("released database has the same support multiset: {:?}", {
        let mut s = released.supports();
        s.sort_unstable();
        s
    });

    // ------------------------------------------------------------------
    // Four grades of hacker knowledge (Figure 2).
    // ------------------------------------------------------------------
    let supports = db.supports();
    let m = db.n_transactions() as u64;

    // g: knows nothing. Lemma 1: exactly one expected crack.
    let ignorant = BeliefFunction::ignorant(db.n_items());
    println!(
        "\nignorant hacker      : OE = {:.4}  (Lemma 1 says 1.0)",
        andi::oestimate(&ignorant, &supports, m)
    );

    // f: knows every frequency exactly. Lemma 3: g groups.
    let point = BeliefFunction::point_valued(&freqs).expect("frequencies are valid");
    let groups = FrequencyGroups::of_database(&db);
    println!(
        "point-valued hacker  : OE = {:.4}  (Lemma 3 says g = {})",
        andi::oestimate(&point, &supports, m),
        point_valued_expected_cracks(&groups)
    );

    // h: believes a correct interval per item (Figure 2's h).
    let h = BeliefFunction::from_intervals(vec![
        (0.0, 1.0),
        (0.4, 0.5),
        (0.5, 0.5),
        (0.4, 0.6),
        (0.1, 0.4),
        (0.5, 0.5),
    ])
    .expect("intervals are valid");
    let oe_h = andi::oestimate(&h, &supports, m);
    let sim = simulate_expected_cracks(&h.build_graph(&supports, m), &SimulationConfig::quick())
        .expect("mapping space is non-empty");
    println!(
        "interval hacker (h)  : OE = {oe_h:.4}  vs simulated {:.4} ± {:.4}",
        sim.mean(),
        sim.std_dev()
    );

    // k: half the guesses are wrong (Figure 2's k is 0.5-compliant).
    let k = BeliefFunction::from_intervals(vec![
        (0.6, 1.0),
        (0.1, 0.25),
        (0.0, 0.4),
        (0.4, 0.6),
        (0.1, 0.4),
        (0.5, 0.5),
    ])
    .expect("intervals are valid");
    println!("0.5-compliant hacker : alpha = {}", k.alpha(&freqs));

    // ------------------------------------------------------------------
    // The owner's decision (Figure 8).
    // ------------------------------------------------------------------
    for tau in [0.6, 0.3, 0.1] {
        let verdict = assess_risk(
            &supports,
            m,
            &RecipeConfig {
                tolerance: tau,
                ..RecipeConfig::default()
            },
        )
        .expect("recipe inputs are valid");
        let summary = match verdict.decision {
            andi::RiskDecision::DiscloseAtPointValued => "disclose (safe even point-valued)".into(),
            andi::RiskDecision::DiscloseAtFullCompliance => {
                format!(
                    "disclose (OE = {:.3} within budget)",
                    verdict.full_compliance_oe
                )
            }
            andi::RiskDecision::AlphaMax { alpha_max, .. } => {
                format!("judgement call: alpha_max = {alpha_max:.2}")
            }
        };
        println!("tolerance {tau:>4}: {summary}");
    }
}
